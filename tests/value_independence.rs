//! The paper's Section 5 justification for using a single input per size:
//! "the codes' control-flow and memory-access behavior are independent of
//! the values in the input sequence, any input of the same length and data
//! type will result in the same performance". The machine model must have
//! the same property: identical event counters for different inputs.

use plr::baselines::executor::RecurrenceExecutor;
use plr::baselines::{Alg3, Cub, Rec, Sam, Scan};
use plr::core::{filters, prefix};
use plr::sim::{Counters, DeviceConfig};
use plr::Signature;
use plr_bench::workloads::Workload;
use plr_bench::PlrExecutor;

fn device() -> DeviceConfig {
    DeviceConfig::titan_x()
}

fn int_inputs(n: usize) -> Vec<Vec<i64>> {
    Workload::ALL.iter().map(|w| w.generate::<i64>(n)).collect()
}

fn assert_same_counters(name: &str, counters: &[Counters]) {
    for c in &counters[1..] {
        assert_eq!(
            c, &counters[0],
            "{name}: counters must not depend on input values"
        );
    }
}

#[test]
fn plr_counters_are_value_independent() {
    let n = 50_000;
    for sig in [
        prefix::prefix_sum::<i64>(),
        prefix::tuple_prefix_sum::<i64>(3),
        prefix::higher_order_prefix_sum::<i64>(2),
    ] {
        let counters: Vec<Counters> = int_inputs(n)
            .iter()
            .map(|input| {
                PlrExecutor::default()
                    .run(&sig, input, &device())
                    .unwrap()
                    .counters
            })
            .collect();
        assert_same_counters("PLR", &counters);
    }
}

#[test]
fn baseline_counters_are_value_independent() {
    let n = 30_000;
    let sig = prefix::higher_order_prefix_sum::<i64>(2);
    let execs: Vec<(&str, Box<dyn RecurrenceExecutor<i64>>)> = vec![
        ("CUB", Box::new(Cub)),
        ("SAM", Box::new(Sam)),
        ("Scan", Box::new(Scan)),
    ];
    for (name, exec) in &execs {
        let counters: Vec<Counters> = int_inputs(n)
            .iter()
            .map(|input| exec.run(&sig, input, &device()).unwrap().counters)
            .collect();
        assert_same_counters(name, &counters);
    }
}

#[test]
fn float_filter_counters_are_value_independent() {
    // Decay truncation depends on the *coefficients*, never the data.
    let n = 40_000;
    let sig: Signature<f32> = filters::low_pass(0.8, 2).cast();
    let inputs: [Vec<f32>; 3] = [
        vec![0.0; n],
        (0..n).map(|i| (i % 100) as f32 * 0.01).collect(),
        (0..n)
            .map(|i| if i % 2 == 0 { 1e6 } else { -1e6 })
            .collect(),
    ];
    let all: Vec<Counters> = inputs
        .iter()
        .map(|input| {
            PlrExecutor::default()
                .run(&sig, input, &device())
                .unwrap()
                .counters
        })
        .collect();
    assert_same_counters("PLR f32 filter", &all);
    for (name, exec) in [
        ("Alg3", &Alg3 as &dyn RecurrenceExecutor<f32>),
        ("Rec", &Rec as _),
    ] {
        let counters: Vec<Counters> = inputs
            .iter()
            .map(|input| exec.run(&sig, input, &device()).unwrap().counters)
            .collect();
        assert_same_counters(name, &counters);
    }
}
