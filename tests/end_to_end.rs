//! Workspace integration: every execution path — serial reference,
//! two-phase engine, compiled kernel plan on the machine model, and the
//! real multithreaded runtime — must agree on every recurrence of the
//! paper's Table 1 catalog.

use plr::baselines::executor::RecurrenceExecutor;
use plr::codegen::Plr;
use plr::core::engine::{CarryPropagation, EngineConfig, LocalSolve};
use plr::core::{prefix, serial, validate};
use plr::sim::DeviceConfig;
use plr::{Element, Engine, ParallelRunner, RunnerConfig, Signature, Strategy};
use plr_bench::PlrExecutor;

fn check_catalog_entry<T: Element>(sig: &Signature<T>, tol: f64) {
    let n = 30_000;
    let input: Vec<T> = (0..n)
        .map(|i| T::from_i32(((i * 31) % 21) as i32 - 10))
        .collect();
    let expected = serial::run(sig, &input);

    // Two-phase engine, both local-solve strategies.
    for local in [LocalSolve::HierarchicalDoubling, LocalSolve::Serial] {
        let engine = Engine::with_config(
            sig.clone(),
            EngineConfig {
                chunk_size: 1024,
                local_solve: local,
                carry_propagation: CarryPropagation::Decoupled,
                flush_denormals: true,
            },
        )
        .unwrap();
        let got = engine.run(&input).unwrap();
        validate::validate(&expected, &got, tol)
            .unwrap_or_else(|e| panic!("engine {local:?} for {sig}: {e}"));
    }

    // Compiled kernel plan interpreted on the machine model.
    let device = DeviceConfig::titan_x();
    let compiled = Plr::new().compile(sig, n);
    let exec = compiled.execute(&input, &device);
    validate::validate(&expected, &exec.output, tol)
        .unwrap_or_else(|e| panic!("simulated kernel for {sig}: {e}"));
    assert!(compiled.cuda.contains("__global__ void plr_kernel"));

    // Real threads.
    let runner = ParallelRunner::with_config(
        sig.clone(),
        RunnerConfig {
            chunk_size: 2048,
            threads: 4,
            strategy: Strategy::default(),
            ..Default::default()
        },
    )
    .unwrap();
    let got = runner.run(&input).unwrap();
    validate::validate(&expected, &got, tol)
        .unwrap_or_else(|e| panic!("parallel runtime for {sig}: {e}"));
}

#[test]
fn integer_catalog_agrees_across_all_paths() {
    for entry in prefix::catalog().iter().filter(|e| e.integral) {
        let sig: Signature<i64> = entry.signature.cast();
        check_catalog_entry(&sig, 0.0);
    }
}

#[test]
fn float_catalog_agrees_across_all_paths() {
    for entry in prefix::catalog().iter().filter(|e| !e.integral) {
        let sig: Signature<f32> = entry.signature.cast();
        // The 3-stage high-pass is the worst-conditioned catalog entry in
        // f32 (see plr-codegen's exec tests); a slightly looser bound
        // covers its hierarchical reassociation noise.
        let tol = if sig.order() == 3 && sig.fir_order() > 0 {
            5e-3
        } else {
            1e-3
        };
        check_catalog_entry(&sig, tol);
    }
}

#[test]
fn plr_executor_matches_direct_compilation() {
    let device = DeviceConfig::titan_x();
    let sig: Signature<i32> = "1: 3, -3, 1".parse().unwrap();
    let input: Vec<i32> = (0..25_000).map(|i| (i % 7) - 3).collect();
    let via_executor = PlrExecutor::default().run(&sig, &input, &device).unwrap();
    let via_compiler = Plr::new()
        .compile(&sig, input.len())
        .execute(&input, &device);
    assert_eq!(via_executor.output, via_compiler.output);
    assert_eq!(
        via_executor.counters.global_read_bytes,
        via_compiler.counters.global_read_bytes
    );
}

#[test]
fn all_four_data_types_work_end_to_end() {
    fn run_one<T: Element>() {
        let sig: Signature<T> = Signature::new(vec![T::one()], vec![T::one()]).unwrap();
        let input: Vec<T> = (0..5000).map(|i| T::from_i32((i % 11) - 5)).collect();
        let engine = Engine::new(sig.clone()).unwrap();
        let got = engine.run(&input).unwrap();
        let expected = serial::run(&sig, &input);
        validate::validate(&expected, &got, 1e-6).unwrap();
    }
    run_one::<i32>();
    run_one::<i64>();
    run_one::<f32>();
    run_one::<f64>();
}
