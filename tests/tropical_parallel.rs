//! Workspace integration: the max-plus semiring flows through every layer
//! that only uses the semiring operations — serial, engine, the
//! multithreaded runtime (both strategies), segmented inputs, and the
//! streaming API.

use plr::core::tropical::MaxPlus;
use plr::core::{segmented, serial, stream};
use plr::{Element, Engine, ParallelRunner, RunnerConfig, Signature, Strategy};

fn envelope(decay: f64) -> Signature<MaxPlus> {
    Signature::new(vec![MaxPlus::one()], vec![MaxPlus::new(-decay)]).unwrap()
}

fn bursty(n: usize) -> Vec<MaxPlus> {
    (0..n)
        .map(|i| {
            MaxPlus::new(if i % 97 == 0 {
                5.0 + (i % 11) as f64
            } else {
                0.0
            })
        })
        .collect()
}

#[test]
fn parallel_runtime_computes_tropical_recurrences() {
    let sig = envelope(0.01);
    let input = bursty(100_000);
    let expect = serial::run(&sig, &input);
    for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
        let runner = ParallelRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 1024,
                threads: 4,
                strategy,
                ..Default::default()
            },
        )
        .unwrap();
        let got = runner.run(&input).unwrap();
        // Max-plus ⊕ (max) is exact; ⊗ (+) reassociation is the only noise.
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!(g.approx_eq(*e, 1e-9), "{strategy:?} index {i}: {g} vs {e}");
        }
    }
}

#[test]
fn engine_and_order2_tropical() {
    // Two decay paths: y[i] = max(x[i], y[i-1] - a, y[i-2] - b).
    let sig = Signature::new(
        vec![MaxPlus::one()],
        vec![MaxPlus::new(-0.4), MaxPlus::new(-0.5)],
    )
    .unwrap();
    let input = bursty(20_000);
    let expect = serial::run(&sig, &input);
    let got = Engine::new(sig).unwrap().run(&input).unwrap();
    for (g, e) in got.iter().zip(&expect) {
        assert!(g.approx_eq(*e, 1e-9));
    }
}

#[test]
fn segmented_tropical_resets_the_envelope() {
    let sig = envelope(1.0);
    let segments = segmented::Segments::uniform(4, 8).starts().to_vec();
    let segments = segmented::Segments::from_starts(segments).unwrap();
    let input: Vec<MaxPlus> = [9.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        .map(MaxPlus::new)
        .to_vec();
    let out = segmented::run_serial(&sig, &segments, &input);
    let values: Vec<f64> = out.iter().map(|v| v.value()).collect();
    // The envelope decays inside segment 1; segment 2 restarts and the
    // fresh 0-valued samples dominate their own decayed predecessors.
    assert_eq!(values, vec![9.0, 8.0, 7.0, 6.0, 0.0, 0.0, 0.0, 0.0]);
}

#[test]
fn streaming_tropical_carries_the_envelope_across_blocks() {
    let sig = envelope(0.5);
    let input = bursty(1000);
    let expect = serial::run(&sig, &input);
    let mut state = stream::StreamState::new(sig);
    let mut got = Vec::new();
    for block in input.chunks(37) {
        got.extend(state.process(block));
    }
    for (g, e) in got.iter().zip(&expect) {
        assert!(g.approx_eq(*e, 1e-9));
    }
}
