//! Workspace integration: the baseline executors and PLR agree with the
//! serial reference wherever their capabilities overlap, and reject
//! exactly what the paper says they cannot run.

use plr::baselines::executor::RecurrenceExecutor;
use plr::baselines::{Alg3, Cub, Rec, Sam, Scan};
use plr::core::error::EngineError;
use plr::core::{filters, prefix, serial, validate};
use plr::sim::DeviceConfig;
use plr::Signature;
use plr_bench::PlrExecutor;

fn device() -> DeviceConfig {
    DeviceConfig::titan_x()
}

#[test]
fn prefix_family_executors_agree() {
    let n = 40_000;
    let input: Vec<i64> = (0..n).map(|i| (i % 23) as i64 - 11).collect();
    let executors: Vec<Box<dyn RecurrenceExecutor<i64>>> = vec![
        Box::new(PlrExecutor::default()),
        Box::new(Cub),
        Box::new(Sam),
        Box::new(Scan),
    ];
    for sig in [
        prefix::prefix_sum::<i64>(),
        prefix::tuple_prefix_sum::<i64>(2),
        prefix::tuple_prefix_sum::<i64>(3),
        prefix::tuple_prefix_sum::<i64>(4),
        prefix::higher_order_prefix_sum::<i64>(2),
        prefix::higher_order_prefix_sum::<i64>(3),
        prefix::higher_order_prefix_sum::<i64>(4),
    ] {
        let expected = serial::run(&sig, &input);
        for exec in &executors {
            let report = exec
                .run(&sig, &input, &device())
                .unwrap_or_else(|e| panic!("{} should support {sig}: {e}", exec.name()));
            validate::validate(&expected, &report.output, 0.0)
                .unwrap_or_else(|e| panic!("{} on {sig}: {e}", exec.name()));
        }
    }
}

#[test]
fn scan_also_runs_the_filters() {
    // Scan is the only baseline that supports every recurrence PLR does.
    let n = 20_000;
    let input: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) * 0.5 - 3.0).collect();
    for entry in prefix::catalog().iter().filter(|e| !e.integral) {
        let sig: Signature<f64> = entry.signature.clone();
        let expected = serial::run(&sig, &input);
        let report = Scan.run(&sig, &input, &device()).unwrap();
        validate::validate(&expected, &report.output, 1e-3)
            .unwrap_or_else(|e| panic!("Scan on {sig}: {e}"));
    }
}

#[test]
fn capability_matrix_matches_the_paper() {
    let _probe_device = device(); // capability checks are device-independent
    let filt: Signature<f32> = filters::low_pass(0.8, 1).cast();
    let high: Signature<f32> = filters::high_pass(0.8, 1).cast();
    let psum32: Signature<f32> = "1:1".parse().unwrap();

    // CUB/SAM: prefix sums only.
    assert!(Cub.supports(&filt, 100).is_err());
    assert!(Sam.supports(&filt, 100).is_err());

    // Alg3/Rec: single non-recursive coefficient only — the reason the
    // paper's Figure 9 has no Alg3/Rec series.
    assert!(Alg3.supports(&filt, 100).is_ok());
    assert!(matches!(
        Alg3.supports(&high, 100),
        Err(EngineError::UnsupportedSignature { .. })
    ));
    assert!(Rec.supports(&filt, 100).is_ok());
    assert!(Rec.supports(&high, 100).is_err());

    // Everyone has the paper's size caps.
    assert!(Cub
        .supports(&prefix::prefix_sum::<i32>(), (1 << 30) + 1)
        .is_err());
    assert!(Alg3.supports(&filt, (1 << 29) + 1).is_err()); // 2 GB of f32
    assert!(Rec.supports(&filt, (1 << 28) + 1).is_err()); // 1 GB of f32
    assert!(Scan.supports(&psum32, 1 << 30).is_err()); // O(nk²) memory

    // PLR itself supports the whole catalog up to 2^30.
    let plr = PlrExecutor::default();
    assert!(RecurrenceExecutor::<f32>::supports(&plr, &high, 1 << 30).is_ok());
}

#[test]
fn image_codes_validate_their_own_2d_semantics() {
    let n = 128 * 128;
    let input: Vec<f32> = (0..n).map(|i| ((i % 31) as f32) * 0.1 - 1.5).collect();
    let lp: Signature<f32> = filters::low_pass(0.8, 2).cast();

    let alg3 = Alg3.run(&lp, &input, &device()).unwrap();
    validate::validate(&Alg3::reference(&lp, &input), &alg3.output, 1e-3).unwrap();

    let rec = Rec.run(&lp, &input, &device()).unwrap();
    validate::validate(&Rec::reference(&lp, &input), &rec.output, 1e-3).unwrap();

    // Rec (one direction) and Alg3 (two directions) must differ.
    assert!(validate::validate(&alg3.output, &rec.output, 1e-3).is_err());
}
