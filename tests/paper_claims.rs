//! Workspace integration: the paper's headline quantitative claims, checked
//! against the regenerated figures and tables. These are the "shape"
//! acceptance tests of the reproduction — who wins, by roughly what factor,
//! and where the crossovers fall.

use plr_bench::figures::{self, value_at};
use plr_bench::tables;
use plr_sim::DeviceConfig;

fn device() -> DeviceConfig {
    DeviceConfig::titan_x()
}

fn series<'a>(fig: &'a figures::Figure, name: &str) -> &'a figures::Series {
    fig.series
        .iter()
        .find(|s| s.name == name)
        .expect("series present")
}

#[test]
fn abstract_claim_prefix_sums_reach_memcpy() {
    // "for standard prefix sums and single-stage IIR filters, the generated
    // code reaches the throughput of memory copy for large inputs".
    let d = device();
    for (fig_no, plr_name) in [(1usize, "PLR"), (6, "PLR")] {
        let fig = figures::figure(fig_no, &d);
        let n = 1 << 30;
        let mc = value_at(series(&fig, "memcpy"), n).unwrap();
        let plr = value_at(series(&fig, plr_name), n).unwrap();
        assert!(
            plr > 0.95 * mc,
            "figure {fig_no}: PLR {plr:.1} vs memcpy {mc:.1}"
        );
    }
}

#[test]
fn abstract_claim_tuple_advantage() {
    // "On tuple-based prefix sums and digital filters, our automatically
    // parallelized code outperforms the fastest prior implementations."
    let d = device();
    for fig_no in [2usize, 3] {
        let fig = figures::figure(fig_no, &d);
        let n = 1 << 30;
        let plr = value_at(series(&fig, "PLR"), n).unwrap();
        for other in ["CUB", "SAM"] {
            let v = value_at(series(&fig, other), n).unwrap();
            assert!(plr > v, "figure {fig_no}: PLR {plr:.1} vs {other} {v:.1}");
        }
    }
    // Filters: PLR is the fastest tested code on the largest supported
    // sizes of each competitor.
    for fig_no in [6usize, 7, 8] {
        let fig = figures::figure(fig_no, &d);
        for other in ["Alg3", "Rec", "Scan"] {
            let s = series(&fig, other);
            let (n_max, v) = *s.points.last().unwrap();
            let plr = value_at(series(&fig, "PLR"), n_max).unwrap();
            assert!(
                plr > v,
                "figure {fig_no} at {n_max}: PLR {plr:.1} vs {other} {v:.1}"
            );
        }
    }
}

#[test]
fn section_6_1_2_tuple_percentages() {
    // "On 2-tuples, it is 30% and on 3-tuples 17% faster" (than the best
    // prior code, at long sequences).
    let d = device();
    let n = 1 << 30;
    let fig2 = figures::figure(2, &d);
    let plr2 = value_at(series(&fig2, "PLR"), n).unwrap();
    let best2 = value_at(series(&fig2, "CUB"), n)
        .unwrap()
        .max(value_at(series(&fig2, "SAM"), n).unwrap());
    let adv2 = plr2 / best2 - 1.0;
    assert!(
        (0.20..0.40).contains(&adv2),
        "2-tuple advantage {:.0}%",
        adv2 * 100.0
    );

    let fig3 = figures::figure(3, &d);
    let plr3 = value_at(series(&fig3, "PLR"), n).unwrap();
    let best3 = value_at(series(&fig3, "CUB"), n)
        .unwrap()
        .max(value_at(series(&fig3, "SAM"), n).unwrap());
    let adv3 = plr3 / best3 - 1.0;
    assert!(
        (0.10..0.25).contains(&adv3),
        "3-tuple advantage {:.0}%",
        adv3 * 100.0
    );
}

#[test]
fn section_6_1_3_higher_order_ordering_and_gap() {
    // SAM > PLR > CUB on orders 2 and 3, with SAM's lead shrinking: "for
    // order 2, it is 50% faster, for order 3 about 38%".
    let d = device();
    let n = 1 << 30;
    let gap = |fig_no: usize| {
        let fig = figures::figure(fig_no, &d);
        let sam = value_at(series(&fig, "SAM"), n).unwrap();
        let plr = value_at(series(&fig, "PLR"), n).unwrap();
        let cub = value_at(series(&fig, "CUB"), n).unwrap();
        assert!(
            sam > plr && plr > cub,
            "figure {fig_no}: {sam:.1} / {plr:.1} / {cub:.1}"
        );
        sam / plr - 1.0
    };
    let gap2 = gap(4);
    let gap3 = gap(5);
    assert!(
        (0.35..0.65).contains(&gap2),
        "order-2 SAM lead {:.0}%",
        gap2 * 100.0
    );
    assert!(
        (0.25..0.50).contains(&gap3),
        "order-3 SAM lead {:.0}%",
        gap3 * 100.0
    );
    assert!(gap3 < gap2, "SAM's lead must shrink with the order");
}

#[test]
fn section_6_5_rec_crossover_near_the_l2_capacity() {
    // "PLR … starts outperforming Rec at a size of one million entries,
    // which is the smallest problem size that exceeds the L2 capacity."
    let d = device();
    let fig = figures::figure(6, &d);
    let rec = series(&fig, "Rec");
    let plr = series(&fig, "PLR");
    // Rec wins (or ties) somewhere below 2^19…
    let small_win = (14..19).any(|p| {
        let n = 1 << p;
        value_at(rec, n).unwrap() >= value_at(plr, n).unwrap()
    });
    assert!(small_win, "Rec should win somewhere below 2^19");
    // …and PLR wins everywhere from 2^20 (1M) on.
    for p in 20..=28 {
        let n = 1 << p;
        assert!(
            value_at(plr, n).unwrap() > value_at(rec, n).unwrap(),
            "PLR should win at 2^{p}"
        );
    }
}

#[test]
fn section_6_2_2_high_pass_cost_is_consistent() {
    // "this decrease is quite consistent and around 17% for medium to
    // large problem sizes, irrespective of the order" (high-pass vs
    // low-pass, i.e. the map-stage cost).
    let d = device();
    let n = 1 << 28;
    let fig9 = figures::figure(9, &d);
    let low = [6usize, 7, 8].map(|f| {
        let fig = figures::figure(f, &d);
        value_at(series(&fig, "PLR"), n).unwrap()
    });
    let high = ["PLR1", "PLR2", "PLR3"].map(|name| value_at(series(&fig9, name), n).unwrap());
    for (l, h) in low.iter().zip(&high) {
        let drop = 1.0 - h / l;
        assert!(
            (0.10..0.25).contains(&drop),
            "map-stage cost {:.0}%",
            drop * 100.0
        );
    }
}

#[test]
fn not_shown_claims_about_4_tuples_and_4th_order() {
    // Section 6.1.2: "PLR's 4-tuple throughput (not shown) is slightly
    // higher than its 3-tuple throughput. In contrast, CUB's and SAM's
    // throughputs consistently decrease with larger tuple sizes."
    // Section 6.1.3: SAM's advantage keeps shrinking at order 4 (~33%).
    use plr::baselines::executor::RecurrenceExecutor;
    use plr::baselines::{Cub, Sam};
    use plr::core::prefix;
    use plr::sim::CostModel;
    use plr_bench::PlrExecutor;

    let d = device();
    let model = CostModel::new(d.clone());
    let n = 1 << 30;
    let tput = |exec: &dyn RecurrenceExecutor<i32>, sig| {
        exec.estimate(&sig, n, &d).unwrap().throughput(&model)
    };

    let plr3 = tput(&PlrExecutor::default(), prefix::tuple_prefix_sum(3));
    let plr4 = tput(&PlrExecutor::default(), prefix::tuple_prefix_sum(4));
    assert!(plr4 > plr3, "PLR 4-tuple {plr4:.2e} vs 3-tuple {plr3:.2e}");

    for (name, exec) in [
        ("CUB", &Cub as &dyn RecurrenceExecutor<i32>),
        ("SAM", &Sam as _),
    ] {
        let t2 = tput(exec, prefix::tuple_prefix_sum(2));
        let t3 = tput(exec, prefix::tuple_prefix_sum(3));
        let t4 = tput(exec, prefix::tuple_prefix_sum(4));
        assert!(
            t2 > t3 && t3 > t4,
            "{name} must decrease: {t2:.2e} {t3:.2e} {t4:.2e}"
        );
    }

    let sam4 = tput(&Sam, prefix::higher_order_prefix_sum(4));
    let plr4o = tput(&PlrExecutor::default(), prefix::higher_order_prefix_sum(4));
    let gap4 = sam4 / plr4o - 1.0;
    assert!(
        (0.15..0.50).contains(&gap4),
        "order-4 SAM lead {:.0}%",
        gap4 * 100.0
    );
}

#[test]
fn table_2_and_3_structure() {
    // Scan's storage is (k²+k)·2 words per element; the efficient codes
    // stay within a few MB of memcpy.
    let d = device();
    let t2 = tables::table2(&d);
    let col = |name: &str| t2.columns.iter().position(|c| c == name).unwrap();
    for row in 0..3 {
        let plr: f64 = t2.rows[row].1[col("PLR")].parse().unwrap();
        let memcpy: f64 = t2.rows[row].1[col("memcpy")].parse().unwrap();
        assert!(plr - memcpy < 4.0, "PLR within a few MB of memcpy");
        let scan: f64 = t2.rows[row].1[col("Scan")].parse().unwrap();
        let k = (row + 1) as f64;
        let expect = 109.5 + 256.0 * 2.0 * (k * k + k);
        assert!(
            (scan - expect).abs() / expect < 0.02,
            "Scan row {row}: {scan} vs {expect}"
        );
    }

    let t3 = tables::table3(&d);
    let col3 = |name: &str| t3.columns.iter().position(|c| c == name).unwrap();
    for row in 0..3 {
        let k = (row + 1) as f64;
        let scan: f64 = t3.rows[row].1[col3("Scan")].parse().unwrap();
        assert!((scan - 256.0 * (k * k + k)).abs() < 8.0);
        // Alg3 and Rec read the input twice.
        for name in ["Alg3", "Rec"] {
            let v: f64 = t3.rows[row].1[col3(name)].parse().unwrap();
            assert!(v > 510.0, "{name} row {row}: {v}");
        }
    }
}
