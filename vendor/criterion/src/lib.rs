//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`] / [`Criterion::bench_function`],
//! [`BenchmarkGroup::throughput`] / [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: per benchmark, one calibration iteration sizes a
//! batch so each sample takes ≥ ~2 ms, then `sample_size` samples are
//! timed (capped at ~3 s per benchmark). Mean / min / max per-iteration
//! wall times are printed, and — when the `CRITERION_JSON` environment
//! variable names a file — appended to it as a JSON array so baselines
//! can be committed (no statistics beyond that; there is no gnuplot, no
//! HTML report, no outlier analysis).

#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time for one timed sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(2);
/// Cap on total measurement time for one benchmark.
const MAX_BENCH_TIME: Duration = Duration::from_secs(3);

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Record {
    /// `group/function` identifier.
    pub id: String,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Optional elements-per-iteration for throughput reporting.
    pub elements: Option<u64>,
}

impl Record {
    fn render(&self) -> String {
        let thr = match self.elements {
            Some(e) if self.mean_ns > 0.0 => {
                format!("  {:10.1} Melem/s", e as f64 / self.mean_ns * 1e3)
            }
            _ => String::new(),
        };
        format!(
            "{:<48} time: [{} .. {} .. {}]{}",
            self.id,
            fmt_ns(self.min_ns),
            fmt_ns(self.mean_ns),
            fmt_ns(self.max_ns),
            thr
        )
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"id\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{},\"elements\":{}}}",
            self.id.replace('"', "'"),
            self.mean_ns,
            self.min_ns,
            self.max_ns,
            self.samples,
            self.iters_per_sample,
            self.elements.map_or("null".to_string(), |e| e.to_string()),
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            elements: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let record = measure(id.into_benchmark_id(), 10, None, &mut f);
        println!("{}", record.render());
        self.records.push(record);
    }

    /// Prints the summary and, when `CRITERION_JSON` is set, writes all
    /// records to that file as a JSON array. Called by [`criterion_main!`].
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                let body: Vec<String> = self
                    .records
                    .iter()
                    .map(|r| format!("  {}", r.to_json()))
                    .collect();
                let json = format!("[\n{}\n]\n", body.join(",\n"));
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("criterion stub: cannot write {path}: {e}");
                } else {
                    println!(
                        "criterion stub: wrote {} records to {path}",
                        self.records.len()
                    );
                }
            }
        }
    }
}

/// A group of benchmarks sharing a name prefix, throughput, and sample
/// count.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    elements: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.elements = Some(match t {
            Throughput::Elements(e) => e,
            Throughput::Bytes(b) => b,
        });
        self
    }

    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let record = measure(full, self.sample_size, self.elements, &mut f);
        println!("{}", record.render());
        self.criterion.records.push(record);
        self
    }

    /// Ends the group (retained for API compatibility; drop would do).
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Runs `f` `iters` times and records the total wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = Some(start.elapsed());
    }

    /// Runs `routine` on a fresh `setup()` value per iteration; only the
    /// routine is timed. The batch-size hint is ignored (every iteration
    /// gets its own input).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = Some(total);
    }
}

/// How [`Bencher::iter_batched`] amortizes setup over iterations. The
/// stub constructs one input per iteration regardless, so the variants
/// are distinguished in name only.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are small; real criterion batches many per allocation.
    SmallInput,
    /// Inputs are large; real criterion allocates one per iteration.
    LargeInput,
    /// One input per iteration, setup excluded from timing.
    PerIteration,
}

fn measure<F: FnMut(&mut Bencher)>(
    id: String,
    sample_size: usize,
    elements: Option<u64>,
    f: &mut F,
) -> Record {
    // Calibration: one iteration to size the batch.
    let mut b = Bencher {
        iters: 1,
        elapsed: None,
    };
    f(&mut b);
    let once = b
        .elapsed
        .expect("Bencher::iter was not called")
        .max(Duration::from_nanos(1));
    let iters_per_sample = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64;

    let budget_start = Instant::now();
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: None,
        };
        f(&mut b);
        let d = b.elapsed.expect("Bencher::iter was not called");
        per_iter_ns.push(d.as_nanos() as f64 / iters_per_sample as f64);
        if budget_start.elapsed() > MAX_BENCH_TIME {
            break;
        }
    }
    let n = per_iter_ns.len() as f64;
    Record {
        id,
        mean_ns: per_iter_ns.iter().sum::<f64>() / n,
        min_ns: per_iter_ns.iter().copied().fold(f64::INFINITY, f64::min),
        max_ns: per_iter_ns.iter().copied().fold(0.0, f64::max),
        samples: per_iter_ns.len(),
        iters_per_sample,
        elements,
    }
}

/// A benchmark name parameterized by a value, e.g. a thread count.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter, e.g. for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Conversion into the string id criterion records benchmarks under.
pub trait IntoBenchmarkId {
    /// The `group/function` id fragment for this value.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Per-iteration work used for throughput lines in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Bundles benchmark functions into one group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(64)).sample_size(3);
        g.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| (0..64u64).map(black_box).sum::<u64>())
        });
        g.finish();
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].mean_ns > 0.0);
        assert_eq!(c.records[0].id, "g/f/1");
    }

    #[test]
    fn json_shape_is_stable() {
        let r = Record {
            id: "a/b".into(),
            mean_ns: 1.5,
            min_ns: 1.0,
            max_ns: 2.0,
            samples: 3,
            iters_per_sample: 7,
            elements: None,
        };
        assert_eq!(
            r.to_json(),
            "{\"id\":\"a/b\",\"mean_ns\":1.5,\"min_ns\":1.0,\"max_ns\":2.0,\"samples\":3,\"iters_per_sample\":7,\"elements\":null}"
        );
    }
}
