//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the subset of the proptest API that the
//! workspace's property tests use: deterministic pseudo-random case
//! generation through [`strategy::Strategy`], the [`proptest!`] macro, the
//! `prop_*` assertion macros, range / tuple / vector / boolean / string
//! strategies, and the `prop_map` / `prop_filter` / `prop_filter_map`
//! combinators.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports its assertion message (which
//!   includes the relevant values) but is not minimized.
//! - **No failure persistence.** `*.proptest-regressions` files are ignored.
//! - **`PROPTEST_CASES` is a floor, not just a default.** The real crate's
//!   env var only replaces the default config; here it raises every suite's
//!   case count to at least the given value (pinned counts below it are
//!   bumped up, larger pinned counts win). This is what a long-soak CI job
//!   wants: one knob that deepens all suites without editing each
//!   `proptest_config` line.
//! - **Deterministic seeding.** The RNG is seeded from the test's module
//!   path and name, so runs are reproducible without a seed file.
//! - **String strategies** support only the small regex subset the
//!   workspace uses: `\PC*` (arbitrary printable text) and a single
//!   character class with an optional `{lo,hi}` / `*` / `+` repetition.

#![warn(rust_2018_idioms)]

pub mod test_runner {
    //! Configuration and per-case error plumbing for [`crate::proptest!`].

    /// Mirror of proptest's run configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count after applying the `PROPTEST_CASES` env floor:
        /// `max(self.cases, $PROPTEST_CASES)`. Unset, empty, or unparsable
        /// values leave the configured count untouched.
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => match v.trim().parse::<u32>() {
                    Ok(floor) => self.cases.max(floor),
                    Err(_) => self.cases,
                },
                Err(_) => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` (does not count as a
        /// success; the runner draws a replacement case).
        Reject(String),
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (assumption-violating) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Small deterministic xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from an arbitrary string (FNV-1a), typically the test name.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next raw 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is irrelevant for test-case generation.
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating pseudo-random values of one type.
    ///
    /// Unlike real proptest there is no value tree: `generate` yields the
    /// final value directly and nothing shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred` (regenerating otherwise).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Filters and maps in one step (regenerating on `None`).
        fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// How many times a filter may reject before the test aborts.
    const MAX_FILTER_REJECTS: u32 = 65_536;

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_FILTER_REJECTS {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected every candidate", self.whence);
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..MAX_FILTER_REJECTS {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map {:?} rejected every candidate", self.whence);
        }
    }

    /// Union of two strategies over the same value type; used by
    /// [`crate::prop_oneof!`], which nests it for longer lists (so later
    /// alternatives get geometrically smaller weight — acceptable for a
    /// stub whose callers use two-alternative unions).
    #[derive(Debug, Clone)]
    pub struct Union<A, B> {
        a: A,
        b: B,
    }

    impl<A, B> Union<A, B> {
        /// Combines two strategies, each drawn with probability 1/2.
        pub fn new(a: A, b: B) -> Self {
            Union { a, b }
        }
    }

    impl<A: Strategy, B: Strategy<Value = A::Value>> Strategy for Union<A, B> {
        type Value = A::Value;

        fn generate(&self, rng: &mut TestRng) -> A::Value {
            if rng.next_u64() & 1 == 0 {
                self.a.generate(rng)
            } else {
                self.b.generate(rng)
            }
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (*self.start() as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! float_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_ranges!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// `&str` strategies: a tiny regex subset (`\PC*`, or one character
    /// class with an optional repetition) generating matching strings.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        if pattern == "\\PC*" {
            // Arbitrary printable text: mostly ASCII with some multibyte.
            let len = rng.below(48) as usize;
            return (0..len)
                .map(|_| match rng.below(8) {
                    0 => char::from_u32(0xA1 + rng.below(0x200) as u32).unwrap_or('¿'),
                    1 => char::from_u32(0x4E00 + rng.below(0x100) as u32).unwrap_or('中'),
                    _ => (0x20 + rng.below(0x5F) as u8) as char,
                })
                .collect();
        }
        if let Some(rest) = pattern.strip_prefix('[') {
            if let Some(close) = rest.find(']') {
                let class = parse_class(&rest[..close]);
                let (lo, hi) = parse_repeat(&rest[close + 1..]);
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                if !class.is_empty() {
                    return (0..len)
                        .map(|_| class[rng.below(class.len() as u64) as usize])
                        .collect();
                }
            }
        }
        // Fallback: the pattern taken literally.
        pattern.to_string()
    }

    fn parse_class(body: &str) -> Vec<char> {
        let chars: Vec<char> = body.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (a, b) = (chars[i] as u32, chars[i + 2] as u32);
                for c in a..=b {
                    if let Some(c) = char::from_u32(c) {
                        out.push(c);
                    }
                }
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        out
    }

    fn parse_repeat(suffix: &str) -> (usize, usize) {
        match suffix {
            "*" => (0, 32),
            "+" => (1, 32),
            "" => (1, 1),
            _ => {
                if let Some(body) = suffix.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
                    if let Some((lo, hi)) = body.split_once(',') {
                        if let (Ok(lo), Ok(hi)) = (lo.trim().parse(), hi.trim().parse()) {
                            return (lo, hi);
                        }
                    } else if let Ok(n) = body.trim().parse::<usize>() {
                        return (n, n);
                    }
                }
                (1, 1)
            }
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The strategy generating arbitrary booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 0
        }
    }
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, …)`
/// becomes a normal `#[test]` that draws and runs `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.resolved_cases();
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            // Strategy objects, evaluated once (shadowed per-case below).
            $(let $arg = $strat;)*
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            while accepted < cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)*
                let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        if rejected > cases.saturating_mul(256) {
                            panic!("too many rejected cases ({rejected}): {why}");
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            accepted + 1,
                            cases,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Chooses among strategies (nested unions; roughly uniform for the
/// two-alternative uses in this workspace).
#[macro_export]
macro_rules! prop_oneof {
    ($a:expr $(,)?) => { $a };
    ($a:expr, $($rest:expr),+ $(,)?) => {
        $crate::strategy::Union::new($a, $crate::prop_oneof!($($rest),+))
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Rejects the current case (drawing a replacement) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(-3i64..=3), &mut rng);
            assert!((-3..=3).contains(&v));
            let w = Strategy::generate(&(2usize..9), &mut rng);
            assert!((2..9).contains(&w));
            let f = Strategy::generate(&(-0.9f64..0.9), &mut rng);
            assert!((-0.9..0.9).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_honour_the_range() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(0i32..5, 1..4), &mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn char_class_pattern_generates_matching_text() {
        let mut rng = TestRng::from_name("class");
        for _ in 0..200 {
            let s = Strategy::generate(&"[-0-9.,: ()]{0,40}", &mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| "-0123456789.,: ()".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(
            x in 0i64..100,
            v in crate::collection::vec(-5i32..5, 0..10),
        ) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
