//! Property tests for the baseline executors.

use plr_baselines::executor::RecurrenceExecutor;
use plr_baselines::scan::MatState;
use plr_baselines::{Cub, Sam, Scan};
use plr_core::serial;
use plr_core::signature::Signature;
use plr_sim::DeviceConfig;
use proptest::prelude::*;

fn feedback() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-3i64..=3, 1..4)
        .prop_filter("trailing coefficient nonzero", |fb| fb.last() != Some(&0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matstate_combine_is_associative(
        fb in feedback(),
        a in -50i64..50,
        b in -50i64..50,
        c in -50i64..50,
    ) {
        let ea = MatState::from_input(a, &fb);
        let eb = MatState::from_input(b, &fb);
        let ec = MatState::from_input(c, &fb);
        prop_assert_eq!(ea.combine(&eb).combine(&ec), ea.combine(&eb.combine(&ec)));
    }

    #[test]
    fn scan_executor_matches_serial_for_any_signature(
        fb in feedback(),
        ff_extra in proptest::collection::vec(-2i64..=2, 0..3),
        ff_last in prop_oneof![-2i64..=-1, 1i64..=2],
        input in proptest::collection::vec(-20i64..20, 1..600),
    ) {
        let mut ff = ff_extra;
        ff.push(ff_last);
        let sig = Signature::new(ff, fb).unwrap();
        let device = DeviceConfig::titan_x();
        let report = Scan.run(&sig, &input, &device).unwrap();
        prop_assert_eq!(report.output, serial::run(&sig, &input), "{}", &sig);
    }

    #[test]
    fn prefix_family_executors_match_serial(
        which in 0usize..3,
        param in 1usize..5,
        input in proptest::collection::vec(-20i64..20, 1..3000),
    ) {
        use plr_core::prefix;
        let sig = match which {
            0 => prefix::prefix_sum::<i64>(),
            1 => prefix::tuple_prefix_sum::<i64>(param),
            _ => prefix::higher_order_prefix_sum::<i64>(param),
        };
        let device = DeviceConfig::titan_x();
        for exec in [&Cub as &dyn RecurrenceExecutor<i64>, &Sam as _] {
            let report = exec.run(&sig, &input, &device).unwrap();
            prop_assert_eq!(&report.output, &serial::run(&sig, &input),
                "{} on {}", exec.name(), &sig);
        }
    }
}
