//! # plr-baselines
//!
//! Reimplementations of the comparison codes from the paper's evaluation,
//! all running on the `plr-sim` machine model through one common
//! [`executor::RecurrenceExecutor`] interface:
//!
//! * [`memcpy`] — the device-to-device copy that upper-bounds throughput;
//! * [`cub::Cub`] — Merrill & Garland's single-pass decoupled-look-back
//!   scan (CUB 1.5.1 strategy): vector scans for tuples, the whole code
//!   repeated `r` times for order-`r` prefix sums;
//! * [`sam::Sam`] — the PLDI'16 higher-order/tuple prefix-sum code:
//!   single-pass for every order, interleaved scalar scans for tuples,
//!   install-time auto-tuning of the tile size;
//! * [`scan::Scan`] — Blelloch's general method: `k×k` matrix + `k`-vector
//!   elements scanned with a matrix-multiply operator (`O(nk²)` memory);
//! * [`alg3::Alg3`] — Nehab et al.'s 2D recursive filtering (reads the
//!   input twice, always filters both horizontal directions);
//! * [`rec::Rec`] — Chaurasia et al.'s Halide-generated tiled filters
//!   (serial cross-tile carries, re-reads the input).
//!
//! Each executor enforces the capability limits the paper reports (what
//! signatures it accepts and up to which input size), validates its output
//! against its own serial semantics, and exposes cost estimates for input
//! sizes too large to run functionally.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alg3;
pub mod cub;
pub mod executor;
pub mod memcpy;
pub mod rec;
pub mod sam;
pub mod scan;
mod stream;

pub use alg3::Alg3;
pub use cub::Cub;
pub use executor::{classify_prefix_family, PrefixFamily, RecurrenceExecutor};
pub use rec::Rec;
pub use sam::Sam;
pub use scan::Scan;
