//! A CUB-like prefix-sum executor (Merrill & Garland's single-pass
//! decoupled look-back scan, CUB 1.5.1's strategy).
//!
//! Structure, per the paper's characterization:
//!
//! * **standard prefix sum** — one single-pass scan, 2n data movement;
//! * **tuple prefix sums** — one scan over `s`-element *vectors*
//!   (`int2`/`int3` style); still 2n words of payload, but the
//!   block-load/block-store transposition through shared memory grows with
//!   the vector width, and strided vector accesses derate the achieved
//!   bandwidth — this is why CUB's tuple throughput decreases with `s`
//!   (paper Section 6.1.2);
//! * **higher-order prefix sums** — the *entire code* is repeated `r`
//!   times (prefix sum of prefix sum), so data movement is `r·2n`
//!   (Section 6.1.3: "CUB repeats the entire code", which is why SAM
//!   outperforms it).
//!
//! CUB does not support general recurrences: correction factors other than
//! one never arise in its carry math, so filters are rejected.

use crate::executor::{classify_prefix_family, PrefixFamily, RecurrenceExecutor};
use crate::stream::{account_pass, estimate_pass, PassProfile};
use plr_core::element::Element;
use plr_core::error::EngineError;
use plr_core::signature::Signature;
use plr_core::{prefix, serial};
use plr_sim::timing::Workload;
use plr_sim::{DeviceConfig, GlobalMemory, RunReport};

/// Maximum supported input: 4 GB of words, like all the tested codes.
const MAX_LEN: usize = 1 << 30;

/// The CUB-like executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cub;

impl Cub {
    /// CUB's tile geometry: 128-thread blocks, ~16 items per thread.
    const TILE: usize = 2048;
    const THREADS: usize = 128;

    fn profile(family: PrefixFamily) -> PassProfile {
        let s = match family {
            PrefixFamily::Tuple(s) => s,
            _ => 1,
        };
        PassProfile {
            tile: Self::TILE,
            // Raking reduce-then-scan: ~3 ops per element.
            flops_per_element: 3.0,
            // Block load/store transposition grows with the vector width.
            shared_per_element: 2.0 + 3.0 * (s as f64 - 1.0),
            shuffles_per_element: 1.0,
            carry_words: s,
        }
    }

    /// Strided vector loads derate achieved bandwidth (calibrated to the
    /// paper's ~30% / ~17+% PLR advantage on 2- and 3-tuples).
    fn bandwidth_efficiency(family: PrefixFamily) -> f64 {
        match family {
            PrefixFamily::Tuple(s) => 1.0 / (1.0 + 0.3 * (s as f64 - 1.0)),
            // Pass boundaries of the iterated code stall the pipeline a bit.
            PrefixFamily::HigherOrder(_) => 0.82,
            PrefixFamily::Standard => 1.0,
        }
    }

    fn passes(family: PrefixFamily) -> usize {
        match family {
            PrefixFamily::HigherOrder(r) => r,
            _ => 1,
        }
    }
}

impl<T: Element> RecurrenceExecutor<T> for Cub {
    fn name(&self) -> &'static str {
        "CUB"
    }

    fn supports(&self, signature: &Signature<T>, n: usize) -> Result<(), EngineError> {
        if classify_prefix_family(signature).is_none() {
            return Err(EngineError::UnsupportedSignature {
                reason: format!("CUB computes prefix sums only, not {signature}"),
            });
        }
        if n > MAX_LEN {
            return Err(EngineError::InputTooLarge {
                len: n,
                max: MAX_LEN,
            });
        }
        Ok(())
    }

    fn run(
        &self,
        signature: &Signature<T>,
        input: &[T],
        device: &DeviceConfig,
    ) -> Result<RunReport<T>, EngineError> {
        self.supports(signature, input.len())?;
        let n = input.len();
        check_budget::<T>(n, device)?;
        let family = classify_prefix_family(signature).expect("checked by supports");
        let elem = T::BYTES as u64;
        let profile = Self::profile(family);
        let passes = Self::passes(family);

        let mut mem = GlobalMemory::new(device.clone());
        let src = mem.alloc(n as u64 * elem, "input");
        let dst = mem.alloc(n as u64 * elem, "output");
        let carry = mem.alloc(
            4 + 64 * (profile.carry_words as u64 + 1) * elem + 64 * 4,
            "tile state",
        );
        for _ in 0..passes {
            account_pass(&mut mem, src, dst, n, elem, carry, &profile);
        }

        // Functional result: iterated scans for higher order, the plain
        // recurrence otherwise (identical values either way).
        let mut output = input.to_vec();
        for _ in 0..passes {
            let scan = match family {
                PrefixFamily::Tuple(s) => prefix::tuple_prefix_sum::<T>(s),
                _ => prefix::prefix_sum::<T>(),
            };
            output = serial::run(&scan, &output);
        }

        Ok(RunReport {
            output,
            counters: *mem.counters(),
            workload: self.workload(family, n, passes),
            peak_bytes: mem.peak_bytes(),
        })
    }

    fn estimate(
        &self,
        signature: &Signature<T>,
        n: usize,
        device: &DeviceConfig,
    ) -> Result<RunReport<T>, EngineError> {
        self.supports(signature, n)?;
        check_budget::<T>(n, device)?;
        let family = classify_prefix_family(signature).expect("checked by supports");
        let elem = T::BYTES as u64;
        let profile = Self::profile(family);
        let passes = Self::passes(family);

        let mut counters = plr_sim::Counters::new();
        for _ in 0..passes {
            counters.merge(&estimate_pass(n, elem, &profile));
        }
        // Streaming approximation: every pass's payload reads are cold.
        counters.l2_read_miss_bytes = passes as u64 * n as u64 * elem;

        let peak = {
            let mut mem = GlobalMemory::new(device.clone());
            mem.alloc(n as u64 * elem, "input");
            mem.alloc(n as u64 * elem, "output");
            mem.alloc(
                4 + 64 * (profile.carry_words as u64 + 1) * elem + 64 * 4,
                "tile state",
            );
            mem.peak_bytes()
        };
        Ok(RunReport {
            output: Vec::new(),
            counters,
            workload: self.workload(family, n, passes),
            peak_bytes: peak,
        })
    }
}

impl Cub {
    fn workload(&self, family: PrefixFamily, n: usize, passes: usize) -> Workload {
        Workload {
            threads_per_block: Self::THREADS,
            registers_per_thread: 32,
            exposed_hops: 16,
            launches: passes as u64,
            bandwidth_efficiency: Self::bandwidth_efficiency(family),
            ..Workload::new(n as u64, (passes * n.div_ceil(Self::TILE)) as u64)
        }
    }
}

/// In/out arrays plus tile state must fit on the device.
fn check_budget<T: Element>(n: usize, device: &DeviceConfig) -> Result<(), EngineError> {
    let buffers = 2 * n as u64 * T::BYTES as u64 + (1 << 20);
    if !device.fits(buffers) {
        return Err(EngineError::InputTooLarge {
            len: n,
            max: device.max_elements(2 * T::BYTES as u64),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::validate::validate;

    fn device() -> DeviceConfig {
        DeviceConfig::titan_x()
    }

    #[test]
    fn computes_prefix_family_correctly() {
        let input: Vec<i64> = (0..9999).map(|i| (i % 13) as i64 - 6).collect();
        for sig in [
            prefix::prefix_sum::<i64>(),
            prefix::tuple_prefix_sum::<i64>(2),
            prefix::tuple_prefix_sum::<i64>(3),
            prefix::higher_order_prefix_sum::<i64>(2),
            prefix::higher_order_prefix_sum::<i64>(3),
        ] {
            let r = Cub.run(&sig, &input, &device()).unwrap();
            validate(&serial::run(&sig, &input), &r.output, 0.0)
                .unwrap_or_else(|e| panic!("{sig}: {e}"));
        }
    }

    #[test]
    fn rejects_filters() {
        let sig: Signature<f32> = "0.2:0.8".parse().unwrap();
        assert!(matches!(
            Cub.supports(&sig, 100),
            Err(EngineError::UnsupportedSignature { .. })
        ));
    }

    #[test]
    fn higher_order_multiplies_traffic_by_r() {
        let n = 1 << 20;
        let d = device();
        let one = Cub.estimate(&prefix::prefix_sum::<i32>(), n, &d).unwrap();
        let three = Cub
            .estimate(&prefix::higher_order_prefix_sum::<i32>(3), n, &d)
            .unwrap();
        let ratio = three.counters.global_read_bytes as f64 / one.counters.global_read_bytes as f64;
        assert!((ratio - 3.0).abs() < 0.01, "ratio {ratio}");
        assert_eq!(three.workload.launches, 3);
    }

    #[test]
    fn estimate_matches_run_traffic() {
        let n = 50_000;
        let d = device();
        let input = vec![1i32; n];
        for sig in [
            prefix::tuple_prefix_sum::<i32>(2),
            prefix::higher_order_prefix_sum::<i32>(2),
        ] {
            let run = Cub.run(&sig, &input, &d).unwrap();
            let est = Cub.estimate(&sig, n, &d).unwrap();
            assert_eq!(
                run.counters.global_read_bytes,
                est.counters.global_read_bytes
            );
            assert_eq!(
                run.counters.global_write_bytes,
                est.counters.global_write_bytes
            );
            assert_eq!(run.counters.flops, est.counters.flops);
        }
    }

    #[test]
    fn memory_usage_close_to_memcpy() {
        // Table 2: CUB 623.5 MB at 2^26 words (memcpy + 2 MB).
        let r = Cub
            .estimate(&prefix::prefix_sum::<i32>(), 1 << 26, &device())
            .unwrap();
        let mb = r.peak_bytes as f64 / (1024.0 * 1024.0);
        assert!(mb > 621.0 && mb < 624.5, "CUB peak {mb:.1} MB");
    }
}
