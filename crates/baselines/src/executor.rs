//! The common interface every comparison code implements.

use plr_core::element::Element;
use plr_core::error::EngineError;
use plr_core::signature::Signature;
use plr_sim::{DeviceConfig, RunReport};

/// A recurrence executor that runs on the machine model.
///
/// Implementations mirror the paper's comparison codes: each declares which
/// signatures and input sizes it supports (`CUB`/`SAM` handle the
/// prefix-sum family, `Alg3`/`Rec` single-feed-forward filters with size
/// caps, `Scan` everything until it runs out of memory), runs functionally
/// for validation, and provides a closed-form cost estimate for input sizes
/// too large to execute.
pub trait RecurrenceExecutor<T: Element> {
    /// Short name as used in the paper's figures ("CUB", "SAM", …).
    fn name(&self) -> &'static str;

    /// Checks whether this executor supports `signature` at length `n`.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnsupportedSignature`] or
    /// [`EngineError::InputTooLarge`] describing the limitation.
    fn supports(&self, signature: &Signature<T>, n: usize) -> Result<(), EngineError>;

    /// Executes functionally on the machine model, producing validated
    /// output values and full event accounting.
    ///
    /// # Errors
    ///
    /// The same errors as [`RecurrenceExecutor::supports`].
    fn run(
        &self,
        signature: &Signature<T>,
        input: &[T],
        device: &DeviceConfig,
    ) -> Result<RunReport<T>, EngineError>;

    /// Closed-form cost estimate for an `n`-element input (no output
    /// values). Traffic and operation counts match [`RecurrenceExecutor::run`];
    /// L2 misses are the streaming approximation.
    ///
    /// # Errors
    ///
    /// The same errors as [`RecurrenceExecutor::supports`].
    fn estimate(
        &self,
        signature: &Signature<T>,
        n: usize,
        device: &DeviceConfig,
    ) -> Result<RunReport<T>, EngineError>;
}

/// The prefix-sum family CUB and SAM support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixFamily {
    /// The standard prefix sum `(1 : 1)`.
    Standard,
    /// An `s`-tuple prefix sum `(1 : 0, …, 0, 1)` with `s >= 2`.
    Tuple(usize),
    /// An order-`r` prefix sum (binomial feedback) with `r >= 2`.
    HigherOrder(usize),
}

/// Classifies a signature into the prefix-sum family, if it belongs.
///
/// # Examples
///
/// ```
/// use plr_baselines::executor::{classify_prefix_family, PrefixFamily};
/// use plr_core::signature::Signature;
///
/// let sig: Signature<i32> = "1: 0, 1".parse()?;
/// assert_eq!(classify_prefix_family(&sig), Some(PrefixFamily::Tuple(2)));
/// let filt: Signature<f32> = "0.2: 0.8".parse()?;
/// assert_eq!(classify_prefix_family(&filt), None);
/// # Ok::<(), plr_core::error::SignatureError>(())
/// ```
pub fn classify_prefix_family<T: Element>(signature: &Signature<T>) -> Option<PrefixFamily> {
    if !signature.is_pure_feedback() {
        return None;
    }
    let fb = signature.feedback();
    let k = fb.len();
    if k == 1 && fb[0].is_one() {
        return Some(PrefixFamily::Standard);
    }
    // Tuple: all zero except a trailing one.
    if fb[..k - 1].iter().all(|c| c.is_zero()) && fb[k - 1].is_one() {
        return Some(PrefixFamily::Tuple(k));
    }
    // Higher order: b-j = (-1)^(j+1)·C(k, j).
    let mut binom: i64 = 1;
    for (j, &b) in fb.iter().enumerate() {
        let jj = (j + 1) as i64;
        binom = binom * (k as i64 - jj + 1) / jj;
        let expect = if (j + 1) % 2 == 1 { binom } else { -binom };
        if b.to_f64() != expect as f64 {
            return None;
        }
    }
    Some(PrefixFamily::HigherOrder(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::prefix;

    #[test]
    fn classifies_standard() {
        assert_eq!(
            classify_prefix_family(&prefix::prefix_sum::<i32>()),
            Some(PrefixFamily::Standard)
        );
    }

    #[test]
    fn classifies_tuples() {
        for s in 2..=5 {
            assert_eq!(
                classify_prefix_family(&prefix::tuple_prefix_sum::<i64>(s)),
                Some(PrefixFamily::Tuple(s))
            );
        }
    }

    #[test]
    fn classifies_higher_orders() {
        for r in 2..=5 {
            assert_eq!(
                classify_prefix_family(&prefix::higher_order_prefix_sum::<i64>(r)),
                Some(PrefixFamily::HigherOrder(r))
            );
        }
    }

    #[test]
    fn rejects_filters_and_general_recurrences() {
        let filt: Signature<f32> = "0.2:0.8".parse().unwrap();
        assert_eq!(classify_prefix_family(&filt), None);
        let gen: Signature<i32> = "1: 1, 2".parse().unwrap();
        assert_eq!(classify_prefix_family(&gen), None);
        let fir: Signature<i32> = "1, 1: 1".parse().unwrap();
        assert_eq!(classify_prefix_family(&fir), None);
        let neg: Signature<i32> = "1: -1".parse().unwrap();
        assert_eq!(classify_prefix_family(&neg), None);
        // Looks like order-2 but wrong second coefficient.
        let almost: Signature<i32> = "1: 2, 1".parse().unwrap();
        assert_eq!(classify_prefix_family(&almost), None);
    }
}
