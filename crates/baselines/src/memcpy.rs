//! The memory-copy reference: the throughput upper bound.
//!
//! Every figure in the paper includes the device-to-device memcpy
//! throughput because no code that reads each input value and writes each
//! output value can beat it.

use plr_core::element::Element;
use plr_sim::timing::Workload;
use plr_sim::{DeviceConfig, GlobalMemory, RunReport};

/// Whether an `n`-element copy fits on the device.
pub fn fits<T: Element>(n: usize, device: &DeviceConfig) -> bool {
    device.fits(2 * n as u64 * T::BYTES as u64)
}

/// Copies `input` to the output on the machine model.
pub fn run<T: Element>(input: &[T], device: &DeviceConfig) -> RunReport<T> {
    let mut report = estimate::<T>(input.len(), device);
    report.output = input.to_vec();
    report
}

/// Cost-only memcpy of `n` elements.
pub fn estimate<T: Element>(n: usize, device: &DeviceConfig) -> RunReport<T> {
    let elem = T::BYTES as u64;
    let mut mem = GlobalMemory::new(device.clone());
    let src = mem.alloc(n as u64 * elem, "input");
    let dst = mem.alloc(n as u64 * elem, "output");
    // One streaming pass. Large copies use analytic totals (every read is
    // cold); small ones replay through the cache model.
    let nb = n as u64 * elem;
    if nb <= (1 << 25) {
        mem.read(src, 0, nb);
        mem.write(dst, 0, nb);
    } else {
        let c = mem.counters_mut();
        c.global_read_bytes += nb;
        c.global_write_bytes += nb;
        c.l2_read_miss_bytes += nb;
    }
    let workload = Workload {
        // The copy engine is not subject to SM residency; model it as
        // enough blocks to saturate.
        ..Workload::new(n as u64, n.div_ceil(4096).max(1) as u64)
    };
    RunReport {
        output: Vec::new(),
        counters: *mem.counters(),
        workload,
        peak_bytes: mem.peak_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_sim::CostModel;

    #[test]
    fn copies_values() {
        let device = DeviceConfig::titan_x();
        let input = vec![1i32, 2, 3];
        let r = run(&input, &device);
        assert_eq!(r.output, input);
    }

    #[test]
    fn traffic_is_exactly_2n() {
        let device = DeviceConfig::titan_x();
        let r = estimate::<i32>(1 << 20, &device);
        assert_eq!(r.counters.global_read_bytes, 4 << 20);
        assert_eq!(r.counters.global_write_bytes, 4 << 20);
        assert_eq!(r.counters.flops, 0);
    }

    #[test]
    fn saturates_the_bandwidth_roof_for_large_inputs() {
        let device = DeviceConfig::titan_x();
        let model = CostModel::new(device.clone());
        let r = estimate::<i32>(1 << 30, &device);
        let tput = r.throughput(&model);
        assert!(
            tput > 31.0e9 && tput < 33.1e9,
            "memcpy throughput {tput:.3e}"
        );
    }

    #[test]
    fn memory_usage_matches_table_2() {
        // Table 2: memcpy uses 621.5 MB for 2^26-word buffers:
        // 512 MB of data + 109.5 MB context.
        let device = DeviceConfig::titan_x();
        let r = estimate::<i32>(1 << 26, &device);
        let mb = r.peak_bytes as f64 / (1024.0 * 1024.0);
        assert!((mb - 621.5).abs() < 0.6, "memcpy peak {mb:.1} MB");
    }
}
