//! A Rec-like executor (Chaurasia, Ragan-Kelley, Paris, Drettakis & Durand,
//! HPG 2015: compiling high-performance recursive filters).
//!
//! Rec is a Halide-based code generator for 2D recursive filters. The paper
//! runs it on square inputs with vertical filtering disabled and the
//! horizontal filtering limited to one (causal) direction. Its structure,
//! per the paper:
//!
//! * tiled processing with the local carries combined **serially** across
//!   tiles (Section 4: "Chaurasia et al.'s code serially combines the
//!   local carries"), unlike PLR's parallel Phase 1;
//! * not communication efficient: the fix-up pass re-reads the input, so
//!   beyond the 2 MB L2 it pays ~2× cold misses (Table 3) — which is
//!   exactly why PLR starts outperforming Rec at one million entries, the
//!   smallest size exceeding the L2 (Section 6.5);
//! * floating point only, one non-recursive coefficient, inputs up to 1 GB.

use crate::alg3::image_width;
use crate::executor::RecurrenceExecutor;
use plr_core::element::Element;
use plr_core::error::EngineError;
use plr_core::serial;
use plr_core::signature::Signature;
use plr_sim::timing::Workload;
use plr_sim::{DeviceConfig, GlobalMemory, RunReport};

/// Maximum input: 1 GB of words.
const MAX_BYTES: u64 = 1 << 30;

/// The Rec-like executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rec;

impl Rec {
    /// 32×32 image tiles.
    const TILE: usize = 32 * 32;

    fn check<T: Element>(signature: &Signature<T>, n: usize) -> Result<(), EngineError> {
        if !T::IS_FLOAT {
            return Err(EngineError::UnsupportedSignature {
                reason: "Rec is a floating-point image-filtering code".to_owned(),
            });
        }
        if signature.fir_order() > 0 {
            return Err(EngineError::UnsupportedSignature {
                reason: "Rec supports at most one non-recursive coefficient".to_owned(),
            });
        }
        let max = (MAX_BYTES / T::BYTES as u64) as usize;
        if n > max {
            return Err(EngineError::InputTooLarge { len: n, max });
        }
        Ok(())
    }

    /// Rec's semantics on our 1D input: rows of `image_width(n)` values,
    /// each filtered causally (one direction only).
    pub fn reference<T: Element>(signature: &Signature<T>, input: &[T]) -> Vec<T> {
        let w = image_width(input.len());
        let mut out = input.to_vec();
        for row in out.chunks_mut(w) {
            let filtered = serial::run(signature, row);
            row.copy_from_slice(&filtered);
        }
        out
    }

    fn account<T: Element>(
        signature: &Signature<T>,
        n: usize,
        device: &DeviceConfig,
    ) -> (GlobalMemory, Workload) {
        let elem = T::BYTES as u64;
        let k = signature.order() as u64;
        let nb = n as u64 * elem;
        let mut mem = GlobalMemory::new(device.clone());
        let input = mem.alloc(nb, "input image");
        let output = mem.alloc(nb, "output image");
        // Tile-carry planes: Table 2 shows 17-49 MB extra, growing ~16 MB
        // per order at 2^26 words.
        let carry_bytes = 64 * 1024 + k * nb / 16;
        let carries = mem.alloc(carry_bytes, "tile carries");

        if nb <= (1 << 25) {
            // Line-accurate path: the L2 model decides whether the second
            // input read hits (it does below the 2 MB capacity, which is
            // the paper's Rec-vs-PLR crossover).
            // Pass 1: intra-tile filtering, emitting tile carries.
            let mut off = 0u64;
            while off < nb {
                let len = (Self::TILE as u64 * elem).min(nb - off);
                mem.read(input, off, len);
                off += len;
            }
            mem.write(carries, 0, carry_bytes);
            // Serial cross-tile carry combination (small but serial).
            mem.read(carries, 0, carry_bytes);
            // Pass 2: re-reads the input, applies carries, writes out.
            let mut off = 0u64;
            while off < nb {
                let len = (Self::TILE as u64 * elem).min(nb - off);
                mem.read(input, off, len);
                mem.write(output, off, len);
                off += len;
            }
        } else {
            // Analytic streaming totals: both input reads are cold far
            // beyond the L2.
            let c = mem.counters_mut();
            c.global_read_bytes += 2 * nb + carry_bytes;
            c.global_write_bytes += nb + carry_bytes;
            c.l2_read_miss_bytes += 2 * nb + carry_bytes;
        }
        let tiles = n.div_ceil(Self::TILE) as u64;
        let workload = Workload {
            threads_per_block: 256,
            // The serial carry combination exposes a chain that grows with
            // the tile count along one image dimension.
            exposed_hops: (image_width(n) / 64) as u64,
            launches: 2,
            bandwidth_efficiency: 0.95,
            ..Workload::new(n as u64, 2 * tiles)
        };
        (mem, workload)
    }

    fn flops<T: Element>(signature: &Signature<T>, n: usize) -> u64 {
        // Two passes × k multiply-adds per element.
        (2 * signature.order() * n) as u64
    }
}

impl<T: Element> RecurrenceExecutor<T> for Rec {
    fn name(&self) -> &'static str {
        "Rec"
    }

    fn supports(&self, signature: &Signature<T>, n: usize) -> Result<(), EngineError> {
        Self::check(signature, n)
    }

    fn run(
        &self,
        signature: &Signature<T>,
        input: &[T],
        device: &DeviceConfig,
    ) -> Result<RunReport<T>, EngineError> {
        self.supports(signature, input.len())?;
        let (mut mem, workload) = Self::account(signature, input.len(), device);
        mem.counters_mut().flops += Self::flops(signature, input.len());
        Ok(RunReport {
            output: Self::reference(signature, input),
            counters: *mem.counters(),
            workload,
            peak_bytes: mem.peak_bytes(),
        })
    }

    fn estimate(
        &self,
        signature: &Signature<T>,
        n: usize,
        device: &DeviceConfig,
    ) -> Result<RunReport<T>, EngineError> {
        self.supports(signature, n)?;
        let (mut mem, workload) = Self::account(signature, n, device);
        mem.counters_mut().flops += Self::flops(signature, n);
        Ok(RunReport {
            output: Vec::new(),
            counters: *mem.counters(),
            workload,
            peak_bytes: mem.peak_bytes(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::validate::validate;
    use plr_sim::CostModel;

    fn device() -> DeviceConfig {
        DeviceConfig::titan_x()
    }

    fn lp1() -> Signature<f32> {
        "0.2:0.8".parse().unwrap()
    }

    #[test]
    fn output_is_row_wise_causal_filter() {
        let n = 64 * 64;
        let input: Vec<f32> = (0..n).map(|i| ((i % 13) as f32) - 6.0).collect();
        let r = Rec.run(&lp1(), &input, &device()).unwrap();
        validate(&Rec::reference(&lp1(), &input), &r.output, 1e-3).unwrap();
    }

    #[test]
    fn second_input_read_hits_l2_for_small_images() {
        // Below the 2 MB L2 the fix-up pass re-read is free…
        let small = Rec.run(&lp1(), &vec![1.0f32; 1 << 17], &device()).unwrap(); // 512 KB
        let nb = (1u64 << 17) * 4;
        assert!(small.counters.l2_read_miss_bytes < nb + nb / 2);
        // …beyond it, both reads miss.
        let large = Rec.estimate(&lp1(), 1 << 22, &device()).unwrap(); // 16 MB
        let nb = (1u64 << 22) * 4;
        assert!(large.counters.l2_read_miss_bytes > 2 * nb - nb / 8);
    }

    #[test]
    fn crossover_with_cache_capacity_shows_in_memory_time() {
        // Rec's modelled *memory* time per element should degrade once the
        // image exceeds the L2 (the fix-up re-read starts missing), which
        // is the paper's crossover story. Fixed launch overheads are
        // excluded — they dominate tiny runs and would mask the effect.
        let d = device();
        let model = CostModel::new(d.clone());
        let small = Rec.run(&lp1(), &vec![1.0f32; 1 << 17], &d).unwrap(); // 512 KB < L2
        let large = Rec.estimate(&lp1(), 1 << 24, &d).unwrap(); // 64 MB > L2
        let small_mem_per_elem = small.time(&model).memory_time / (1 << 17) as f64;
        let large_mem_per_elem = large.time(&model).memory_time / (1 << 24) as f64;
        assert!(
            large_mem_per_elem > 1.3 * small_mem_per_elem,
            "expected cache-driven degradation: {small_mem_per_elem:e} vs {large_mem_per_elem:e}"
        );
    }

    #[test]
    fn memory_usage_matches_table_2_scale() {
        // Table 2: 638.5 / 654.5 / 670.5 MB for orders 1-3 at 2^26 words.
        let d = device();
        let sigs: [Signature<f32>; 3] = [
            "0.2:0.8".parse().unwrap(),
            "0.04:1.6,-0.64".parse().unwrap(),
            "0.008:2.4,-1.92,0.512".parse().unwrap(),
        ];
        let expect = [638.5, 654.5, 670.5];
        for (sig, &want) in sigs.iter().zip(&expect) {
            let r = Rec.estimate(sig, 1 << 26, &d).unwrap();
            let mb = r.peak_bytes as f64 / (1024.0 * 1024.0);
            assert!(
                (mb - want).abs() < 10.0,
                "order {}: {mb:.1} vs {want}",
                sig.order()
            );
        }
    }

    #[test]
    fn rejects_what_the_paper_says_it_rejects() {
        let hp: Signature<f32> = "0.9,-0.9:0.8".parse().unwrap();
        assert!(Rec.supports(&hp, 100).is_err());
        assert!(Rec.supports(&lp1(), (1 << 28) + 1).is_err()); // > 1 GB of f32
        assert!(Rec.supports(&lp1(), 1 << 28).is_ok());
    }
}
