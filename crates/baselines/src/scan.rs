//! The Scan baseline: Blelloch's general recurrence-as-prefix-scan method.
//!
//! Blelloch (1990) showed every order-`k` linear recurrence can be computed
//! by a prefix scan whose elements are `k×k` matrices paired with
//! `k`-vectors, combined by matrix multiplication and matrix-vector
//! addition. The paper implements the operator and runs it through CUB's
//! scan; this module does the same on the machine model.
//!
//! Consequences the paper measures and this model reproduces:
//!
//! * **memory**: each element is stored as `k² + k` words, and the scan
//!   keeps an input and an output copy — `2(k²+k)·n` words total, which is
//!   1 / 3 / 6 GB for orders 1–3 at 2^26 words (Table 2) and caps the
//!   largest runnable input (2^29 at order 1 on the 12 GB card);
//! * **traffic**: the scan streams the expanded representation once in and
//!   once out — `(k²+k)·n` words of cold read misses (Table 3);
//! * **throughput**: about half of memcpy at order 1, worse at higher
//!   orders (Figures 1–9).

use crate::executor::RecurrenceExecutor;
use crate::stream::{account_pass, estimate_pass, PassProfile};
use plr_core::element::Element;
use plr_core::error::EngineError;
use plr_core::serial;
use plr_core::signature::Signature;
use plr_sim::timing::Workload;
use plr_sim::{DeviceConfig, GlobalMemory, RunReport};

/// A scan element: `k×k` matrix (row-major) and `k`-vector.
#[derive(Debug, Clone, PartialEq)]
pub struct MatState<T> {
    k: usize,
    mat: Vec<T>,
    vec: Vec<T>,
}

impl<T: Element> MatState<T> {
    /// The element representing one input value `t` for the recurrence
    /// `(1 : feedback…)`: the companion matrix and `t·e0`.
    pub fn from_input(t: T, feedback: &[T]) -> Self {
        let k = feedback.len();
        let mut mat = vec![T::zero(); k * k];
        // Row 0: the feedback coefficients; row i > 0: shift (y[i-1]).
        mat[..k].copy_from_slice(feedback);
        for i in 1..k {
            mat[i * k + (i - 1)] = T::one();
        }
        let mut vec = vec![T::zero(); k];
        vec[0] = t;
        MatState { k, mat, vec }
    }

    /// The scan combine operator: `self ⊕ next` where `self` precedes
    /// `next` in sequence order. `(M₁,v₁) ⊕ (M₂,v₂) = (M₂M₁, M₂v₁+v₂)`.
    pub fn combine(&self, next: &MatState<T>) -> MatState<T> {
        let k = self.k;
        assert_eq!(k, next.k, "operands must share the order");
        let mut mat = vec![T::zero(); k * k];
        for i in 0..k {
            for j in 0..k {
                let mut acc = T::zero();
                for l in 0..k {
                    acc = acc.add(next.mat[i * k + l].mul(self.mat[l * k + j]));
                }
                mat[i * k + j] = acc;
            }
        }
        let mut vec = Vec::with_capacity(k);
        for i in 0..k {
            let mut acc = next.vec[i];
            for l in 0..k {
                acc = acc.add(next.mat[i * k + l].mul(self.vec[l]));
            }
            vec.push(acc);
        }
        MatState { k, mat, vec }
    }

    /// The recurrence output this state encodes (`y[i]` = first vector
    /// component of the inclusive scan at position `i`).
    pub fn output(&self) -> T {
        self.vec[0]
    }
}

/// The Scan executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scan;

impl Scan {
    const TILE: usize = 1024;
    const THREADS: usize = 256;

    /// Expanded words per element.
    fn words_per_element(k: usize) -> u64 {
        (k * k + k) as u64
    }

    fn profile(k: usize) -> PassProfile {
        let w = Self::words_per_element(k) as f64;
        PassProfile {
            tile: Self::TILE,
            // ~2 operator applications per element (reduce + scan), each
            // k³ + k² multiply-adds.
            flops_per_element: 2.0 * ((k * k * k) as f64 + (k * k) as f64),
            // The big elements move through shared memory for the local
            // scan.
            shared_per_element: 2.0 * w,
            shuffles_per_element: 0.0,
            carry_words: (k * k + k),
        }
    }

    fn expanded_bytes<T: Element>(k: usize, n: usize) -> u64 {
        Self::words_per_element(k) * n as u64 * T::BYTES as u64
    }

    fn workload(k: usize, n: usize) -> Workload {
        Workload {
            threads_per_block: Self::THREADS,
            // Paper: Scan "suffers from correspondingly higher register
            // pressure" — the k×k matrices live in registers.
            registers_per_thread: (32 + 8 * k * k).min(128),
            exposed_hops: 16,
            launches: 1,
            ..Workload::new(n as u64, n.div_ceil(Self::TILE) as u64)
        }
    }
}

impl<T: Element> RecurrenceExecutor<T> for Scan {
    fn name(&self) -> &'static str {
        "Scan"
    }

    fn supports(&self, signature: &Signature<T>, n: usize) -> Result<(), EngineError> {
        let k = signature.order();
        let needed = 2 * Scan::expanded_bytes::<T>(k, n);
        let device = DeviceConfig::titan_x();
        let budget = device.global_mem_bytes as u64 - device.context_overhead_bytes;
        if needed > budget {
            let max = (budget / (2 * Scan::words_per_element(k) * T::BYTES as u64)) as usize;
            return Err(EngineError::InputTooLarge { len: n, max });
        }
        Ok(())
    }

    fn run(
        &self,
        signature: &Signature<T>,
        input: &[T],
        device: &DeviceConfig,
    ) -> Result<RunReport<T>, EngineError> {
        self.supports(signature, input.len())?;
        let n = input.len();
        let k = signature.order();
        check_budget::<T>(k, n, device)?;
        let elem = T::BYTES as u64;
        let w = Scan::words_per_element(k);

        let mut mem = GlobalMemory::new(device.clone());
        let src = mem.alloc(Scan::expanded_bytes::<T>(k, n), "expanded input");
        let dst = mem.alloc(Scan::expanded_bytes::<T>(k, n), "expanded output");
        let carry = mem.alloc(
            4 + 64 * (Scan::words_per_element(k) + 1) * elem + 64 * 4,
            "tile state",
        );
        let profile = Scan::profile(k);
        // One pass over the expanded representation: n·w words each way.
        account_pass(
            &mut mem,
            src,
            dst,
            n * w as usize,
            elem,
            carry,
            &profile_scaled(&profile, w),
        );

        // Functional result: the actual matrix scan (map stage first).
        let (fir, recursive) = signature.split();
        let t = serial::fir_map(&fir, input);
        let mut output = Vec::with_capacity(n);
        let mut acc: Option<MatState<T>> = None;
        for &ti in &t {
            let e = MatState::from_input(ti, recursive.feedback());
            let next = match &acc {
                None => e,
                Some(prev) => prev.combine(&e),
            };
            output.push(next.output());
            acc = Some(next);
        }

        Ok(RunReport {
            output,
            counters: *mem.counters(),
            workload: Scan::workload(k, n),
            peak_bytes: mem.peak_bytes(),
        })
    }

    fn estimate(
        &self,
        signature: &Signature<T>,
        n: usize,
        device: &DeviceConfig,
    ) -> Result<RunReport<T>, EngineError> {
        self.supports(signature, n)?;
        let k = signature.order();
        check_budget::<T>(k, n, device)?;
        let elem = T::BYTES as u64;
        let w = Scan::words_per_element(k);
        let profile = Scan::profile(k);
        let mut counters = estimate_pass(n * w as usize, elem, &profile_scaled(&profile, w));
        counters.l2_read_miss_bytes = n as u64 * w * elem;
        let peak = {
            let mut mem = GlobalMemory::new(device.clone());
            mem.alloc(Scan::expanded_bytes::<T>(k, n), "expanded input");
            mem.alloc(Scan::expanded_bytes::<T>(k, n), "expanded output");
            mem.alloc(4 + 64 * (w + 1) * elem + 64 * 4, "tile state");
            mem.peak_bytes()
        };
        Ok(RunReport {
            output: Vec::new(),
            counters,
            workload: Scan::workload(k, n),
            peak_bytes: peak,
        })
    }
}

/// The expanded buffers must fit on the *actual* target device (supports()
/// checks the reference Titan X).
fn check_budget<T: Element>(k: usize, n: usize, device: &DeviceConfig) -> Result<(), EngineError> {
    let needed = 2 * Scan::expanded_bytes::<T>(k, n) + (1 << 20);
    if !device.fits(needed) {
        return Err(EngineError::InputTooLarge {
            len: n,
            max: device.max_elements(2 * Scan::words_per_element(k) * T::BYTES as u64),
        });
    }
    Ok(())
}

/// The pass streams `w` words per logical element; per-element costs are
/// declared per logical element, so spread them across the expanded words.
fn profile_scaled(p: &PassProfile, w: u64) -> PassProfile {
    PassProfile {
        tile: p.tile * w as usize,
        flops_per_element: p.flops_per_element / w as f64,
        shared_per_element: p.shared_per_element / w as f64,
        shuffles_per_element: p.shuffles_per_element / w as f64,
        carry_words: p.carry_words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::validate::validate;

    fn device() -> DeviceConfig {
        DeviceConfig::titan_x()
    }

    #[test]
    fn matrix_scan_computes_any_recurrence() {
        let input: Vec<i64> = (0..500).map(|i| (i % 9) as i64 - 4).collect();
        for text in ["1:1", "1:2,-1", "1:1,1", "1:3,-3,1", "1:0,1"] {
            let sig: Signature<i64> = text.parse().unwrap();
            let r = Scan.run(&sig, &input, &device()).unwrap();
            validate(&serial::run(&sig, &input), &r.output, 0.0)
                .unwrap_or_else(|e| panic!("{text}: {e}"));
        }
    }

    #[test]
    fn matrix_scan_handles_fir_signatures_and_floats() {
        let sig: Signature<f64> = "0.81,-1.62,0.81:1.6,-0.64".parse().unwrap();
        let input: Vec<f64> = (0..300).map(|i| ((i % 7) as f64) - 3.0).collect();
        let r = Scan.run(&sig, &input, &device()).unwrap();
        validate(&serial::run(&sig, &input), &r.output, 1e-3).unwrap();
    }

    #[test]
    fn combine_is_associative() {
        let fb = [2i64, -1];
        let a = MatState::from_input(3, &fb);
        let b = MatState::from_input(-4, &fb);
        let c = MatState::from_input(5, &fb);
        assert_eq!(a.combine(&b).combine(&c), a.combine(&b.combine(&c)));
    }

    #[test]
    fn wrapping_arithmetic_stays_exact() {
        // Two's-complement wrapping is a ring, so the matrix formulation
        // agrees with serial even under overflow.
        let sig: Signature<i32> = "1:1".parse().unwrap();
        let input = vec![i32::MAX, 1, 2, 3];
        let r = Scan.run(&sig, &input, &device()).unwrap();
        assert_eq!(r.output, serial::run(&sig, &input));
    }

    #[test]
    fn memory_usage_matches_table_2() {
        // Table 2 at 2^26 words: 1135.5 / 3188.8 / 6278.9 MB for orders 1-3.
        let d = device();
        let n = 1 << 26;
        let expect = [1135.5, 3188.8, 6278.9];
        for (k, &want) in (1..=3).zip(&expect) {
            let sig = plr_core::prefix::higher_order_prefix_sum::<i32>(k);
            let r = Scan.estimate(&sig, n, &d).unwrap();
            let mb = r.peak_bytes as f64 / (1024.0 * 1024.0);
            assert!(
                (mb - want).abs() / want < 0.02,
                "order {k}: modelled {mb:.1} MB vs paper {want} MB"
            );
        }
    }

    #[test]
    fn l2_misses_match_table_3() {
        // Table 3 at 2^26 words: 512.3 / 1537.1 / 3074.1 MB for orders 1-3.
        let d = device();
        let n = 1usize << 26;
        let expect = [512.3, 1537.1, 3074.1];
        for (k, &want) in (1..=3).zip(&expect) {
            let sig = plr_core::prefix::higher_order_prefix_sum::<i32>(k);
            let r = Scan.estimate(&sig, n, &d).unwrap();
            let mb = r.counters.l2_read_miss_bytes as f64 / (1024.0 * 1024.0);
            assert!(
                (mb - want).abs() / want < 0.02,
                "order {k}: modelled {mb:.1} MB vs paper {want} MB"
            );
        }
    }

    #[test]
    fn input_size_cap_matches_paper() {
        // "it only supports problem sizes up to 2^29" (order 1, 12 GB).
        let sig: Signature<i32> = "1:1".parse().unwrap();
        assert!(Scan.supports(&sig, 1 << 29).is_ok());
        assert!(matches!(
            Scan.supports(&sig, 1 << 30),
            Err(EngineError::InputTooLarge { .. })
        ));
        // Higher orders cap out much sooner.
        let third = plr_core::prefix::higher_order_prefix_sum::<i32>(3);
        assert!(matches!(
            Scan.supports(&third, 1 << 28),
            Err(EngineError::InputTooLarge { .. })
        ));
    }
}
