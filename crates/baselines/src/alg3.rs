//! An Alg3-like executor (Nehab, Maximo, Lima & Hoppe, SIGGRAPH Asia 2011:
//! GPU-efficient recursive filtering, their "Algorithm 3").
//!
//! Alg3 targets 2D image filtering: the paper runs it on square inputs
//! whose sides are multiples of 32, with vertical filtering disabled — but
//! the code *always* filters both horizontal directions (causal +
//! anticausal), which could not be turned off (Section 5). It is also not
//! communication efficient: it reads the input twice (block-local pass,
//! then a fix-up pass), which Table 3 shows as ~2× cold misses and which
//! is why PLR overtakes it (Section 6.5).
//!
//! Restrictions mirrored from the paper: floating point only, at most one
//! non-recursive coefficient, inputs up to 2 GB.

use crate::executor::RecurrenceExecutor;
use plr_core::element::Element;
use plr_core::error::EngineError;
use plr_core::serial;
use plr_core::signature::Signature;
use plr_sim::timing::Workload;
use plr_sim::{DeviceConfig, GlobalMemory, RunReport};

/// Maximum input: 2 GB of words.
const MAX_BYTES: u64 = 2 << 30;

/// The Alg3-like executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Alg3;

/// Chooses the image width: the largest multiple of 32 whose square does
/// not exceed `n` (the paper uses square inputs of similar total size).
pub fn image_width(n: usize) -> usize {
    let side = (n as f64).sqrt() as usize;
    (side / 32 * 32).max(32)
}

impl Alg3 {
    const TILE: usize = 32 * 32;

    fn check<T: Element>(signature: &Signature<T>, n: usize) -> Result<(), EngineError> {
        if !T::IS_FLOAT {
            return Err(EngineError::UnsupportedSignature {
                reason: "Alg3 is a floating-point image-filtering code".to_owned(),
            });
        }
        if signature.fir_order() > 0 {
            return Err(EngineError::UnsupportedSignature {
                reason: "Alg3 supports at most one non-recursive coefficient".to_owned(),
            });
        }
        let max = (MAX_BYTES / T::BYTES as u64) as usize;
        if n > max {
            return Err(EngineError::InputTooLarge { len: n, max });
        }
        Ok(())
    }

    /// The 2D row-filter semantics Alg3 computes on our 1D input: rows of
    /// `image_width(n)` values, each filtered causally then anticausally
    /// (the direction that could not be disabled).
    pub fn reference<T: Element>(signature: &Signature<T>, input: &[T]) -> Vec<T> {
        let w = image_width(input.len());
        let mut out = input.to_vec();
        for row in out.chunks_mut(w) {
            // Causal pass.
            let causal = serial::run(signature, row);
            row.copy_from_slice(&causal);
            // Anticausal pass: same filter, reversed direction.
            row.reverse();
            let anti = serial::run(signature, row);
            row.copy_from_slice(&anti);
            row.reverse();
        }
        out
    }

    fn account<T: Element>(k: usize, n: usize, device: &DeviceConfig) -> (GlobalMemory, Workload) {
        let elem = T::BYTES as u64;
        let nb = n as u64 * elem;
        let mb = 1024 * 1024;
        let mut mem = GlobalMemory::new(device.clone());
        let input = mem.alloc(nb, "input image");
        let output = mem.alloc(nb, "output image");
        // Alg3 allocates substantial intermediates: a full-image transpose
        // buffer plus per-block carry matrices that grow with the order;
        // both scale with the image (Table 2 shows 274-306 MB extra at
        // 2^26 words, +16 MB per order).
        let reference_nb = (1u64 << 26) * 4;
        let scale = |mbs: u64| (mbs * mb * nb / reference_nb).max(64 * 1024);
        let inter = mem.alloc(nb, "intermediate image");
        let carries = mem.alloc(scale(18 + 16 * (k as u64 - 1)), "block carries");

        // The carry matrices are streamed in both passes; their traffic
        // grows with the order (Table 3: +40 MB of misses per order).
        let carry_traffic = scale(36 + 41 * (k as u64 - 1));
        if nb <= (1 << 25) {
            // Small enough to replay through the line-accurate cache model.
            let carry_io = (carry_traffic / 2).min(scale(18 + 16 * (k as u64 - 1)));
            // Pass 1: block-local causal+anticausal filters; writes the
            // intermediate and the block carries.
            let mut off = 0u64;
            while off < nb {
                let len = (Self::TILE as u64 * elem).min(nb - off);
                mem.read(input, off, len);
                mem.write(inter, off, len);
                off += len;
            }
            mem.write(carries, 0, carry_io);
            // Pass 2: re-reads the input and the carries, fixes up, writes
            // out.
            let mut off = 0u64;
            while off < nb {
                let len = (Self::TILE as u64 * elem).min(nb - off);
                mem.read(input, off, len);
                mem.write(output, off, len);
                off += len;
            }
            mem.read(carries, 0, carry_io);
        } else {
            // Analytic streaming totals: far beyond the L2, both input
            // passes and the carry read are cold.
            let c = mem.counters_mut();
            c.global_read_bytes += 2 * nb + carry_traffic;
            c.global_write_bytes += 2 * nb + carry_traffic;
            c.l2_read_miss_bytes += 2 * nb + carry_traffic;
        }
        let workload = Workload {
            threads_per_block: 256,
            exposed_hops: 8,
            launches: 2,
            bandwidth_efficiency: 0.92,
            ..Workload::new(n as u64, 2 * (n.div_ceil(Self::TILE)) as u64)
        };
        (mem, workload)
    }

    fn flops<T: Element>(signature: &Signature<T>, n: usize) -> u64 {
        // Two directions × two passes × k multiply-adds per element.
        (4 * signature.order() * n) as u64
    }
}

impl<T: Element> RecurrenceExecutor<T> for Alg3 {
    fn name(&self) -> &'static str {
        "Alg3"
    }

    fn supports(&self, signature: &Signature<T>, n: usize) -> Result<(), EngineError> {
        Self::check(signature, n)
    }

    fn run(
        &self,
        signature: &Signature<T>,
        input: &[T],
        device: &DeviceConfig,
    ) -> Result<RunReport<T>, EngineError> {
        self.supports(signature, input.len())?;
        let (mut mem, workload) = Self::account::<T>(signature.order(), input.len(), device);
        mem.counters_mut().flops += Self::flops(signature, input.len());
        Ok(RunReport {
            output: Self::reference(signature, input),
            counters: *mem.counters(),
            workload,
            peak_bytes: mem.peak_bytes(),
        })
    }

    fn estimate(
        &self,
        signature: &Signature<T>,
        n: usize,
        device: &DeviceConfig,
    ) -> Result<RunReport<T>, EngineError> {
        self.supports(signature, n)?;
        let (mut mem, workload) = Self::account::<T>(signature.order(), n, device);
        mem.counters_mut().flops += Self::flops(signature, n);
        Ok(RunReport {
            output: Vec::new(),
            counters: *mem.counters(),
            workload,
            peak_bytes: mem.peak_bytes(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::validate::validate;

    fn device() -> DeviceConfig {
        DeviceConfig::titan_x()
    }

    #[test]
    fn image_width_is_a_multiple_of_32() {
        assert_eq!(image_width(1024), 32);
        assert_eq!(image_width(1 << 20), 1024);
        assert_eq!(image_width(5000), 64);
        assert_eq!(image_width(10), 32); // floor for tiny inputs
    }

    #[test]
    fn output_is_row_wise_bidirectional_filter() {
        let sig: Signature<f32> = "0.2:0.8".parse().unwrap();
        let n = 64 * 64;
        let input: Vec<f32> = (0..n).map(|i| ((i % 13) as f32) - 6.0).collect();
        let r = Alg3.run(&sig, &input, &device()).unwrap();
        validate(&Alg3::reference(&sig, &input), &r.output, 1e-3).unwrap();
        // The bidirectional row filter is NOT the plain 1D recurrence.
        assert!(validate(&serial::run(&sig, &input), &r.output, 1e-3).is_err());
    }

    #[test]
    fn reads_input_twice() {
        let sig: Signature<f32> = "0.2:0.8".parse().unwrap();
        let n = 1 << 22;
        let r = Alg3.estimate(&sig, n, &device()).unwrap();
        let nb = n as u64 * 4;
        assert!(r.counters.global_read_bytes >= 2 * nb);
        assert!(r.counters.global_read_bytes < 2 * nb + 16 * 1024 * 1024);
    }

    #[test]
    fn l2_misses_match_table_3_scale() {
        // Table 3 order 1: 550.6 MB at 2^26 words (2×256 cold + extra).
        let sig: Signature<f32> = "0.2:0.8".parse().unwrap();
        let r = Alg3.estimate(&sig, 1 << 26, &device()).unwrap();
        let mb = r.counters.l2_read_miss_bytes as f64 / (1024.0 * 1024.0);
        assert!(mb > 510.0 && mb < 560.0, "Alg3 misses {mb:.1} MB");
    }

    #[test]
    fn memory_usage_matches_table_2_scale() {
        // Table 2 order 1: 895.8 MB at 2^26 words.
        let sig: Signature<f32> = "0.2:0.8".parse().unwrap();
        let r = Alg3.estimate(&sig, 1 << 26, &device()).unwrap();
        let mb = r.peak_bytes as f64 / (1024.0 * 1024.0);
        assert!(mb > 870.0 && mb < 920.0, "Alg3 peak {mb:.1} MB");
    }

    #[test]
    fn rejects_high_pass_and_ints_and_huge_inputs() {
        let hp: Signature<f32> = "0.9,-0.9:0.8".parse().unwrap();
        assert!(matches!(
            Alg3.supports(&hp, 100),
            Err(EngineError::UnsupportedSignature { .. })
        ));
        let int_sig: Signature<i32> = "1:1".parse().unwrap();
        assert!(Alg3.supports(&int_sig, 100).is_err());
        let lp: Signature<f32> = "0.2:0.8".parse().unwrap();
        assert!(matches!(
            Alg3.supports(&lp, 1 << 30),
            Err(EngineError::InputTooLarge { .. })
        ));
        assert!(Alg3.supports(&lp, 1 << 29).is_ok());
    }
}
