//! Shared accounting for single-pass chunked streaming kernels.
//!
//! CUB- and SAM-style scans all share the same skeleton: tiles are claimed
//! through an atomic counter, read once, scanned locally, stitched together
//! with decoupled look-back carries, and written once. The codes differ in
//! tile geometry and in how much local arithmetic / shared-memory traffic
//! each element costs — which is exactly what [`PassProfile`] captures.

use plr_sim::memory::{BufferId, GlobalMemory};
use plr_sim::Counters;

/// Per-element and per-tile cost profile of one streaming pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassProfile {
    /// Elements per tile (thread block).
    pub tile: usize,
    /// Arithmetic operations per element.
    pub flops_per_element: f64,
    /// Shared-memory accesses per element.
    pub shared_per_element: f64,
    /// Warp shuffles per element.
    pub shuffles_per_element: f64,
    /// Carry words exchanged per tile (written once, read once by the
    /// successor's look-back).
    pub carry_words: usize,
}

/// Accounts one streaming pass of `n` elements of `elem_bytes` from
/// `src` to `dst`, tile by tile, through the memory model.
pub fn account_pass(
    mem: &mut GlobalMemory,
    src: BufferId,
    dst: BufferId,
    n: usize,
    elem_bytes: u64,
    carry_buf: BufferId,
    profile: &PassProfile,
) {
    let tiles = n.div_ceil(profile.tile);
    let mut fractional = FractionalCounters::default();
    for t in 0..tiles {
        let start = t * profile.tile;
        let len = profile.tile.min(n - start);
        // Claim + read.
        mem.atomic(carry_buf, 0, 4);
        mem.read(src, start as u64 * elem_bytes, len as u64 * elem_bytes);
        fractional.add(len, profile);
        // Publish the tile aggregate/carry; successor reads it.
        let cw = profile.carry_words as u64 * elem_bytes;
        if cw > 0 {
            let slot = 4 + (t as u64 % 64) * cw; // ring of 64 like CUB's
            mem.write(carry_buf, slot, cw);
            mem.fence();
            mem.atomic(carry_buf, 4 + 64 * cw + (t as u64 % 64) * 4, 4);
            if t > 0 {
                mem.read(carry_buf, 4 + ((t - 1) as u64 % 64) * cw, cw);
                mem.counters_mut().lookback_hops += 1;
            }
        }
        mem.write(dst, start as u64 * elem_bytes, len as u64 * elem_bytes);
    }
    fractional.commit(mem.counters_mut());
}

/// Closed-form counters for the same pass (for large-`n` estimates):
/// identical totals to [`account_pass`] except the L2 model, which the
/// caller sets analytically.
pub fn estimate_pass(n: usize, elem_bytes: u64, profile: &PassProfile) -> Counters {
    let tiles = n.div_ceil(profile.tile) as u64;
    let mut fractional = FractionalCounters::default();
    fractional.add_n(n, profile);
    let mut c = Counters::new();
    fractional.commit(&mut c);
    let cw = profile.carry_words as u64 * elem_bytes;
    c.global_read_bytes = n as u64 * elem_bytes + cw * tiles.saturating_sub(1);
    c.global_write_bytes = n as u64 * elem_bytes + cw * tiles;
    c.atomics = tiles + if cw > 0 { tiles } else { 0 };
    c.fences = if cw > 0 { tiles } else { 0 };
    c.lookback_hops = if cw > 0 { tiles.saturating_sub(1) } else { 0 };
    c
}

/// Accumulates fractional per-element costs exactly, committing integer
/// totals (so `account_pass` and `estimate_pass` agree bit-for-bit).
#[derive(Debug, Default)]
struct FractionalCounters {
    flops: f64,
    shared: f64,
    shuffles: f64,
}

impl FractionalCounters {
    fn add(&mut self, len: usize, p: &PassProfile) {
        self.add_n(len, p);
    }

    fn add_n(&mut self, n: usize, p: &PassProfile) {
        self.flops += p.flops_per_element * n as f64;
        self.shared += p.shared_per_element * n as f64;
        self.shuffles += p.shuffles_per_element * n as f64;
    }

    fn commit(self, c: &mut Counters) {
        c.flops += self.flops.round() as u64;
        c.shared_accesses += self.shared.round() as u64;
        c.shuffles += self.shuffles.round() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_sim::DeviceConfig;

    fn profile() -> PassProfile {
        PassProfile {
            tile: 2048,
            flops_per_element: 3.0,
            shared_per_element: 2.0,
            shuffles_per_element: 1.0,
            carry_words: 1,
        }
    }

    #[test]
    fn account_and_estimate_agree_on_traffic() {
        for n in [2048usize, 5000, 100_000] {
            let mut mem = GlobalMemory::new(DeviceConfig::titan_x());
            let src = mem.alloc(n as u64 * 4, "in");
            let dst = mem.alloc(n as u64 * 4, "out");
            let cb = mem.alloc(4 + 64 * 4 + 64 * 4, "carries");
            let p = profile();
            account_pass(&mut mem, src, dst, n, 4, cb, &p);
            let est = estimate_pass(n, 4, &p);
            let real = mem.counters();
            assert_eq!(real.global_read_bytes, est.global_read_bytes, "n={n}");
            assert_eq!(real.global_write_bytes, est.global_write_bytes, "n={n}");
            assert_eq!(real.flops, est.flops, "n={n}");
            assert_eq!(real.shared_accesses, est.shared_accesses, "n={n}");
            assert_eq!(real.atomics, est.atomics, "n={n}");
            assert_eq!(real.lookback_hops, est.lookback_hops, "n={n}");
        }
    }

    #[test]
    fn single_tile_has_no_lookback() {
        let est = estimate_pass(1000, 4, &profile());
        assert_eq!(est.lookback_hops, 0);
        assert_eq!(est.global_read_bytes, 4000);
    }

    #[test]
    fn traffic_is_2n_plus_carries() {
        let n = 100_000;
        let est = estimate_pass(n, 4, &profile());
        let tiles = n.div_ceil(2048) as u64;
        assert_eq!(est.global_read_bytes, n as u64 * 4 + (tiles - 1) * 4);
        assert_eq!(est.global_write_bytes, n as u64 * 4 + tiles * 4);
    }
}
