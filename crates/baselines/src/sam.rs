//! A SAM-like executor (Maleki, Yang & Burtscher, PLDI'16: higher-order and
//! tuple-based massively-parallel prefix sums).
//!
//! Structure, per the paper's characterization:
//!
//! * single-pass with 2n data movement for *every* supported recurrence:
//!   for higher-order prefix sums "SAM only repeats the computation but not
//!   the reading in and writing out of the values, which is why it
//!   outperforms CUB" (Section 6.1.3);
//! * tuple prefix sums run as `s` independent *interleaved* scalar scans
//!   in one pass;
//! * an **auto-tuner** picks the number of values per thread for each
//!   input size, which is why SAM is the fastest code on small inputs
//!   (Sections 6.1.1–6.1.3). The reproduction tunes the tile size over the
//!   same candidate set using the cost model, mirroring the install-time
//!   tuning run.

use crate::executor::{classify_prefix_family, PrefixFamily, RecurrenceExecutor};
use crate::stream::{account_pass, estimate_pass, PassProfile};
use plr_core::element::Element;
use plr_core::error::EngineError;
use plr_core::serial;
use plr_core::signature::Signature;
use plr_sim::timing::Workload;
use plr_sim::{CostModel, DeviceConfig, GlobalMemory, RunReport};

/// Maximum supported input: 4 GB of words.
const MAX_LEN: usize = 1 << 30;

/// The SAM-like executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sam;

impl Sam {
    /// Values-per-thread candidates the auto-tuner searches (SAM tunes x
    /// per problem size at install time).
    const TILE_CANDIDATES: [usize; 6] = [512, 1024, 2048, 4096, 8192, 12288];
    const THREADS: usize = 1024;

    fn profile(family: PrefixFamily, tile: usize) -> PassProfile {
        let (s, r) = match family {
            PrefixFamily::Tuple(s) => (s, 1),
            PrefixFamily::HigherOrder(r) => (1, r),
            PrefixFamily::Standard => (1, 1),
        };
        PassProfile {
            tile,
            // The computation repeats r times inside the pass; interleaved
            // tuple lanes keep the scalar cost.
            flops_per_element: 3.0 * r as f64,
            // Multi-level scans keep intermediate levels in shared memory;
            // each extra level adds round trips (this is SAM's overhead
            // relative to a plain scan, calibrated to Figures 4/5).
            shared_per_element: 2.0 + 9.0 * (r as f64 - 1.0) + 2.5 * (s as f64 - 1.0),
            shuffles_per_element: 1.0 * r as f64,
            carry_words: s * r,
        }
    }

    /// Interleaved lanes stride the accesses; the multi-level in-register
    /// scans of higher orders cost substantially more (calibrated to the
    /// paper's ~21 billion ints/s at order 2).
    fn bandwidth_efficiency(family: PrefixFamily) -> f64 {
        match family {
            PrefixFamily::Tuple(s) => 1.0 / (1.0 + 0.26 * (s as f64 - 1.0)),
            // The in-register multi-scan costs grow with the order: the
            // paper reports SAM 50% / 38% / 33% ahead of PLR at orders
            // 2 / 3 / 4, i.e. its own throughput decays slowly.
            PrefixFamily::HigherOrder(r) => (0.65 - 0.075 * (r as f64 - 2.0)).max(0.4),
            PrefixFamily::Standard => 1.0,
        }
    }

    /// The auto-tuner: pick the tile minimizing modelled time for `n`.
    fn tuned_tile<T: Element>(family: PrefixFamily, n: usize, device: &DeviceConfig) -> usize {
        let model = CostModel::new(device.clone());
        let mut best = (f64::INFINITY, Self::TILE_CANDIDATES[0]);
        for &tile in &Self::TILE_CANDIDATES {
            let profile = Self::profile(family, tile);
            let mut counters = estimate_pass(n, T::BYTES as u64, &profile);
            counters.l2_read_miss_bytes = n as u64 * T::BYTES as u64;
            let workload = Self::workload_for(family, n, tile);
            let t = model.time(&counters, &workload).total;
            if t < best.0 {
                best = (t, tile);
            }
        }
        best.1
    }

    fn workload_for(family: PrefixFamily, n: usize, tile: usize) -> Workload {
        Workload {
            threads_per_block: Self::THREADS,
            registers_per_thread: 32,
            exposed_hops: 16,
            launches: 1,
            bandwidth_efficiency: Self::bandwidth_efficiency(family),
            ..Workload::new(n as u64, n.div_ceil(tile) as u64)
        }
    }
}

impl<T: Element> RecurrenceExecutor<T> for Sam {
    fn name(&self) -> &'static str {
        "SAM"
    }

    fn supports(&self, signature: &Signature<T>, n: usize) -> Result<(), EngineError> {
        if classify_prefix_family(signature).is_none() {
            return Err(EngineError::UnsupportedSignature {
                reason: format!(
                    "SAM computes tuple-based and higher-order prefix sums only, not {signature}"
                ),
            });
        }
        if n > MAX_LEN {
            return Err(EngineError::InputTooLarge {
                len: n,
                max: MAX_LEN,
            });
        }
        Ok(())
    }

    fn run(
        &self,
        signature: &Signature<T>,
        input: &[T],
        device: &DeviceConfig,
    ) -> Result<RunReport<T>, EngineError> {
        self.supports(signature, input.len())?;
        let n = input.len();
        check_budget::<T>(n, device)?;
        let family = classify_prefix_family(signature).expect("checked by supports");
        let elem = T::BYTES as u64;
        let tile = Self::tuned_tile::<T>(family, n, device);
        let profile = Self::profile(family, tile);

        let mut mem = GlobalMemory::new(device.clone());
        let src = mem.alloc(n as u64 * elem, "input");
        let dst = mem.alloc(n as u64 * elem, "output");
        let carry = mem.alloc(
            4 + 64 * (profile.carry_words as u64 + 1) * elem + 64 * 4,
            "tile state",
        );
        account_pass(&mut mem, src, dst, n, elem, carry, &profile);

        // Functional result: one pass computing the full recurrence.
        let output = serial::run(signature, input);

        Ok(RunReport {
            output,
            counters: *mem.counters(),
            workload: Self::workload_for(family, n, tile),
            peak_bytes: mem.peak_bytes(),
        })
    }

    fn estimate(
        &self,
        signature: &Signature<T>,
        n: usize,
        device: &DeviceConfig,
    ) -> Result<RunReport<T>, EngineError> {
        self.supports(signature, n)?;
        check_budget::<T>(n, device)?;
        let family = classify_prefix_family(signature).expect("checked by supports");
        let elem = T::BYTES as u64;
        let tile = Self::tuned_tile::<T>(family, n, device);
        let profile = Self::profile(family, tile);
        let mut counters = estimate_pass(n, elem, &profile);
        counters.l2_read_miss_bytes = n as u64 * elem;
        let peak = {
            let mut mem = GlobalMemory::new(device.clone());
            mem.alloc(n as u64 * elem, "input");
            mem.alloc(n as u64 * elem, "output");
            mem.alloc(
                4 + 64 * (profile.carry_words as u64 + 1) * elem + 64 * 4,
                "tile state",
            );
            mem.peak_bytes()
        };
        Ok(RunReport {
            output: Vec::new(),
            counters,
            workload: Self::workload_for(family, n, tile),
            peak_bytes: peak,
        })
    }
}

/// In/out arrays plus tile state must fit on the device.
fn check_budget<T: Element>(n: usize, device: &DeviceConfig) -> Result<(), EngineError> {
    let buffers = 2 * n as u64 * T::BYTES as u64 + (1 << 20);
    if !device.fits(buffers) {
        return Err(EngineError::InputTooLarge {
            len: n,
            max: device.max_elements(2 * T::BYTES as u64),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::prefix;
    use plr_core::validate::validate;

    fn device() -> DeviceConfig {
        DeviceConfig::titan_x()
    }

    #[test]
    fn computes_prefix_family_correctly() {
        let input: Vec<i64> = (0..7777).map(|i| (i % 11) as i64 - 5).collect();
        for sig in [
            prefix::prefix_sum::<i64>(),
            prefix::tuple_prefix_sum::<i64>(3),
            prefix::higher_order_prefix_sum::<i64>(4),
        ] {
            let r = Sam.run(&sig, &input, &device()).unwrap();
            validate(&serial::run(&sig, &input), &r.output, 0.0).unwrap();
        }
    }

    #[test]
    fn single_pass_traffic_regardless_of_order() {
        let n = 1 << 20;
        let d = device();
        let one = Sam.estimate(&prefix::prefix_sum::<i32>(), n, &d).unwrap();
        let three = Sam
            .estimate(&prefix::higher_order_prefix_sum::<i32>(3), n, &d)
            .unwrap();
        // Payload traffic identical; only carries differ slightly.
        let diff = three.counters.global_read_bytes as i64 - one.counters.global_read_bytes as i64;
        assert!(diff.unsigned_abs() < (n as u64) / 16, "diff {diff}");
        // But compute scales with the order.
        assert!(three.counters.flops > 2 * one.counters.flops);
    }

    #[test]
    fn auto_tuner_prefers_smaller_tiles_for_smaller_inputs() {
        let d = device();
        let small = Sam::tuned_tile::<i32>(PrefixFamily::Standard, 1 << 14, &d);
        let large = Sam::tuned_tile::<i32>(PrefixFamily::Standard, 1 << 28, &d);
        assert!(small <= large, "small {small} vs large {large}");
        // At 2^14 elements, tiles above 2048 leave too few blocks in
        // flight to reach the bandwidth-saturation point.
        assert!(small <= 2048, "small-input tile {small}");
    }

    #[test]
    fn auto_tuning_beats_a_fixed_bad_tile_on_small_inputs() {
        // The tuned estimate must be at least as fast as every candidate.
        let d = device();
        let model = CostModel::new(d.clone());
        let n = 1 << 14;
        let sig = prefix::prefix_sum::<i32>();
        let tuned = Sam.estimate(&sig, n, &d).unwrap();
        let tuned_time = tuned.time(&model).total;
        for &tile in &Sam::TILE_CANDIDATES {
            let profile = Sam::profile(PrefixFamily::Standard, tile);
            let mut c = estimate_pass(n, 4, &profile);
            c.l2_read_miss_bytes = n as u64 * 4;
            let w = Sam::workload_for(PrefixFamily::Standard, n, tile);
            assert!(tuned_time <= model.time(&c, &w).total + 1e-12);
        }
    }

    #[test]
    fn rejects_general_recurrences() {
        let sig: Signature<i32> = "1: 1, 1".parse().unwrap(); // Fibonacci, not a prefix sum
        assert!(Sam.supports(&sig, 100).is_err());
    }

    #[test]
    fn memory_usage_close_to_memcpy() {
        // Table 2: SAM 622.5 MB at 2^26 words (memcpy + 1 MB).
        let r = Sam
            .estimate(&prefix::prefix_sum::<i32>(), 1 << 26, &device())
            .unwrap();
        let mb = r.peak_bytes as f64 / (1024.0 * 1024.0);
        assert!(mb > 621.0 && mb < 623.5, "SAM peak {mb:.1} MB");
    }
}
