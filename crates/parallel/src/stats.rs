//! Runtime statistics reported by the parallel runner.

/// Counters describing one parallel run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of chunks processed.
    pub chunks: u64,
    /// Look-back hops performed (carry sets read while resolving
    /// predecessors' global carries; at minimum one per non-first chunk,
    /// more when workers ran ahead of the carry chain).
    pub lookback_hops: u64,
    /// Spin iterations spent waiting on unpublished carries.
    pub spin_waits: u64,
    /// Deepest single look-back performed (the paper's dynamic `c`; it
    /// reports "c is typically much smaller than 32" because each chunk
    /// uses the most recent available global carries).
    pub max_lookback_depth: u64,
    /// Worker threads used.
    pub threads: u64,
}

impl RunStats {
    /// Mean look-back depth per corrected chunk (the paper's `c`, which it
    /// bounds by 32 and reports as "typically much smaller").
    pub fn mean_lookback_depth(&self) -> f64 {
        if self.chunks <= 1 {
            0.0
        } else {
            self.lookback_hops as f64 / (self.chunks - 1) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_depth_handles_degenerate_cases() {
        assert_eq!(RunStats::default().mean_lookback_depth(), 0.0);
        let s = RunStats {
            chunks: 11,
            lookback_hops: 20,
            spin_waits: 0,
            max_lookback_depth: 3,
            threads: 4,
        };
        assert!((s.mean_lookback_depth() - 2.0).abs() < 1e-12);
    }
}
