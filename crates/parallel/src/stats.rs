//! Runtime statistics reported by the parallel runner and worker pool.

use plr_core::kernel::KernelKind;
use plr_core::plan::PlanKind;

/// Cumulative run-outcome counters for one [`WorkerPool`], reported by
/// [`WorkerPool::counters`]: how many runs it executed and how many of
/// them ended in each failure class. Monotonic over the pool's lifetime
/// (unlike [`RunStats`], which describes a single run).
///
/// [`WorkerPool`]: crate::WorkerPool
/// [`WorkerPool::counters`]: crate::WorkerPool::counters
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Total runs submitted to the pool (blocking and non-blocking),
    /// including runs that failed fast before starting any work.
    pub runs: u64,
    /// Runs that ended with a worker (or caller-as-worker-0) panic.
    pub panicked: u64,
    /// Runs aborted through a caller-held [`CancelToken`], including
    /// runs rejected because their token was already cancelled.
    ///
    /// [`CancelToken`]: crate::CancelToken
    pub cancelled: u64,
    /// Runs that outlived their deadline and were aborted by the pool's
    /// watchdog (or rejected because the deadline had already passed).
    pub deadline_exceeded: u64,
    /// Workers revived by lazy respawning over the pool's lifetime (same
    /// number as [`WorkerPool::recovered_workers`]).
    ///
    /// [`WorkerPool::recovered_workers`]: crate::WorkerPool::recovered_workers
    pub workers_recovered: u64,
}

/// Counters describing one parallel run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Rows solved. One for a single-sequence run, the row count for a
    /// batched [`BatchRunner::run_rows`] call, and `1` in the per-row
    /// stats a streamed [`RowHandle`] reports (so aggregates produced by
    /// [`RunStats::absorb`] count rows correctly).
    ///
    /// [`BatchRunner::run_rows`]: crate::BatchRunner::run_rows
    /// [`RowHandle`]: crate::RowHandle
    pub rows: u64,
    /// Number of chunks processed.
    pub chunks: u64,
    /// Look-back hops performed (carry sets read while resolving
    /// predecessors' global carries; at minimum one per non-first chunk,
    /// more when workers ran ahead of the carry chain).
    pub lookback_hops: u64,
    /// Spin iterations spent waiting on unpublished carries.
    pub spin_waits: u64,
    /// Deepest single look-back performed (the paper's dynamic `c`; it
    /// reports "c is typically much smaller than 32" because each chunk
    /// uses the most recent available global carries).
    pub max_lookback_depth: u64,
    /// Worker threads used (the pool's effective width for this run,
    /// which shrinks when worker threads could not be spawned).
    pub threads: u64,
    /// Worker loops that bailed out early because the run was aborted —
    /// for *any* reason: a worker panicked or died, a finiteness check
    /// failed, a [`CancelToken`] was cancelled, or the deadline watchdog
    /// fired. Always zero for a successful run; nonzero only in
    /// aggregated stats that absorbed an aborted sub-run. To distinguish
    /// the causes, look at the returned error (or, cumulatively, at
    /// [`PoolCounters`]).
    ///
    /// [`CancelToken`]: crate::CancelToken
    pub aborts: u64,
    /// Workers revived by the pool at this run's submission — dead
    /// workers respawned after an injected thread death, or previously
    /// failed spawns that succeeded this time. (Approximate when several
    /// runners share one pool concurrently.)
    pub workers_recovered: u64,
    /// Wall time spent in the FIR map stage, summed across workers
    /// (nanoseconds; zero for pure-feedback signatures).
    pub fir_nanos: u64,
    /// Wall time spent in per-chunk local solves, summed across workers
    /// (nanoseconds).
    pub solve_nanos: u64,
    /// Wall time spent resolving global carries — the look-back walk in
    /// the pipeline strategy, the sequential chain in two-pass — summed
    /// across workers (nanoseconds).
    pub lookback_nanos: u64,
    /// Wall time spent applying n-nacci corrections, summed across
    /// workers (nanoseconds).
    pub correct_nanos: u64,
    /// `1` when the runner's correction plan was served from the shared
    /// plan cache, `0` when it was built fresh. Aggregates sum over rows.
    pub plan_cache_hits: u64,
    /// Complement of [`plan_cache_hits`](RunStats::plan_cache_hits).
    pub plan_cache_misses: u64,
    /// Dominant correction strategy the plan selected (`Unplanned` when no
    /// plan was consulted, e.g. a default-constructed stats value).
    pub plan_kind: PlanKind,
    /// Elements the plan touches when correcting one full-size chunk — the
    /// chunk size for dense plans, the decayed prefix length for truncated
    /// ones. Aggregates keep the maximum.
    pub correction_taps: u64,
    /// Look-back hops short-circuited because the predecessor chunk's tail
    /// factors are exactly zero (its global carries equal its locals), so
    /// the carry chain reset instead of walking back.
    pub carry_resets: u64,
    /// The serial solve kernel the run dispatched to (`Unknown` when no
    /// solve ran, e.g. a default-constructed stats value; `Mixed` in
    /// aggregates whose sub-runs disagreed — possible when the kernel
    /// override changed between rows).
    pub kernel: KernelKind,
    /// Local-solve time slices executed: chunks short enough to solve in
    /// one go count one slice; longer chunks split into abort-polled
    /// slices of [`plr_core::blocked::SOLVE_SLICE`] elements and count one
    /// per slice. Aggregates sum over rows.
    pub solve_slices: u64,
    /// Chunks the time-varying look-back pipeline solved *fused*: the
    /// predecessor's global state was already published at claim time, so
    /// the chunk continued from real history — serial-equal work, no
    /// local solve, no matrix carry, no correction pass. Chunk 0 always
    /// counts (its history is the zero state). Zero for constant-path
    /// runs and for the two-pass strategy, which never fuses.
    pub fused_chunks: u64,
    /// Chunks of a segmented run that contained at least one segment
    /// boundary (their tail past the last in-chunk reset was globally
    /// final straight off the local solve, and look-back from later
    /// chunks terminated at them). Zero for unsegmented runs.
    pub reset_chunks: u64,
    /// Chunks whose post-FIR input was entirely zero and whose local
    /// solve was therefore skipped on the sparse fast path — their output
    /// is the correction pass alone, and their carries reduce to the
    /// factor-power fix-up of zero locals. Zero when the sparse path is
    /// disabled or never matched.
    pub skipped_chunks: u64,
}

impl RunStats {
    /// Mean look-back depth per corrected chunk (the paper's `c`, which it
    /// bounds by 32 and reports as "typically much smaller").
    pub fn mean_lookback_depth(&self) -> f64 {
        if self.chunks <= 1 {
            0.0
        } else {
            self.lookback_hops as f64 / (self.chunks - 1) as f64
        }
    }

    /// Total per-phase busy time across all workers, nanoseconds.
    ///
    /// This is CPU-side *work* time, not elapsed wall time: with `w`
    /// workers saturated it is up to `w×` the wall clock.
    pub fn busy_nanos(&self) -> u64 {
        self.fir_nanos + self.solve_nanos + self.lookback_nanos + self.correct_nanos
    }

    /// The share of busy time spent in a phase, in `[0, 1]` (zero when
    /// nothing was timed).
    pub fn phase_fraction(&self, phase_nanos: u64) -> f64 {
        let total = self.busy_nanos();
        if total == 0 {
            0.0
        } else {
            phase_nanos as f64 / total as f64
        }
    }

    /// Folds another run's counters into this one (used by batched
    /// execution to aggregate over rows).
    pub fn absorb(&mut self, other: &RunStats) {
        self.rows += other.rows;
        self.chunks += other.chunks;
        self.lookback_hops += other.lookback_hops;
        self.spin_waits += other.spin_waits;
        self.max_lookback_depth = self.max_lookback_depth.max(other.max_lookback_depth);
        self.aborts += other.aborts;
        self.workers_recovered += other.workers_recovered;
        self.fir_nanos += other.fir_nanos;
        self.solve_nanos += other.solve_nanos;
        self.lookback_nanos += other.lookback_nanos;
        self.correct_nanos += other.correct_nanos;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        if self.plan_kind == PlanKind::Unplanned {
            self.plan_kind = other.plan_kind;
        } else if other.plan_kind != PlanKind::Unplanned && other.plan_kind != self.plan_kind {
            self.plan_kind = PlanKind::Mixed;
        }
        self.correction_taps = self.correction_taps.max(other.correction_taps);
        self.carry_resets += other.carry_resets;
        if self.kernel == KernelKind::Unknown {
            self.kernel = other.kernel;
        } else if other.kernel != KernelKind::Unknown && other.kernel != self.kernel {
            self.kernel = KernelKind::Mixed;
        }
        self.solve_slices += other.solve_slices;
        self.fused_chunks += other.fused_chunks;
        self.reset_chunks += other.reset_chunks;
        self.skipped_chunks += other.skipped_chunks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_depth_handles_degenerate_cases() {
        assert_eq!(RunStats::default().mean_lookback_depth(), 0.0);
        let s = RunStats {
            chunks: 11,
            lookback_hops: 20,
            spin_waits: 0,
            max_lookback_depth: 3,
            threads: 4,
            ..RunStats::default()
        };
        assert!((s.mean_lookback_depth() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn busy_time_sums_the_phases() {
        let s = RunStats {
            fir_nanos: 10,
            solve_nanos: 20,
            lookback_nanos: 30,
            correct_nanos: 40,
            ..RunStats::default()
        };
        assert_eq!(s.busy_nanos(), 100);
        assert!((s.phase_fraction(s.solve_nanos) - 0.2).abs() < 1e-12);
        assert_eq!(RunStats::default().phase_fraction(0), 0.0);
    }

    #[test]
    fn absorb_accumulates_and_maxes() {
        let mut a = RunStats {
            chunks: 2,
            lookback_hops: 1,
            max_lookback_depth: 3,
            solve_nanos: 5,
            ..RunStats::default()
        };
        let b = RunStats {
            rows: 1,
            chunks: 3,
            lookback_hops: 2,
            spin_waits: 7,
            max_lookback_depth: 2,
            solve_nanos: 5,
            fir_nanos: 1,
            aborts: 2,
            workers_recovered: 1,
            ..RunStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.rows, 1);
        assert_eq!(a.chunks, 5);
        assert_eq!(a.lookback_hops, 3);
        assert_eq!(a.spin_waits, 7);
        assert_eq!(a.max_lookback_depth, 3);
        assert_eq!(a.solve_nanos, 10);
        assert_eq!(a.fir_nanos, 1);
        assert_eq!(a.aborts, 2);
        assert_eq!(a.workers_recovered, 1);
    }

    #[test]
    fn absorb_plan_fields() {
        let mut a = RunStats {
            plan_cache_hits: 1,
            correction_taps: 100,
            carry_resets: 2,
            ..RunStats::default()
        };
        let b = RunStats {
            plan_cache_misses: 1,
            plan_kind: PlanKind::Truncated,
            correction_taps: 400,
            carry_resets: 3,
            ..RunStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.plan_cache_hits, 1);
        assert_eq!(a.plan_cache_misses, 1);
        assert_eq!(a.plan_kind, PlanKind::Truncated);
        assert_eq!(a.correction_taps, 400);
        assert_eq!(a.carry_resets, 5);
        // Disagreeing kinds collapse to Mixed.
        let c = RunStats {
            plan_kind: PlanKind::Dense,
            ..RunStats::default()
        };
        a.absorb(&c);
        assert_eq!(a.plan_kind, PlanKind::Mixed);
    }

    #[test]
    fn absorb_kernel_fields() {
        let mut a = RunStats {
            solve_slices: 2,
            ..RunStats::default()
        };
        let b = RunStats {
            kernel: KernelKind::SimdAvx2,
            solve_slices: 3,
            ..RunStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.kernel, KernelKind::SimdAvx2);
        assert_eq!(a.solve_slices, 5);
        let d = RunStats {
            fused_chunks: 4,
            ..RunStats::default()
        };
        a.absorb(&d);
        a.absorb(&d);
        assert_eq!(a.fused_chunks, 8);
        // Agreement keeps the kind; disagreement collapses to Mixed.
        a.absorb(&b);
        assert_eq!(a.kernel, KernelKind::SimdAvx2);
        let c = RunStats {
            kernel: KernelKind::Scalar,
            ..RunStats::default()
        };
        a.absorb(&c);
        assert_eq!(a.kernel, KernelKind::Mixed);
    }
}
