//! Batched execution over many independent sequences.
//!
//! The paper's future work lists "multiple dimensions"; the 2D codes it
//! compares against (Alg3, Rec) filter image rows. This runner applies one
//! signature to a batch of independent sequences — image rows, audio
//! channels, per-key streams — distributing whole sequences across the
//! same persistent [`WorkerPool`] the intra-row runner uses. Within a
//! sequence the serial loop is optimal on a CPU thread; across sequences
//! the batch is embarrassingly parallel, and for batches with few long
//! rows the workers fall back to chunked decoupled look-back within a row
//! (via a cached [`ParallelRunner`] — its correction table and its pool
//! survive across `run_rows` calls and are only rebuilt when the row
//! geometry changes the chunk size).

use crate::pool::{
    lock_recover, resolve_threads, AbortSignal, CancelToken, RunControl, RunError, SendPtr,
    Tickets, WorkerPanic, WorkerPool,
};
use crate::runner::{fir_in_place, ParallelRunner, RunnerConfig};
use crate::stats::RunStats;
use crate::stream::RowStream;
use plr_core::element::Element;
use plr_core::error::EngineError;
use plr_core::kernel::KernelKind;
use plr_core::plan::{self, CorrectionPlan, PlanKind, PlanRequest};
use plr_core::segmented::SegmentedPlan;
use plr_core::signature::Signature;
use plr_core::varying::VaryingPlan;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The intra-row runner cached between `run_rows` calls, keyed by the
/// chunk size its correction table was generated for.
#[derive(Debug)]
struct CachedInner<T> {
    chunk_size: usize,
    runner: ParallelRunner<T>,
}

/// The per-row unit of work shared by the blocking whole-rows path and
/// the streaming layer: in-place FIR map (skipped for pure-feedback
/// signatures) followed by the in-place local solve, both timed.
///
/// Extracted from `run_whole_rows` so `BatchRunner::run_rows` and
/// [`RowStream`] dispatch rows through literally the same code — a
/// streamed row cannot drift from its blocking counterpart. The same
/// dispatch carries time-varying rows ([`RowTask::varying`]), so varying
/// workloads inherit the batch and stream layers' cancel / deadline /
/// fault semantics without a parallel code path.
#[derive(Debug, Clone)]
pub struct RowTask<T> {
    inner: TaskInner<T>,
}

#[derive(Debug, Clone)]
enum TaskInner<T> {
    /// Constant coefficients: a whole-row (chunk-size-0) correction plan
    /// served through the shared plan cache.
    Constant {
        plan: Arc<CorrectionPlan<T>>,
        /// Whether the plan came from the shared cache (reported in stats).
        cache_hit: bool,
        /// Pure-feedback signatures have no FIR map stage at all.
        pure: bool,
    },
    /// Per-element coefficients: the matrix-carry chunk plan, solved as a
    /// fused sequential sweep within the row (rows are independent, so
    /// each starts from real — zero — history and needs no correction).
    /// Never consults the constant path's correction-plan cache.
    Varying { plan: Arc<VaryingPlan<T>> },
    /// Segmented rows: one signature with history resets at segment
    /// starts. Each segment solves as its own sequence (rows are
    /// independent and each segment restarts from zero history, so no
    /// correction is ever needed). Like varying tasks, the boundary map
    /// is not part of the constant plan cache's key, so segmented tasks
    /// never consult (or populate) that cache.
    Segmented { plan: Arc<SegmentedPlan<T>> },
}

impl<T: Element> RowTask<T> {
    /// Builds the per-row work unit for `signature`: a whole-row
    /// (chunk-size-0) plan served through the shared plan cache. Public so
    /// external row executors — notably the service core's shard workers —
    /// run rows through literally the same code path as
    /// [`BatchRunner::run_rows`] and [`RowStream`](crate::stream::RowStream).
    ///
    /// [`BatchRunner::run_rows`]: crate::batch::BatchRunner::run_rows
    pub fn new(signature: &Signature<T>) -> Self {
        let (plan, cache_hit) = plan::plan_for(signature, PlanRequest::new::<T>(0));
        RowTask {
            inner: TaskInner::Constant {
                plan,
                cache_hit,
                pure: signature.is_pure_feedback(),
            },
        }
    }

    /// Builds the per-row work unit for a time-varying signature. Every
    /// row must have exactly the plan's bound length — the coefficients
    /// are positional — and a row of any other length panics (surfacing
    /// as [`EngineError::WorkerPanicked`] for that row through the usual
    /// unwind guards).
    pub fn varying(plan: Arc<VaryingPlan<T>>) -> Self {
        RowTask {
            inner: TaskInner::Varying { plan },
        }
    }

    /// Builds the per-row work unit for a segmented workload. Every row
    /// must have exactly the plan's bound length — the segment boundaries
    /// are positional — and a row of any other length panics (surfacing
    /// as [`EngineError::WorkerPanicked`] for that row through the usual
    /// unwind guards).
    pub fn segmented(plan: Arc<SegmentedPlan<T>>) -> Self {
        RowTask {
            inner: TaskInner::Segmented { plan },
        }
    }

    /// Solves one row in place, returning `(fir_nanos, solve_nanos,
    /// solve_slices)`. The local solve is time-sliced against `abort`, so
    /// a cancel or deadline lands mid-row instead of after it; on an
    /// abort the row is left partially solved and the caller's
    /// reason-derived resolution reports the outcome.
    ///
    /// The worker/row indices feed the fault harness's `Solve` site (the
    /// same site the blocking path consults); they are unused otherwise.
    pub fn apply(
        &self,
        row: &mut [T],
        _worker: usize,
        _index: usize,
        abort: Option<&AbortSignal>,
    ) -> (u64, u64, u64) {
        match &self.inner {
            TaskInner::Constant { plan, pure, .. } => {
                let mut fir_ns = 0u64;
                if !pure {
                    let start = Instant::now();
                    fir_in_place(plan.fir(), &[], 0, row);
                    fir_ns = start.elapsed().as_nanos() as u64;
                }
                #[cfg(feature = "fault-inject")]
                crate::fault::check(crate::fault::FaultSite::Solve, _worker, _index, abort);
                let start = Instant::now();
                let solved = plan
                    .solve()
                    .solve_in_place_sliced(row, &mut || abort.is_none_or(|a| !a.is_aborted()));
                (fir_ns, start.elapsed().as_nanos() as u64, solved.slices)
            }
            TaskInner::Varying { plan } => {
                assert_eq!(
                    row.len(),
                    plan.len(),
                    "varying row length must match the signature's bound length"
                );
                #[cfg(feature = "fault-inject")]
                crate::fault::check(crate::fault::FaultSite::Solve, _worker, _index, abort);
                let start = Instant::now();
                // Fused sequential sweep over the plan's chunks: each
                // continues from the previous chunk's real state, reusing
                // constant-row kernels where the plan selected them.
                let m = plan.chunk_size();
                let mut state = vec![T::zero(); plan.order()];
                let mut slices = 0u64;
                for c in 0..plan.num_chunks() {
                    let s = c * m;
                    let chunk = &mut row[s..(s + m).min(plan.len())];
                    let out = plan.solve_chunk(c, Some(&state), chunk, &mut || {
                        abort.is_none_or(|a| !a.is_aborted())
                    });
                    slices += out.slices;
                    if !out.completed {
                        break;
                    }
                    state = out.state;
                }
                (0, start.elapsed().as_nanos() as u64, slices)
            }
            TaskInner::Segmented { plan } => {
                assert_eq!(
                    row.len(),
                    plan.len(),
                    "segmented row length must match the plan's bound length"
                );
                let mut fir_ns = 0u64;
                if !plan.is_pure_feedback() {
                    let start = Instant::now();
                    plan.fir_row_in_place(row);
                    fir_ns = start.elapsed().as_nanos() as u64;
                }
                #[cfg(feature = "fault-inject")]
                crate::fault::check(crate::fault::FaultSite::Solve, _worker, _index, abort);
                let start = Instant::now();
                // Each segment solves from zero (real) history — whole-row
                // dispatch needs no correction, segmented or not.
                let solved =
                    plan.solve_row_in_place(row, &mut || abort.is_none_or(|a| !a.is_aborted()));
                (fir_ns, start.elapsed().as_nanos() as u64, solved.slices)
            }
        }
    }

    /// Strategy summary reported in per-row stats ([`PlanKind::Unplanned`]
    /// for whole-row constant plans, which never correct;
    /// [`PlanKind::MatrixCarry`] for varying rows).
    pub fn plan_kind(&self) -> PlanKind {
        match &self.inner {
            TaskInner::Constant { plan, .. } => plan.kind(),
            TaskInner::Varying { .. } => PlanKind::MatrixCarry,
            TaskInner::Segmented { plan } => plan.correction().kind(),
        }
    }

    /// The serial solve kernel the task's plan dispatches to (reported in
    /// per-row and aggregate stats). Varying tasks report the per-chunk
    /// summary: [`KernelKind::Mixed`] when constant-row kernel chunks and
    /// varying scalar chunks both occur in a row.
    pub fn kernel_kind(&self) -> KernelKind {
        match &self.inner {
            TaskInner::Constant { plan, .. } => plan.solve().kind(),
            TaskInner::Varying { plan } => plan.aggregate_kernel_kind(),
            TaskInner::Segmented { plan } => plan.correction().solve().kind(),
        }
    }

    /// Whether the task's plan was served from the shared cache (always
    /// `false` for varying tasks, which have no cache to hit).
    pub fn cache_hit(&self) -> bool {
        match &self.inner {
            TaskInner::Constant { cache_hit, .. } => *cache_hit,
            TaskInner::Varying { .. } | TaskInner::Segmented { .. } => false,
        }
    }

    /// Plan-cache hits to report for this task: `1`/`0` for constant
    /// tasks; `0` for varying tasks, which never consult the cache.
    pub fn plan_cache_hits(&self) -> u64 {
        match &self.inner {
            TaskInner::Constant { cache_hit, .. } => *cache_hit as u64,
            TaskInner::Varying { .. } | TaskInner::Segmented { .. } => 0,
        }
    }

    /// Plan-cache misses to report for this task: the complement of
    /// [`RowTask::plan_cache_hits`] for constant tasks; `0` for varying
    /// tasks, which never consult (or populate) the cache.
    pub fn plan_cache_misses(&self) -> u64 {
        match &self.inner {
            TaskInner::Constant { cache_hit, .. } => !*cache_hit as u64,
            TaskInner::Varying { .. } | TaskInner::Segmented { .. } => 0,
        }
    }
}

/// A batched executor for one signature.
#[derive(Debug)]
pub struct BatchRunner<T> {
    signature: Signature<T>,
    /// The shared per-row work unit (FIR + local solve).
    task: RowTask<T>,
    threads: usize,
    /// Persistent workers, spawned on first use and shared with the
    /// cached intra-row runner.
    pool: OnceLock<Arc<WorkerPool>>,
    inner: Mutex<Option<CachedInner<T>>>,
}

impl<T: Element> BatchRunner<T> {
    /// Creates a batch runner; `threads == 0` means one per CPU.
    pub fn new(signature: Signature<T>, threads: usize) -> Self {
        // A chunk-size-0 plan: whole-row dispatch never corrects, so the
        // plan only supplies the FIR and local-solve kernels (shared with
        // every other consumer of this signature through the cache).
        let task = RowTask::new(&signature);
        BatchRunner {
            signature,
            task,
            threads,
            pool: OnceLock::new(),
            inner: Mutex::new(None),
        }
    }

    /// The worker count (resolving 0 to the CPU count).
    pub fn threads(&self) -> usize {
        resolve_threads(self.threads)
    }

    /// The persistent pool, spawning it on first use.
    fn pool(&self) -> &Arc<WorkerPool> {
        self.pool
            .get_or_init(|| Arc::new(WorkerPool::new(self.threads())))
    }

    /// Applies the recurrence to each row of a row-major matrix in place.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnsupportedSignature`] when `width == 0` or
    /// the data length is not a multiple of `width`, and
    /// [`EngineError::WorkerPanicked`] when a worker (or the calling
    /// thread) panicked mid-run — the pool survives and the batch runner
    /// stays usable, but `data` is left partially processed.
    pub fn run_rows(&self, data: &mut [T], width: usize) -> Result<RunStats, EngineError> {
        self.run_rows_ctl(data, width, None)
    }

    /// Like [`BatchRunner::run_rows`], but observing a caller-held
    /// [`CancelToken`]: cancelling any clone aborts the batch — mid-row
    /// through the same cooperative bail-out paths a worker panic uses,
    /// and between rows on the long-rows path — and the call returns
    /// [`EngineError::Cancelled`]. Already-completed rows keep their
    /// results; the rest of `data` is left partially processed. The
    /// runner and its pool stay usable.
    ///
    /// # Errors
    ///
    /// [`EngineError::Cancelled`] on cancellation, plus everything
    /// [`BatchRunner::run_rows`] can return.
    pub fn run_rows_with_cancel(
        &self,
        data: &mut [T],
        width: usize,
        cancel: &CancelToken,
    ) -> Result<RunStats, EngineError> {
        self.run_rows_ctl(data, width, Some(cancel))
    }

    /// Opens a streaming submission channel: rows go in one at a time via
    /// [`RowStream::push_row`], each returning a [`RowHandle`] that can be
    /// polled, waited on, or `await`ed independently, while the pool's
    /// workers drain rows concurrently in the background.
    ///
    /// The in-flight window defaults to `2 × threads` rows — enough to
    /// keep every worker busy while the producer prepares the next row,
    /// small enough that a slow consumer exerts backpressure instead of
    /// buffering the whole batch. Use [`BatchRunner::stream_with_window`]
    /// to pick a different bound.
    ///
    /// The stream occupies the pool until it is finished or dropped:
    /// blocking `run_rows` calls on the same runner queue behind it.
    /// Dropping the stream without calling [`RowStream::finish`] cancels
    /// rows still queued or in flight (their handles resolve to
    /// [`EngineError::Cancelled`]) and quiesces the workers.
    ///
    /// [`RowHandle`]: crate::RowHandle
    pub fn stream(&self) -> RowStream<T> {
        self.stream_with_window(2 * self.threads().max(1))
    }

    /// Like [`BatchRunner::stream`] with an explicit in-flight window
    /// (clamped to at least 1): `push_row` blocks while `window` rows are
    /// queued or being solved.
    pub fn stream_with_window(&self, window: usize) -> RowStream<T> {
        RowStream::launch(Arc::clone(self.pool()), self.task.clone(), window.max(1))
    }

    fn run_rows_ctl(
        &self,
        data: &mut [T],
        width: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<RunStats, EngineError> {
        if width == 0 || !data.len().is_multiple_of(width) {
            return Err(EngineError::UnsupportedSignature {
                reason: format!(
                    "row width {width} does not divide the data length {}",
                    data.len()
                ),
            });
        }
        let rows = data.len() / width;
        let threads = self.threads().max(1);

        if rows >= threads || rows == 0 {
            self.run_whole_rows(data, width, rows, cancel)
        } else {
            // Few long rows: parallelize inside each row instead, through
            // the cached intra-row runner (correction table reused).
            self.run_long_rows(data, width, threads, cancel)
        }
    }

    /// Whole rows per worker: embarrassingly parallel, fully in place
    /// (in-place FIR + in-place feedback solve; rows are independent so
    /// there are no cross-boundary inputs to stash).
    fn run_whole_rows(
        &self,
        data: &mut [T],
        width: usize,
        rows: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<RunStats, EngineError> {
        let pool = self.pool();
        let mut ctl = RunControl::new();
        if let Some(token) = cancel {
            ctl = ctl.with_cancel(token);
        }
        let task = &self.task;
        let fir_nanos = AtomicU64::new(0);
        let solve_nanos = AtomicU64::new(0);
        let solve_slices = AtomicU64::new(0);
        let aborts = AtomicU64::new(0);
        let recovered_before = pool.recovered_workers();
        let tickets = Tickets::new(rows);
        let base = SendPtr::new(data.as_mut_ptr());
        pool.run_ctl(&ctl, |worker, abort| {
            let (mut fir_ns, mut solve_ns, mut slices) = (0u64, 0u64, 0u64);
            while let Some(r) = tickets.claim() {
                if abort.is_aborted() {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                // SAFETY: unique tickets make the rows disjoint; `data`
                // outlives the blocking `pool.run` call.
                let row =
                    unsafe { std::slice::from_raw_parts_mut(base.ptr().add(r * width), width) };
                let (f, s, sl) = task.apply(row, worker, r, Some(abort));
                fir_ns += f;
                solve_ns += s;
                slices += sl;
            }
            fir_nanos.fetch_add(fir_ns, Ordering::Relaxed);
            solve_nanos.fetch_add(solve_ns, Ordering::Relaxed);
            solve_slices.fetch_add(slices, Ordering::Relaxed);
        })
        .map_err(RunError::into_engine_error)?;
        Ok(RunStats {
            rows: rows as u64,
            chunks: rows as u64,
            threads: pool.width() as u64,
            aborts: aborts.load(Ordering::Relaxed),
            workers_recovered: pool.recovered_workers() - recovered_before,
            fir_nanos: fir_nanos.load(Ordering::Relaxed),
            solve_nanos: solve_nanos.load(Ordering::Relaxed),
            plan_cache_hits: self.task.plan_cache_hits(),
            plan_cache_misses: self.task.plan_cache_misses(),
            plan_kind: self.task.plan_kind(),
            kernel: self.task.kernel_kind(),
            solve_slices: solve_slices.load(Ordering::Relaxed),
            ..RunStats::default()
        })
    }

    /// Few long rows: chunked decoupled look-back inside each row via the
    /// cached runner (rebuilt only when the chunk size changes).
    fn run_long_rows(
        &self,
        data: &mut [T],
        width: usize,
        threads: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<RunStats, EngineError> {
        // Chunk dispatch, re-tuned for the register-blocked kernels (sweep
        // in `tune_long_rows`, recorded in EXPERIMENTS.md): per-chunk fixed
        // costs make chunks under ~4 Ki elements lose throughput outright,
        // and nothing improves past 64 Ki. Inside that band the correction
        // plan decides the sweet spot — dense plans stream k·chunk factor
        // words per chunk and prefer the small end, while decay-truncated
        // plans touch only the decayed prefix and keep gaining from larger
        // chunks. Probe the plan at the band's upper end (a cache hit on
        // every repeated call) to pick the side.
        let upper = (width / (threads * 2))
            .clamp(1 << 12, 1 << 16)
            .max(self.signature.order());
        let (probe, _) = plan::plan_for(&self.signature, PlanRequest::new::<T>(upper));
        let chunk_size = if probe.resets_carries(upper) {
            upper
        } else {
            upper.min(1 << 12).max(self.signature.order())
        };
        let mut cache = lock_recover(&self.inner);
        let rebuild = match cache.as_ref() {
            Some(inner) => inner.chunk_size != chunk_size,
            None => true,
        };
        if rebuild {
            *cache = Some(CachedInner {
                chunk_size,
                runner: ParallelRunner::with_config_and_pool(
                    self.signature.clone(),
                    RunnerConfig {
                        chunk_size,
                        threads,
                        ..Default::default()
                    },
                    Arc::clone(self.pool()),
                )?,
            });
        }
        let runner = &cache.as_ref().expect("cache filled above").runner;
        let mut stats = RunStats {
            threads: threads as u64,
            ..RunStats::default()
        };
        // The row index feeds the fault harness's `Row` site; without the
        // feature it is intentionally unused.
        #[cfg_attr(not(feature = "fault-inject"), allow(clippy::unused_enumerate_index))]
        for (_r, row) in data.chunks_mut(width).enumerate() {
            // Rows run sequentially on this thread, so the inner runner's
            // mid-run cancellation only covers the row in flight; check
            // between rows too so a cancelled batch stops promptly.
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(EngineError::Cancelled);
            }
            // The per-row dispatch happens on the calling thread, outside
            // any `pool.run`; guard it so an injected fault here still
            // honors the panics-become-errors contract (mirrors the
            // two-pass sequential chain).
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-inject")]
                crate::fault::check(crate::fault::FaultSite::Row, 0, _r, None);
                runner.execute(row, cancel)
            }));
            match outcome {
                Ok(row_stats) => stats.absorb(&row_stats?),
                Err(payload) => {
                    return Err(WorkerPanic::from_payload(0, payload.as_ref()).into_engine_error())
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::serial;
    use plr_core::validate::validate;

    fn reference<T: Element>(sig: &Signature<T>, data: &[T], width: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(data.len());
        for row in data.chunks(width) {
            out.extend(serial::run(sig, row));
        }
        out
    }

    #[test]
    fn many_rows_filtered_independently() {
        let sig: Signature<f32> = "0.2:0.8".parse().unwrap();
        let width = 64;
        let rows = 50;
        let data: Vec<f32> = (0..width * rows)
            .map(|i| ((i % 23) as f32) * 0.5 - 5.0)
            .collect();
        let mut got = data.clone();
        let runner = BatchRunner::new(sig.clone(), 4);
        let stats = runner.run_rows(&mut got, width).unwrap();
        assert_eq!(stats.chunks, rows as u64);
        validate(&reference(&sig, &data, width), &got, 1e-4).unwrap();
    }

    #[test]
    fn fir_rows_match_reference() {
        // A signature with a real map stage exercises the in-place FIR on
        // the whole-rows path.
        let sig: Signature<f64> = "0.81,-1.62,0.81:1.6,-0.64".parse().unwrap();
        let width = 96;
        let rows = 40;
        let data: Vec<f64> = (0..width * rows)
            .map(|i| ((i % 19) as f64) * 0.3 - 2.5)
            .collect();
        let mut got = data.clone();
        let runner = BatchRunner::new(sig.clone(), 4);
        let stats = runner.run_rows(&mut got, width).unwrap();
        assert!(
            stats.fir_nanos > 0,
            "FIR stage must be timed on the rows path"
        );
        validate(&reference(&sig, &data, width), &got, 1e-9).unwrap();
    }

    #[test]
    fn few_long_rows_use_intra_row_parallelism() {
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let width = 100_000;
        let rows = 2;
        let data: Vec<i64> = (0..width * rows).map(|i| (i % 7) as i64 - 3).collect();
        let mut got = data.clone();
        let runner = BatchRunner::new(sig.clone(), 8);
        let stats = runner.run_rows(&mut got, width).unwrap();
        assert!(
            stats.lookback_hops > 0,
            "long rows must go through the look-back path"
        );
        assert_eq!(got, reference(&sig, &data, width));
    }

    #[test]
    fn repeated_long_row_calls_reuse_the_cached_runner() {
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let width = 100_000;
        let runner = BatchRunner::new(sig.clone(), 8);
        for _ in 0..3 {
            let data: Vec<i64> = (0..width * 2).map(|i| (i % 7) as i64 - 3).collect();
            let mut got = data.clone();
            runner.run_rows(&mut got, width).unwrap();
            assert_eq!(got, reference(&sig, &data, width));
        }
        let cache = lock_recover(&runner.inner);
        assert!(
            cache.is_some(),
            "the intra-row runner must be cached across calls"
        );
    }

    #[test]
    fn row_boundaries_reset_the_recurrence() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let mut data: Vec<i64> = vec![1; 12];
        BatchRunner::new(sig, 2).run_rows(&mut data, 4).unwrap();
        assert_eq!(data, vec![1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4]);
    }

    #[test]
    fn rejects_mismatched_width() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        let mut data = vec![1i32; 10];
        assert!(BatchRunner::new(sig.clone(), 2)
            .run_rows(&mut data, 0)
            .is_err());
        assert!(BatchRunner::new(sig, 2).run_rows(&mut data, 3).is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        let mut data: Vec<i32> = vec![];
        let stats = BatchRunner::new(sig, 2).run_rows(&mut data, 4).unwrap();
        assert_eq!(stats.chunks, 0);
        assert_eq!(stats.threads, 2);
    }

    #[test]
    fn pre_cancelled_token_rejects_both_row_paths() {
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let runner = BatchRunner::new(sig.clone(), 2);
        let token = CancelToken::new();
        token.cancel();
        // Many short rows (whole-rows path).
        let mut many: Vec<i64> = (0..64 * 8).map(|i| (i % 5) as i64).collect();
        match runner.run_rows_with_cancel(&mut many, 64, &token) {
            Err(EngineError::Cancelled) => {}
            other => panic!("whole-rows path: expected Cancelled, got {other:?}"),
        }
        // One long row (long-rows path).
        let mut long: Vec<i64> = (0..50_000).map(|i| (i % 5) as i64).collect();
        match runner.run_rows_with_cancel(&mut long, 50_000, &token) {
            Err(EngineError::Cancelled) => {}
            other => panic!("long-rows path: expected Cancelled, got {other:?}"),
        }
        // A fresh token on the same runner still validates.
        let data: Vec<i64> = (0..64 * 8).map(|i| (i % 5) as i64).collect();
        let mut got = data.clone();
        runner
            .run_rows_with_cancel(&mut got, 64, &CancelToken::new())
            .unwrap();
        assert_eq!(got, reference(&sig, &data, 64));
    }

    #[test]
    fn uncancelled_token_matches_plain_run_rows() {
        let sig: Signature<f64> = "0.2:0.8".parse().unwrap();
        let runner = BatchRunner::new(sig.clone(), 4);
        let width = 96;
        let data: Vec<f64> = (0..width * 20).map(|i| ((i % 11) as f64) - 5.0).collect();
        let mut got = data.clone();
        runner
            .run_rows_with_cancel(&mut got, width, &CancelToken::new())
            .unwrap();
        validate(&reference(&sig, &data, width), &got, 1e-9).unwrap();
    }
}
