//! Batched execution over many independent sequences.
//!
//! The paper's future work lists "multiple dimensions"; the 2D codes it
//! compares against (Alg3, Rec) filter image rows. This runner applies one
//! signature to a batch of independent sequences — image rows, audio
//! channels, per-key streams — distributing whole sequences across worker
//! threads. Within a sequence the serial loop is optimal on a CPU thread;
//! across sequences the batch is embarrassingly parallel, and for batches
//! with few long rows the workers fall back to chunked decoupled look-back
//! within a row (via [`ParallelRunner`]).

use crate::runner::{ParallelRunner, RunnerConfig};
use crate::stats::RunStats;
use plr_core::element::Element;
use plr_core::error::EngineError;
use plr_core::serial;
use plr_core::signature::Signature;

/// A batched executor for one signature.
#[derive(Debug)]
pub struct BatchRunner<T> {
    signature: Signature<T>,
    threads: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Element> BatchRunner<T> {
    /// Creates a batch runner; `threads == 0` means one per CPU.
    pub fn new(signature: Signature<T>, threads: usize) -> Self {
        BatchRunner { signature, threads, _marker: std::marker::PhantomData }
    }

    /// The worker count (resolving 0 to the CPU count).
    pub fn threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            self.threads
        }
    }

    /// Applies the recurrence to each row of a row-major matrix in place.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnsupportedSignature`] when `width == 0` or
    /// the data length is not a multiple of `width`.
    pub fn run_rows(&self, data: &mut [T], width: usize) -> Result<RunStats, EngineError> {
        if width == 0 || data.len() % width != 0 {
            return Err(EngineError::UnsupportedSignature {
                reason: format!(
                    "row width {width} does not divide the data length {}",
                    data.len()
                ),
            });
        }
        let rows = data.len() / width;
        let threads = self.threads().max(1);

        if rows >= threads || rows == 0 {
            // Whole rows per worker: embarrassingly parallel.
            let sig = &self.signature;
            std::thread::scope(|scope| {
                let (tx, rx) = crossbeam::channel::bounded::<&mut [T]>(threads);
                for _ in 0..threads {
                    let rx = rx.clone();
                    scope.spawn(move || {
                        while let Ok(row) = rx.recv() {
                            let out = serial::run(sig, row);
                            row.copy_from_slice(&out);
                        }
                    });
                }
                drop(rx);
                for row in data.chunks_mut(width) {
                    tx.send(row).expect("workers outlive the feed");
                }
                drop(tx);
            });
            Ok(RunStats {
                chunks: rows as u64,
                lookback_hops: 0,
                spin_waits: 0,
                max_lookback_depth: 0,
                threads: threads as u64,
            })
        } else {
            // Few long rows: parallelize inside each row instead.
            let runner = ParallelRunner::with_config(
                self.signature.clone(),
                RunnerConfig {
                    chunk_size: (width / (threads * 4)).max(self.signature.order()).max(64),
                    threads,
                    ..Default::default()
                },
            )?;
            let mut stats = RunStats { threads: threads as u64, ..RunStats::default() };
            for row in data.chunks_mut(width) {
                let s = runner.run_in_place(row)?;
                stats.chunks += s.chunks;
                stats.lookback_hops += s.lookback_hops;
                stats.spin_waits += s.spin_waits;
                stats.max_lookback_depth = stats.max_lookback_depth.max(s.max_lookback_depth);
            }
            Ok(stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::validate::validate;

    fn reference<T: Element>(sig: &Signature<T>, data: &[T], width: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(data.len());
        for row in data.chunks(width) {
            out.extend(serial::run(sig, row));
        }
        out
    }

    #[test]
    fn many_rows_filtered_independently() {
        let sig: Signature<f32> = "0.2:0.8".parse().unwrap();
        let width = 64;
        let rows = 50;
        let data: Vec<f32> =
            (0..width * rows).map(|i| ((i % 23) as f32) * 0.5 - 5.0).collect();
        let mut got = data.clone();
        let runner = BatchRunner::new(sig.clone(), 4);
        let stats = runner.run_rows(&mut got, width).unwrap();
        assert_eq!(stats.chunks, rows as u64);
        validate(&reference(&sig, &data, width), &got, 1e-4).unwrap();
    }

    #[test]
    fn few_long_rows_use_intra_row_parallelism() {
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let width = 100_000;
        let rows = 2;
        let data: Vec<i64> = (0..width * rows).map(|i| (i % 7) as i64 - 3).collect();
        let mut got = data.clone();
        let runner = BatchRunner::new(sig.clone(), 8);
        let stats = runner.run_rows(&mut got, width).unwrap();
        assert!(stats.lookback_hops > 0, "long rows must go through the look-back path");
        assert_eq!(got, reference(&sig, &data, width));
    }

    #[test]
    fn row_boundaries_reset_the_recurrence() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let mut data: Vec<i64> = vec![1; 12];
        BatchRunner::new(sig, 2).run_rows(&mut data, 4).unwrap();
        assert_eq!(data, vec![1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4]);
    }

    #[test]
    fn rejects_mismatched_width() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        let mut data = vec![1i32; 10];
        assert!(BatchRunner::new(sig.clone(), 2).run_rows(&mut data, 0).is_err());
        assert!(BatchRunner::new(sig, 2).run_rows(&mut data, 3).is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        let mut data: Vec<i32> = vec![];
        let stats = BatchRunner::new(sig, 2).run_rows(&mut data, 4).unwrap();
        assert_eq!(stats.chunks, 0);
    }
}
