//! # plr-parallel
//!
//! A real multithreaded CPU runtime for linear recurrences — the paper's
//! chunked decoupled-look-back algorithm mapped onto the hierarchy this
//! reproduction environment actually has (CPU threads instead of GPU
//! blocks).
//!
//! Within a chunk there are no lanes, so the local solve is serial (the
//! degenerate form of Phase 1); across chunks the runtime is exactly the
//! paper's Phase 2: local carries published early, variable look-back with
//! `O(k²)` n-nacci fix-ups, bounded spin waits.
//!
//! ```
//! use plr_parallel::{ParallelRunner, RunnerConfig};
//! use plr_core::signature::Signature;
//!
//! let sig: Signature<i64> = "(1: 1)".parse()?; // prefix sum
//! let runner = ParallelRunner::with_config(
//!     sig,
//!     RunnerConfig { chunk_size: 1 << 14, threads: 4, ..Default::default() },
//! )?;
//! assert_eq!(runner.run(&[1, 2, 3, 4])?, vec![1, 3, 6, 10]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod runner;
pub mod stats;

pub use batch::BatchRunner;
pub use runner::{ParallelRunner, RunnerConfig, Strategy};
pub use stats::RunStats;
