//! # plr-parallel
//!
//! A real multithreaded CPU runtime for linear recurrences — the paper's
//! chunked decoupled-look-back algorithm mapped onto the hierarchy this
//! reproduction environment actually has (CPU threads instead of GPU
//! blocks).
//!
//! Within a chunk there are no lanes, so the local solve is serial (the
//! degenerate form of Phase 1); across chunks the runtime is exactly the
//! paper's Phase 2: local carries published early, variable look-back with
//! `O(k²)` n-nacci fix-ups, bounded spin waits.
//!
//! ## Execution model: the persistent worker pool
//!
//! The paper's Phase 2 pipeline overlaps carry propagation with local
//! solves on execution units that are *already resident* — GPU blocks
//! scheduled once per kernel, not once per chunk. This crate mirrors that
//! with a persistent [`pool::WorkerPool`]:
//!
//! - **Spawn once, run many.** A [`ParallelRunner`] (or [`BatchRunner`])
//!   lazily spawns its workers on the first `run()` and parks them on a
//!   condvar between calls; repeated runs pay a wake-up, not a spawn. The
//!   calling thread participates as worker 0, so one-thread configs run
//!   inline with zero synchronization.
//! - **Ticket scheduling.** Within a run, workers claim chunk indices
//!   from an atomic ticket counter. Claims are strictly increasing, which
//!   preserves the decoupled look-back progress argument: when a worker
//!   waits on a predecessor's carries, the predecessor's owner is already
//!   running, and the chain bottoms out at chunk 0 (which publishes
//!   unconditionally). At most `pool width` chunks are in flight, so
//!   look-back depth — the paper's dynamic `c` — is bounded by the worker
//!   count.
//! - **In-place map stage.** Signatures with a feed-forward part apply
//!   the FIR filter in place, fused into the same chunk pass as the local
//!   solve: each chunk's few cross-boundary inputs are stashed up front,
//!   and the chunk is mapped right-to-left so every read still sees
//!   original input. No second full-size buffer, no copy-back — the map
//!   costs one traversal instead of three.
//! - **Shared infrastructure.** [`BatchRunner`] runs whole rows on the
//!   same pool, and its intra-row fallback caches a [`ParallelRunner`]
//!   (correction table included) across `run_rows` calls, rebuilding only
//!   when the row geometry changes the chunk size.
//!
//! Per-phase wall times (FIR map, local solve, look-back, correction) are
//! accumulated per worker and reported through [`RunStats`].
//!
//! ## Failure & cancellation model
//!
//! The execution layer fails by returning errors, never by hanging or by
//! unwinding across the pool's lifetime-erasure boundary:
//!
//! - **Panics become errors.** Every job invocation runs under
//!   `catch_unwind`; the first panic (on a spawned worker *or* on the
//!   calling thread) trips a per-run [`pool::AbortSignal`], every ticket
//!   loop and carry spin-wait bails out at its next poll, and
//!   `run`/`run_in_place`/`run_rows` return
//!   [`EngineError::WorkerPanicked`](plr_core::error::EngineError::WorkerPanicked).
//! - **Runs are cancellable from outside.** A caller-held, cloneable
//!   [`CancelToken`] aborts in-flight runs through the same cooperative
//!   bail-out paths ([`ParallelRunner::run_with_cancel`],
//!   [`BatchRunner::run_rows_with_cancel`], or any [`RunControl`] at the
//!   pool layer); the call returns
//!   [`EngineError::Cancelled`](plr_core::error::EngineError::Cancelled).
//! - **Runs are deadline-bounded.** [`RunnerConfig::deadline`] arms a
//!   watchdog thread *inside the pool* that converts a run outliving its
//!   wall-clock budget — a wedged stage, an OS-starved worker, a hung
//!   spin-wait — into
//!   [`EngineError::DeadlineExceeded`](plr_core::error::EngineError::DeadlineExceeded)
//!   instead of a hang.
//! - **Submission can be non-blocking.** [`WorkerPool::submit`] hands the
//!   job to a donated driver thread (standing in for the caller's
//!   worker-0 role) and returns a [`RunHandle`] whose completion is
//!   signalled — poll it, wait with a timeout, register a waker, or
//!   `await` it (the handle implements `IntoFuture`). Dropping an
//!   unfinished handle cancels the run and blocks until it quiesces.
//! - **Rows can be streamed.** [`BatchRunner::stream`] opens a
//!   [`RowStream`]: rows go in one at a time under a bounded
//!   backpressure window, each returning a [`RowHandle`] with its own
//!   result, [`RunStats`], cancel token, and deadline; a failed row
//!   resolves only its own handle. The [`stream`] module also provides
//!   the runtime-agnostic `Future` adapters ([`RowFuture`],
//!   [`RunFuture`], [`block_on`]) built on the waker hooks.
//! - **The pool survives.** Worker threads outlive job panics; a worker
//!   that genuinely dies is respawned lazily at the next submission, and
//!   threads that failed to spawn in the first place are retried there
//!   too ([`RunStats::threads`] reports the effective width). Panic,
//!   cancel, and deadline outcomes are tallied in
//!   [`PoolCounters`](stats::PoolCounters).
//! - **Opt-in value validation.** [`RunnerConfig::check_finite`] aborts
//!   float runs whose carries go NaN/Inf instead of propagating garbage
//!   through the look-back chain.
//! - **Deterministic fault injection.** The `fault-inject` cargo feature
//!   compiles a process-global [`fault::FaultPlan`] harness that can kill
//!   or stall any pipeline stage (by chunk, worker, or call count) — plus
//!   batch-row dispatch and handle waits — to test all of the above; its
//!   consult sites are inert unless a plan is armed.
//!
//! When several causes coincide, a recorded panic always wins; otherwise
//! the first-tripped abort reason decides between cancelled and
//! deadline-exceeded (see `pool`'s module docs for the full precedence
//! rules).
//!
//! ```
//! use plr_parallel::{ParallelRunner, RunnerConfig};
//! use plr_core::signature::Signature;
//!
//! let sig: Signature<i64> = "(1: 1)".parse()?; // prefix sum
//! let runner = ParallelRunner::with_config(
//!     sig,
//!     RunnerConfig { chunk_size: 1 << 14, threads: 4, ..Default::default() },
//! )?;
//! // Repeated calls reuse the same warm worker threads.
//! assert_eq!(runner.run(&[1, 2, 3, 4])?, vec![1, 3, 6, 10]);
//! assert_eq!(runner.run(&[2, 2, 2, 2])?, vec![2, 4, 6, 8]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod pool;
pub mod retry;
pub mod runner;
pub mod segmented;
pub mod stats;
pub mod stream;
pub mod varying;

pub use batch::{BatchRunner, RowTask};
pub use pool::{
    resolve_threads, AbortReason, AbortSignal, CancelAttachment, CancelToken, RunControl, RunError,
    RunHandle, WatchGuard, WorkerPanic, WorkerPool,
};
pub use retry::{retry_with_backoff, Backoff, RetryOutcome};
pub use runner::{ParallelRunner, RunnerConfig, Strategy};
pub use segmented::SegmentedRunner;
pub use stats::{PoolCounters, RunStats};
pub use stream::{block_on, PushError, RowFuture, RowHandle, RowStream, RunFuture};
pub use varying::VaryingRunner;
