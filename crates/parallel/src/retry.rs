//! Decorrelated-jitter backoff for retryable admission rejections.
//!
//! The service core rejects work *at admission* when a tenant's quota is
//! exhausted or the shard backlog would blow the row's deadline
//! ([`EngineError::QuotaExceeded`] / [`EngineError::Overloaded`], both
//! [`EngineError::is_retryable`]). A client that immediately resubmits
//! turns one rejection into a retry storm; a client that sleeps a fixed
//! interval synchronizes with every other fixed-interval client. The
//! standard fix is *decorrelated jitter* (`sleep = uniform(base,
//! prev * 3)`, capped): successive delays grow geometrically in
//! expectation but are randomized against each other, so retries from
//! many rejected clients spread out instead of arriving in waves.
//!
//! [`Backoff`] is that policy as a small deterministic state machine — no
//! RNG dependency (a seeded xorshift), no clock dependency (it returns
//! durations, the caller sleeps), so retry schedules are unit-testable.
//! [`retry_with_backoff`] is the convenience loop: call, inspect, sleep,
//! bounded by an attempt budget.
//!
//! [`EngineError::QuotaExceeded`]: plr_core::error::EngineError::QuotaExceeded
//! [`EngineError::Overloaded`]: plr_core::error::EngineError::Overloaded
//! [`EngineError::is_retryable`]: plr_core::error::EngineError::is_retryable

use plr_core::error::EngineError;
use std::time::Duration;

/// Decorrelated-jitter backoff state (see the [module docs](self)).
///
/// Every delay drawn by [`next_delay`](Self::next_delay) lies in
/// `[base, cap]`; the sequence starts at `base` and random-walks upward
/// (each draw is uniform in `[base, 3 × previous]`, clamped to `cap`), so
/// a long rejection streak converges to sleeping about `cap` per attempt
/// without two clients ever locking step.
///
/// ```
/// use plr_parallel::retry::Backoff;
/// use std::time::Duration;
///
/// let mut backoff = Backoff::new(Duration::from_millis(2), Duration::from_millis(250));
/// let first = backoff.next_delay();
/// assert!(first >= Duration::from_millis(2) && first <= Duration::from_millis(250));
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: u64,
}

impl Backoff {
    /// A backoff whose delays are confined to `[base, cap]` (both clamped
    /// to at least one microsecond so degenerate configs cannot spin),
    /// seeded from the state's address for cheap run-to-run decorrelation.
    pub fn new(base: Duration, cap: Duration) -> Self {
        let base = base.max(Duration::from_micros(1));
        Self::with_seed(base, cap.max(base), 0x9E37_79B9_7F4A_7C15)
    }

    /// Like [`new`](Self::new) with an explicit RNG seed — deterministic
    /// schedules for tests.
    pub fn with_seed(base: Duration, cap: Duration, seed: u64) -> Self {
        let base = base.max(Duration::from_micros(1));
        Backoff {
            base,
            cap: cap.max(base),
            prev: base,
            rng: seed | 1,
        }
    }

    /// The configured floor.
    pub fn base(&self) -> Duration {
        self.base
    }

    /// The configured ceiling.
    pub fn cap(&self) -> Duration {
        self.cap
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: tiny, seedable, plenty for jitter.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Draws the next delay: uniform in `[base, 3 × previous]`, clamped to
    /// `[base, cap]`. Never returns zero.
    pub fn next_delay(&mut self) -> Duration {
        let base_ns = self.base.as_nanos() as u64;
        let cap_ns = self.cap.as_nanos() as u64;
        let upper = (self.prev.as_nanos() as u64)
            .saturating_mul(3)
            .clamp(base_ns, cap_ns);
        let span = upper - base_ns;
        let ns = if span == 0 {
            base_ns
        } else {
            base_ns + self.next_u64() % (span + 1)
        };
        self.prev = Duration::from_nanos(ns);
        self.prev
    }

    /// Resets the walk back to `base` (call after a success so the next
    /// rejection streak starts cheap again).
    pub fn reset(&mut self) {
        self.prev = self.base;
    }
}

/// Outcome of [`retry_with_backoff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryOutcome<T> {
    /// The operation succeeded within the attempt budget.
    Ok(T),
    /// Every attempt failed with a retryable error; the last one is
    /// returned together with the total time slept across backoffs.
    Exhausted {
        /// The final retryable rejection.
        last: EngineError,
        /// Total backoff slept over all attempts.
        slept: Duration,
        /// Attempts made (equals the configured budget).
        attempts: u32,
    },
    /// An attempt failed with a non-retryable error; retrying stopped
    /// immediately.
    Fatal(EngineError),
}

impl<T> RetryOutcome<T> {
    /// Collapses back to a plain `Result`, folding both failure arms into
    /// their `EngineError`.
    pub fn into_result(self) -> Result<T, EngineError> {
        match self {
            RetryOutcome::Ok(v) => Ok(v),
            RetryOutcome::Exhausted { last, .. } => Err(last),
            RetryOutcome::Fatal(e) => Err(e),
        }
    }
}

/// Calls `op` up to `attempts` times, sleeping a jittered backoff between
/// retryable failures ([`EngineError::is_retryable`]); a rejection that
/// carries a [`retry_after_hint`](EngineError::retry_after_hint) raises
/// the sleep to at least that hint. Non-retryable errors end the loop
/// immediately ([`RetryOutcome::Fatal`]) — retrying a cancelled or
/// misconfigured call would never help.
///
/// The total sleep is bounded by `attempts × max(cap, hint)`, so a retry
/// budget is also a wall-clock budget.
pub fn retry_with_backoff<T>(
    attempts: u32,
    backoff: &mut Backoff,
    mut op: impl FnMut() -> Result<T, EngineError>,
) -> RetryOutcome<T> {
    let mut slept = Duration::ZERO;
    let mut made = 0;
    loop {
        made += 1;
        match op() {
            Ok(v) => return RetryOutcome::Ok(v),
            Err(e) if !e.is_retryable() => return RetryOutcome::Fatal(e),
            Err(e) => {
                if made >= attempts.max(1) {
                    return RetryOutcome::Exhausted {
                        last: e,
                        slept,
                        attempts: made,
                    };
                }
                let delay = backoff
                    .next_delay()
                    .max(e.retry_after_hint().unwrap_or(Duration::ZERO));
                slept += delay;
                std::thread::sleep(delay);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overloaded(ms: u64) -> EngineError {
        EngineError::Overloaded {
            retry_after_hint: Duration::from_millis(ms),
        }
    }

    #[test]
    fn delays_stay_inside_the_configured_band() {
        let base = Duration::from_micros(100);
        let cap = Duration::from_millis(5);
        let mut b = Backoff::with_seed(base, cap, 42);
        for _ in 0..10_000 {
            let d = b.next_delay();
            assert!(
                d >= base && d <= cap,
                "delay {d:?} escaped [{base:?}, {cap:?}]"
            );
        }
    }

    #[test]
    fn delays_grow_then_saturate_at_the_cap() {
        let base = Duration::from_millis(1);
        let cap = Duration::from_millis(64);
        let mut b = Backoff::with_seed(base, cap, 7);
        // After enough draws the walk's upper bound is the cap itself:
        // expected delay ~ (base + cap) / 2, and no draw exceeds cap.
        let tail: Vec<Duration> = (0..200).map(|_| b.next_delay()).collect();
        let late_mean: Duration = tail[100..].iter().sum::<Duration>() / 100;
        assert!(late_mean > base * 4, "walk never grew: {late_mean:?}");
        assert!(tail.iter().all(|d| *d <= cap));
    }

    #[test]
    fn reset_returns_the_walk_to_base() {
        let base = Duration::from_millis(1);
        let mut b = Backoff::with_seed(base, Duration::from_secs(1), 3);
        for _ in 0..50 {
            b.next_delay();
        }
        b.reset();
        // First post-reset draw is uniform in [base, 3*base].
        assert!(b.next_delay() <= base * 3);
    }

    #[test]
    fn zero_durations_are_clamped_to_nonzero() {
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO);
        assert!(b.next_delay() > Duration::ZERO);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mk = || Backoff::with_seed(Duration::from_micros(10), Duration::from_millis(2), 99);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..100 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn retry_succeeds_after_transient_rejections() {
        let mut backoff =
            Backoff::with_seed(Duration::from_micros(10), Duration::from_micros(50), 1);
        let mut calls = 0;
        let out = retry_with_backoff(10, &mut backoff, || {
            calls += 1;
            if calls < 4 {
                Err(overloaded(0))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, RetryOutcome::Ok(4));
    }

    #[test]
    fn retry_budget_is_bounded_and_reports_the_last_error() {
        let mut backoff =
            Backoff::with_seed(Duration::from_micros(10), Duration::from_micros(40), 5);
        let mut calls = 0u32;
        let start = std::time::Instant::now();
        let out = retry_with_backoff::<()>(5, &mut backoff, || {
            calls += 1;
            Err(overloaded(0))
        });
        assert_eq!(calls, 5, "exactly the budgeted attempts are made");
        match out {
            RetryOutcome::Exhausted {
                last,
                slept,
                attempts,
            } => {
                assert!(matches!(last, EngineError::Overloaded { .. }));
                assert_eq!(attempts, 5);
                // 4 sleeps, each capped at 40 µs: the total slept (and
                // hence the wall-clock lower bound) is tightly bounded.
                assert!(slept <= Duration::from_micros(4 * 40));
                assert!(start.elapsed() < Duration::from_secs(1));
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn non_retryable_errors_stop_immediately() {
        let mut backoff = Backoff::new(Duration::from_millis(1), Duration::from_millis(1));
        let mut calls = 0;
        let out = retry_with_backoff::<()>(10, &mut backoff, || {
            calls += 1;
            Err(EngineError::Cancelled)
        });
        assert_eq!(calls, 1);
        assert!(matches!(out, RetryOutcome::Fatal(EngineError::Cancelled)));
        assert!(matches!(
            RetryOutcome::<()>::Fatal(EngineError::Cancelled).into_result(),
            Err(EngineError::Cancelled)
        ));
    }

    #[test]
    fn retry_after_hint_raises_the_sleep_floor() {
        let mut backoff = Backoff::with_seed(Duration::from_micros(1), Duration::from_micros(2), 9);
        let mut calls = 0;
        let start = std::time::Instant::now();
        let _ = retry_with_backoff::<()>(3, &mut backoff, || {
            calls += 1;
            Err(overloaded(2)) // 2 ms hint dominates the µs-scale backoff
        });
        assert!(
            start.elapsed() >= Duration::from_millis(4),
            "two sleeps of >= 2 ms each must have happened"
        );
        assert_eq!(calls, 3);
    }
}
