//! The multithreaded segmented runner: chunked decoupled look-back over
//! inputs with in-input restart boundaries.
//!
//! A segment reset is a zero carry, and that makes segmented inputs *more*
//! parallel than plain ones, not less: the boundary map classifies every
//! chunk up front, reset chunks publish their global carries straight off
//! their local solve (their tail past the last in-chunk boundary never
//! needed correcting), and look-back from any later chunk terminates at
//! the nearest reset chunk instead of walking to chunk 0. Interior chunks
//! run the ordinary pipeline, with the one twist that a correction is
//! clipped at the first in-chunk boundary.
//!
//! The sparse fast path rides the same classification: a chunk whose
//! post-FIR input is entirely zero solves to zero bit-exactly, so its
//! local solve is skipped outright — the correction pass *is* its output,
//! and its global carries reduce to the factor-table fix-up (a
//! companion-power multiply) of zero locals. `RunStats` reports both
//! classifications (`reset_chunks`, `skipped_chunks`).
//!
//! Progress argument (extending [`ParallelRunner`]'s): tickets are claimed
//! in order, interior chunks publish locals before any waiting, reset
//! chunks publish globals before any waiting, and the look-back floor of
//! every walk is a chunk that publishes unconditionally (chunk 0 or the
//! statically-known nearest reset chunk) — so every spin wait is bounded
//! by the pipeline depth.
//!
//! [`ParallelRunner`]: crate::ParallelRunner

use crate::batch::RowTask;
use crate::pool::{
    resolve_threads, AbortSignal, CancelToken, RunControl, RunError, SendPtr, Tickets, WorkerPanic,
    WorkerPool,
};
use crate::runner::{
    all_finite, timed, wait_for, PhaseClocks, PhaseTally, RunnerConfig, Slot, Strategy,
};
use crate::stats::RunStats;
use crate::stream::RowStream;
use plr_core::element::Element;
use plr_core::error::EngineError;
use plr_core::nacci::carries_of;
use plr_core::segmented::{all_zero, SegmentedPlan, Segments};
use plr_core::signature::Signature;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// What the two-pass sequential chain produces: per-chunk global carries
/// plus its `(hops, carry_resets, reset_chunks)` counters.
type ChainOutcome<T> = (Vec<Vec<T>>, u64, u64, u64);

/// A multithreaded executor for one signature over segmented inputs of a
/// fixed length (boundary map and correction plan precomputed once,
/// worker threads spawned once and reused across runs).
///
/// # Examples
///
/// ```
/// use plr_parallel::SegmentedRunner;
/// use plr_core::segmented::Segments;
/// use plr_core::signature::Signature;
///
/// let sig: Signature<i64> = "1 : 1".parse()?;
/// let runner = SegmentedRunner::new(sig, Segments::uniform(4, 8), 8)?;
/// let y = runner.run(&[1, 1, 1, 1, 1, 1, 1, 1])?;
/// assert_eq!(y, vec![1, 2, 3, 4, 1, 2, 3, 4]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SegmentedRunner<T> {
    /// The precomputed plan: correction plan (built directly, never via
    /// the shared constant-signature cache) + per-chunk boundary map.
    plan: Arc<SegmentedPlan<T>>,
    config: RunnerConfig,
    /// The persistent pool, created on first use.
    pool: OnceLock<Arc<WorkerPool>>,
}

impl<T: Element> SegmentedRunner<T> {
    /// Creates a runner with the default configuration for inputs of
    /// exactly `len` elements segmented by `segments`.
    ///
    /// # Errors
    ///
    /// See [`SegmentedRunner::with_config`].
    pub fn new(
        signature: Signature<T>,
        segments: Segments,
        len: usize,
    ) -> Result<Self, EngineError> {
        Self::with_config(signature, segments, len, RunnerConfig::default())
    }

    /// Creates a runner with an explicit configuration. The
    /// [`RunnerConfig::plan`] field is ignored — the boundary map is not
    /// part of the constant-signature plan cache's key, so segmented
    /// runners always build their correction plan directly and never
    /// consult (or populate) that cache.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidChunkSize`] when the chunk size is
    /// zero or smaller than the recurrence order, and
    /// [`EngineError::InputTooLarge`] past `2^30` elements.
    pub fn with_config(
        signature: Signature<T>,
        segments: Segments,
        len: usize,
        config: RunnerConfig,
    ) -> Result<Self, EngineError> {
        let plan = SegmentedPlan::build(&signature, segments, len, config.chunk_size)?;
        Ok(Self::from_plan(plan, config))
    }

    /// Wraps an already-built plan (e.g. one with the sparse fast path
    /// toggled via [`SegmentedPlan::with_sparse`]). The configuration's
    /// chunk size is overridden by the plan's — they must agree for the
    /// boundary map to describe the chunks the runner slices.
    pub fn from_plan(plan: SegmentedPlan<T>, mut config: RunnerConfig) -> Self {
        config.chunk_size = plan.chunk_size();
        SegmentedRunner {
            plan: Arc::new(plan),
            config,
            pool: OnceLock::new(),
        }
    }

    /// The configured worker count (resolving `0` to the CPU count).
    pub fn threads(&self) -> usize {
        resolve_threads(self.config.threads)
    }

    /// The runner's configuration.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// The precomputed segmented plan (correction plan + boundary map),
    /// shared with rows dispatched through [`SegmentedRunner::run_rows`] /
    /// [`SegmentedRunner::stream`].
    pub fn plan(&self) -> &Arc<SegmentedPlan<T>> {
        &self.plan
    }

    /// The persistent pool, spawning it on first use.
    fn pool(&self) -> &Arc<WorkerPool> {
        self.pool
            .get_or_init(|| Arc::new(WorkerPool::new(self.threads())))
    }

    /// Computes the segmented recurrence over `input`, allocating the
    /// output.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::LengthMismatch`] when `input` does not have
    /// the plan's bound length, [`EngineError::WorkerPanicked`] when a
    /// worker (or the calling thread) panicked mid-run,
    /// [`EngineError::NonFiniteCarry`] when [`RunnerConfig::check_finite`]
    /// is on and a chunk produced a NaN or infinite carry, and
    /// [`EngineError::DeadlineExceeded`] when [`RunnerConfig::deadline`]
    /// is set and the run outlived it. On error the pool survives and the
    /// runner stays usable.
    pub fn run(&self, input: &[T]) -> Result<Vec<T>, EngineError> {
        let mut data = input.to_vec();
        self.run_in_place(&mut data)?;
        Ok(data)
    }

    /// Like [`SegmentedRunner::run`], but observing a caller-held
    /// [`CancelToken`] — same semantics as
    /// [`ParallelRunner::run_with_cancel`](crate::ParallelRunner::run_with_cancel).
    ///
    /// # Errors
    ///
    /// [`EngineError::Cancelled`] on cancellation, plus everything
    /// [`SegmentedRunner::run`] can return.
    pub fn run_with_cancel(
        &self,
        input: &[T],
        cancel: &CancelToken,
    ) -> Result<Vec<T>, EngineError> {
        let mut data = input.to_vec();
        self.run_in_place_with_cancel(&mut data, cancel)?;
        Ok(data)
    }

    /// Computes the segmented recurrence in place, returning runtime
    /// statistics.
    ///
    /// # Errors
    ///
    /// See [`SegmentedRunner::run`]; on error `data` is left partially
    /// processed.
    pub fn run_in_place(&self, data: &mut [T]) -> Result<RunStats, EngineError> {
        self.execute(data, None)
    }

    /// In-place variant of [`SegmentedRunner::run_with_cancel`].
    ///
    /// # Errors
    ///
    /// See [`SegmentedRunner::run_with_cancel`]; on error `data` is left
    /// partially processed.
    pub fn run_in_place_with_cancel(
        &self,
        data: &mut [T],
        cancel: &CancelToken,
    ) -> Result<RunStats, EngineError> {
        self.execute(data, Some(cancel))
    }

    /// Shared entry point: validates the length, builds the run's
    /// [`RunControl`], and dispatches on the strategy.
    fn execute(
        &self,
        data: &mut [T],
        cancel: Option<&CancelToken>,
    ) -> Result<RunStats, EngineError> {
        if data.len() != self.plan.len() {
            return Err(EngineError::LengthMismatch {
                expected: self.plan.len(),
                got: data.len(),
            });
        }
        if data.is_empty() {
            return Ok(RunStats {
                threads: self.threads() as u64,
                plan_kind: self.plan.correction().kind(),
                kernel: self.plan.correction().solve().kind(),
                correction_taps: self.plan.correction().correction_taps() as u64,
                ..RunStats::default()
            });
        }
        let mut ctl = RunControl::new();
        if let Some(token) = cancel {
            ctl = ctl.with_cancel(token);
        }
        if let Some(budget) = self.config.deadline {
            ctl = ctl.with_deadline(budget);
        }
        let pool = self.pool();
        match self.config.strategy {
            Strategy::LookbackPipeline => self.run_lookback(data, pool, &ctl),
            Strategy::TwoPass => self.run_two_pass(data, pool, &ctl),
        }
    }

    /// Seeds the stats every strategy shares: segmented runs never touch
    /// the constant-signature plan cache, so both cache counters stay 0.
    fn base_stats(&self, pool: &WorkerPool, num_chunks: usize) -> RunStats {
        RunStats {
            rows: 1,
            chunks: num_chunks as u64,
            threads: pool.width() as u64,
            plan_kind: self.plan.correction().kind(),
            kernel: self.plan.correction().solve().kind(),
            correction_taps: self.plan.correction().correction_taps() as u64,
            ..RunStats::default()
        }
    }

    /// The single-pass decoupled look-back pipeline, reset-aware.
    fn run_lookback(
        &self,
        data: &mut [T],
        pool: &WorkerPool,
        ctl: &RunControl,
    ) -> Result<RunStats, EngineError> {
        let plan = &*self.plan;
        let cp = plan.correction();
        let m = plan.chunk_size();
        let n = data.len();
        let k = plan.order();
        let num_chunks = plan.num_chunks();
        let boundaries = plan.stash_boundaries(data);
        let check_finite = self.config.check_finite && T::IS_FLOAT;

        let slots: Vec<Slot<T>> = (0..num_chunks).map(|_| Slot::new()).collect();
        let hops = AtomicU64::new(0);
        let spins = AtomicU64::new(0);
        let max_depth = AtomicU64::new(0);
        let resets = AtomicU64::new(0);
        let aborts = AtomicU64::new(0);
        let reset_chunks = AtomicU64::new(0);
        let skipped_chunks = AtomicU64::new(0);
        let clocks = PhaseClocks::default();
        let failure: OnceLock<EngineError> = OnceLock::new();
        let tickets = Tickets::new(num_chunks);
        let base = SendPtr::new(data.as_mut_ptr());
        let recovered_before = pool.recovered_workers();

        let outcome = pool.run_ctl(ctl, |_worker, abort| {
            let mut tally = PhaseTally::default();
            while let Some(c) = tickets.claim() {
                if abort.is_aborted() {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let start = c * m;
                let len = m.min(n - start);
                // SAFETY: tickets are unique, so chunk `c` is exclusively
                // ours; `base` outlives `pool.run_ctl` (it blocks until
                // every worker finishes, even when one of them panics).
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), len) };
                timed(&mut tally.fir, || plan.fir_chunk(chunk, c, &boundaries));
                #[cfg(feature = "fault-inject")]
                crate::fault::check(crate::fault::FaultSite::Solve, _worker, c, Some(abort));
                // Sparse fast path: an all-zero post-FIR chunk solves to
                // zero bit-exactly, so skip the local solve outright; the
                // correction pass below is its entire output, and its
                // carries follow from the factor-table fix-up of zero
                // locals — identical code to the dense path from here on.
                if plan.sparse() && all_zero(chunk) {
                    skipped_chunks.fetch_add(1, Ordering::Relaxed);
                } else {
                    let solved = timed(&mut tally.solve, || {
                        plan.solve_chunk(chunk, c, &mut || !abort.is_aborted())
                    });
                    tally.slices += solved.slices;
                    if !solved.completed {
                        aborts.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
                if plan.map().has_resets(c) {
                    // Reset chunk: its tail past the last in-chunk
                    // boundary already has real (zero) history, so its
                    // global carries are final now — publish before any
                    // correction so successors never wait on our walk.
                    reset_chunks.fetch_add(1, Ordering::Relaxed);
                    let tail = plan.map().global_tail_start(c);
                    let globals = carries_of(&chunk[tail..], k);
                    if check_finite && !all_finite(&globals) {
                        let _ = failure.set(EngineError::NonFiniteCarry { chunk: c });
                        abort.trigger();
                        aborts.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    slots[c]
                        .global
                        .set(globals)
                        .expect("sole producer of reset-chunk globals");
                    // Only the prefix before the first boundary continues
                    // the incoming segment; chunk 0's prefix starts the
                    // data and is already global.
                    let limit = plan.map().correct_limit(c, len);
                    if c == 0 || limit == 0 {
                        continue;
                    }
                    #[cfg(feature = "fault-inject")]
                    crate::fault::check(crate::fault::FaultSite::Lookback, _worker, c, Some(abort));
                    let Some(g) = timed(&mut tally.lookback, || {
                        resolve_global_segmented(
                            plan,
                            &slots,
                            c - 1,
                            m,
                            n,
                            &hops,
                            &spins,
                            &max_depth,
                            &resets,
                            abort,
                        )
                    }) else {
                        aborts.fetch_add(1, Ordering::Relaxed);
                        break;
                    };
                    timed(&mut tally.correct, || {
                        cp.correct_chunk(&mut chunk[..limit], &g)
                    });
                    continue;
                }
                // Interior chunk: the ordinary pipeline.
                let locals = carries_of(chunk, k);
                if check_finite && !all_finite(&locals) {
                    let _ = failure.set(EngineError::NonFiniteCarry { chunk: c });
                    abort.trigger();
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                slots[c]
                    .local
                    .set(locals.clone())
                    .expect("sole producer of local carries");
                if c == 0 {
                    slots[0]
                        .global
                        .set(locals)
                        .expect("sole producer of chunk 0 globals");
                    continue;
                }
                #[cfg(feature = "fault-inject")]
                crate::fault::check(crate::fault::FaultSite::Lookback, _worker, c, Some(abort));
                let Some(g) = timed(&mut tally.lookback, || {
                    resolve_global_segmented(
                        plan,
                        &slots,
                        c - 1,
                        m,
                        n,
                        &hops,
                        &spins,
                        &max_depth,
                        &resets,
                        abort,
                    )
                }) else {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                };
                timed(&mut tally.correct, || cp.correct_chunk(chunk, &g));
                let globals = carries_of(chunk, k);
                if check_finite && !all_finite(&globals) {
                    let _ = failure.set(EngineError::NonFiniteCarry { chunk: c });
                    abort.trigger();
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                // A deeper look-back by a successor may already have
                // derived (and published) our globals.
                let _ = slots[c].global.set(globals);
            }
            tally.flush(&clocks);
        });

        outcome.map_err(RunError::into_engine_error)?;
        if let Some(e) = failure.into_inner() {
            return Err(e);
        }
        Ok(RunStats {
            lookback_hops: hops.load(Ordering::Relaxed),
            spin_waits: spins.load(Ordering::Relaxed),
            max_lookback_depth: max_depth.load(Ordering::Relaxed),
            aborts: aborts.load(Ordering::Relaxed),
            workers_recovered: pool.recovered_workers() - recovered_before,
            fir_nanos: clocks.fir.load(Ordering::Relaxed),
            solve_nanos: clocks.solve.load(Ordering::Relaxed),
            lookback_nanos: clocks.lookback.load(Ordering::Relaxed),
            correct_nanos: clocks.correct.load(Ordering::Relaxed),
            carry_resets: resets.load(Ordering::Relaxed),
            solve_slices: clocks.slices.load(Ordering::Relaxed),
            reset_chunks: reset_chunks.load(Ordering::Relaxed),
            skipped_chunks: skipped_chunks.load(Ordering::Relaxed),
            ..self.base_stats(pool, num_chunks)
        })
    }

    /// The two-pass strategy: parallel map + piecewise local solves, one
    /// sequential carry chain (restarting at every reset chunk), parallel
    /// boundary-clipped correction.
    fn run_two_pass(
        &self,
        data: &mut [T],
        pool: &WorkerPool,
        ctl: &RunControl,
    ) -> Result<RunStats, EngineError> {
        let plan = &*self.plan;
        let cp = plan.correction();
        let m = plan.chunk_size();
        let k = plan.order();
        let n = data.len();
        let num_chunks = plan.num_chunks();
        let boundaries = plan.stash_boundaries(data);
        let check_finite = self.config.check_finite && T::IS_FLOAT;
        let clocks = PhaseClocks::default();
        let aborts = AtomicU64::new(0);
        let skipped_chunks = AtomicU64::new(0);
        let recovered_before = pool.recovered_workers();

        // Pass A: in-place map + piecewise local solves in parallel, with
        // the sparse skip for all-zero chunks.
        let tickets = Tickets::new(num_chunks);
        let base = SendPtr::new(data.as_mut_ptr());
        pool.run_ctl(ctl, |_worker, abort| {
            let mut tally = PhaseTally::default();
            while let Some(c) = tickets.claim() {
                if abort.is_aborted() {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let start = c * m;
                let len = m.min(n - start);
                // SAFETY: unique tickets make the chunks disjoint.
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), len) };
                timed(&mut tally.fir, || plan.fir_chunk(chunk, c, &boundaries));
                #[cfg(feature = "fault-inject")]
                crate::fault::check(crate::fault::FaultSite::Solve, _worker, c, Some(abort));
                if plan.sparse() && all_zero(chunk) {
                    skipped_chunks.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let solved = timed(&mut tally.solve, || {
                    plan.solve_chunk(chunk, c, &mut || !abort.is_aborted())
                });
                tally.slices += solved.slices;
                if !solved.completed {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
            tally.flush(&clocks);
        })
        .map_err(RunError::into_engine_error)?;

        // Sequential chain: globals of chunk c from globals of c-1, except
        // at reset chunks, whose tail carries are already global (the
        // chain restarts there). Runs outside the pool, so it gets its own
        // unwind guard to keep "panics become errors" uniform.
        let chain_start = Instant::now();
        let chain = catch_unwind(AssertUnwindSafe(
            || -> Result<ChainOutcome<T>, EngineError> {
                let mut hops = 0u64;
                let mut resets = 0u64;
                let mut reset_chunks = 0u64;
                let mut globals: Vec<Vec<T>> = Vec::with_capacity(num_chunks);
                for c in 0..num_chunks {
                    if c > 0 {
                        // The chain runs outside the pool, so the watchdog
                        // cannot see it; poll the control directly.
                        ctl.status().map_err(RunError::into_engine_error)?;
                        #[cfg(feature = "fault-inject")]
                        crate::fault::check(crate::fault::FaultSite::Lookback, 0, c, None);
                    }
                    let start = c * m;
                    let end = (start + m).min(n);
                    let g = if plan.map().has_resets(c) {
                        reset_chunks += 1;
                        carries_of(&data[start + plan.map().global_tail_start(c)..end], k)
                    } else if c == 0 {
                        carries_of(&data[..end], k)
                    } else {
                        let locals = carries_of(&data[start..end], k);
                        if cp.resets_carries(end - start) {
                            resets += 1;
                            locals
                        } else {
                            hops += 1;
                            cp.fixup_carries(&globals[c - 1], &locals, end - start)
                        }
                    };
                    if check_finite && !all_finite(&g) {
                        return Err(EngineError::NonFiniteCarry { chunk: c });
                    }
                    globals.push(g);
                }
                Ok((globals, hops, resets, reset_chunks))
            },
        ));
        let (globals, hops, carry_resets, reset_chunks) = match chain {
            Ok(Ok(v)) => v,
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                return Err(WorkerPanic::from_payload(0, payload.as_ref()).into_engine_error())
            }
        };
        let lookback_nanos = chain_start.elapsed().as_nanos() as u64;

        // Pass B: correct every chunk's continuing prefix with its
        // predecessor's globals, in parallel (chunk 0 is already global;
        // chunks beginning on a boundary have nothing to correct).
        let tickets = Tickets::new(num_chunks.saturating_sub(1));
        let base = SendPtr::new(data.as_mut_ptr());
        let globals = &globals;
        pool.run_ctl(ctl, |_worker, abort| {
            let mut tally = PhaseTally::default();
            while let Some(t) = tickets.claim() {
                if abort.is_aborted() {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let c = t + 1;
                let start = c * m;
                let len = m.min(n - start);
                let limit = plan.map().correct_limit(c, len);
                if limit == 0 {
                    continue;
                }
                // SAFETY: unique tickets make the chunks disjoint.
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), len) };
                timed(&mut tally.correct, || {
                    cp.correct_chunk(&mut chunk[..limit], &globals[c - 1])
                });
            }
            tally.flush(&clocks);
        })
        .map_err(RunError::into_engine_error)?;

        Ok(RunStats {
            lookback_hops: hops,
            spin_waits: 0,
            max_lookback_depth: 1,
            aborts: aborts.load(Ordering::Relaxed),
            workers_recovered: pool.recovered_workers() - recovered_before,
            fir_nanos: clocks.fir.load(Ordering::Relaxed),
            solve_nanos: clocks.solve.load(Ordering::Relaxed),
            lookback_nanos,
            correct_nanos: clocks.correct.load(Ordering::Relaxed),
            carry_resets,
            solve_slices: clocks.slices.load(Ordering::Relaxed),
            reset_chunks,
            skipped_chunks: skipped_chunks.load(Ordering::Relaxed),
            ..self.base_stats(pool, num_chunks)
        })
    }

    /// Applies the segmented recurrence to each row of a row-major matrix
    /// in place: every row is an independent input under the same segment
    /// boundaries (so `width` must equal the plan's bound length). Rows
    /// are distributed whole across the pool through the same [`RowTask`]
    /// dispatch the constant batch runner and the streaming layer use.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnsupportedSignature`] when `width == 0` or
    /// does not divide the data length, [`EngineError::LengthMismatch`]
    /// when `width` is not the plan's bound length, and
    /// [`EngineError::WorkerPanicked`] when a worker panicked mid-run —
    /// the pool survives and the runner stays usable, but `data` is left
    /// partially processed.
    pub fn run_rows(&self, data: &mut [T], width: usize) -> Result<RunStats, EngineError> {
        self.run_rows_ctl(data, width, None)
    }

    /// Like [`SegmentedRunner::run_rows`], but observing a caller-held
    /// [`CancelToken`] (cancelling aborts mid-row; completed rows keep
    /// their results).
    ///
    /// # Errors
    ///
    /// [`EngineError::Cancelled`] on cancellation, plus everything
    /// [`SegmentedRunner::run_rows`] can return.
    pub fn run_rows_with_cancel(
        &self,
        data: &mut [T],
        width: usize,
        cancel: &CancelToken,
    ) -> Result<RunStats, EngineError> {
        self.run_rows_ctl(data, width, Some(cancel))
    }

    fn run_rows_ctl(
        &self,
        data: &mut [T],
        width: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<RunStats, EngineError> {
        if width == 0 || !data.len().is_multiple_of(width) {
            return Err(EngineError::UnsupportedSignature {
                reason: format!(
                    "row width {width} does not divide the data length {}",
                    data.len()
                ),
            });
        }
        if width != self.plan.len() {
            return Err(EngineError::LengthMismatch {
                expected: self.plan.len(),
                got: width,
            });
        }
        let rows = data.len() / width;
        let pool = self.pool();
        let mut ctl = RunControl::new();
        if let Some(token) = cancel {
            ctl = ctl.with_cancel(token);
        }
        if let Some(budget) = self.config.deadline {
            ctl = ctl.with_deadline(budget);
        }
        let task = RowTask::segmented(Arc::clone(&self.plan));
        let fir_nanos = AtomicU64::new(0);
        let solve_nanos = AtomicU64::new(0);
        let solve_slices = AtomicU64::new(0);
        let aborts = AtomicU64::new(0);
        let recovered_before = pool.recovered_workers();
        let tickets = Tickets::new(rows);
        let base = SendPtr::new(data.as_mut_ptr());
        pool.run_ctl(&ctl, |worker, abort| {
            let (mut fir_ns, mut solve_ns, mut slices) = (0u64, 0u64, 0u64);
            while let Some(r) = tickets.claim() {
                if abort.is_aborted() {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                // SAFETY: unique tickets make the rows disjoint; `data`
                // outlives the blocking `pool.run_ctl` call.
                let row =
                    unsafe { std::slice::from_raw_parts_mut(base.ptr().add(r * width), width) };
                let (f, s, sl) = task.apply(row, worker, r, Some(abort));
                fir_ns += f;
                solve_ns += s;
                slices += sl;
            }
            fir_nanos.fetch_add(fir_ns, Ordering::Relaxed);
            solve_nanos.fetch_add(solve_ns, Ordering::Relaxed);
            solve_slices.fetch_add(slices, Ordering::Relaxed);
        })
        .map_err(RunError::into_engine_error)?;
        Ok(RunStats {
            rows: rows as u64,
            chunks: (rows * self.plan.num_chunks()) as u64,
            aborts: aborts.load(Ordering::Relaxed),
            workers_recovered: pool.recovered_workers() - recovered_before,
            fir_nanos: fir_nanos.load(Ordering::Relaxed),
            solve_nanos: solve_nanos.load(Ordering::Relaxed),
            solve_slices: solve_slices.load(Ordering::Relaxed),
            ..self.base_stats(pool, self.plan.num_chunks())
        })
    }

    /// Opens a streaming submission channel for independent rows under
    /// this segmented plan — the exact machinery of
    /// [`BatchRunner::stream`](crate::BatchRunner::stream) (backpressure
    /// window, per-row handles, cancel/deadline semantics), dispatching
    /// each row through [`RowTask::segmented`]. Every pushed row must have
    /// the plan's bound length; other lengths resolve that row's handle to
    /// [`EngineError::WorkerPanicked`].
    pub fn stream(&self) -> RowStream<T> {
        self.stream_with_window(2 * self.threads().max(1))
    }

    /// Like [`SegmentedRunner::stream`] with an explicit in-flight window
    /// (clamped to at least 1).
    pub fn stream_with_window(&self, window: usize) -> RowStream<T> {
        RowStream::launch(
            Arc::clone(self.pool()),
            RowTask::segmented(Arc::clone(&self.plan)),
            window.max(1),
        )
    }
}

/// Derives the global carries of chunk `j` from published state, with the
/// look-back terminating at the nearest reset: a reset chunk's globals are
/// published straight off its local solve (its locals never are), so the
/// walk's floor is the statically-known nearest reset chunk at or before
/// `j` — or chunk 0, which also publishes unconditionally.
///
/// Returns `None` when the run was aborted while waiting on carries that
/// will never be published — the caller must stop processing its chunk.
#[allow(clippy::too_many_arguments)]
fn resolve_global_segmented<T: Element>(
    plan: &SegmentedPlan<T>,
    slots: &[Slot<T>],
    j: usize,
    m: usize,
    n: usize,
    hops: &AtomicU64,
    spins: &AtomicU64,
    max_depth: &AtomicU64,
    resets: &AtomicU64,
    abort: &AbortSignal,
) -> Option<Vec<T>> {
    let cp = plan.correction();
    // A reset chunk publishes its (final) globals before any waiting;
    // its locals are never derivable, so just wait for the real thing.
    if plan.map().has_resets(j) {
        let g = wait_for(&slots[j].global, spins, abort)?;
        hops.fetch_add(1, Ordering::Relaxed);
        max_depth.fetch_max(1, Ordering::Relaxed);
        return Some(g.clone());
    }
    let len_j = m.min(n - j * m);
    if j > 0 && cp.resets_carries(len_j) {
        // Decay short-circuit: chunk j's correction cannot reach its own
        // carries, so its globals equal its locals.
        let locals = wait_for(&slots[j].local, spins, abort)?;
        resets.fetch_add(1, Ordering::Relaxed);
        max_depth.fetch_max(1, Ordering::Relaxed);
        return Some(locals.clone());
    }
    // Find the deepest published globals at or before j; the walk never
    // passes the nearest reset chunk (carries don't cross boundaries, and
    // it publishes unconditionally — the same role chunk 0 plays).
    let floor = plan.map().nearest_reset_at_or_before(j).unwrap_or(0);
    let mut start = j;
    loop {
        if slots[start].global.get().is_some() {
            break;
        }
        if start == floor {
            wait_for(&slots[floor].global, spins, abort)?;
            break;
        }
        start -= 1;
    }
    let mut g = slots[start]
        .global
        .get()
        .expect("checked or awaited above")
        .clone();
    hops.fetch_add(1, Ordering::Relaxed);
    max_depth.fetch_max((j - start + 1) as u64, Ordering::Relaxed);
    for (h, slot) in slots.iter().enumerate().take(j + 1).skip(start + 1) {
        let locals = wait_for(&slot.local, spins, abort)?;
        let chunk_len = m.min(n - h * m);
        g = cp.fixup_carries(&g, locals, chunk_len);
        hops.fetch_add(1, Ordering::Relaxed);
    }
    Some(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::segmented::run_serial;

    fn sig2() -> Signature<i64> {
        "1:2,-1".parse().unwrap()
    }

    fn check_config(segments: &Segments, input: &[i64], config: RunnerConfig) {
        for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
            let runner = SegmentedRunner::with_config(
                sig2(),
                segments.clone(),
                input.len(),
                RunnerConfig { strategy, ..config },
            )
            .unwrap();
            let got = runner.run(input).unwrap();
            assert_eq!(got, run_serial(&sig2(), segments, input), "{strategy:?}");
        }
    }

    #[test]
    fn matches_serial_across_geometries() {
        let input: Vec<i64> = (0..4000).map(|i| (i % 11) - 5).collect();
        let config = RunnerConfig {
            chunk_size: 256,
            threads: 4,
            ..Default::default()
        };
        for segments in [
            Segments::uniform(97, input.len()),
            Segments::uniform(256, input.len()),
            Segments::from_starts(vec![0]).unwrap(),
            Segments::from_starts(vec![0, 1, 2, 3, 3999]).unwrap(),
        ] {
            check_config(&segments, &input, config);
        }
    }

    #[test]
    fn reset_and_skip_counters_report() {
        let n = 4096;
        let segments = Segments::uniform(1000, n);
        // Nonzero only in the first chunk: later chunks hit the sparse
        // skip; chunks containing the segment starts count as resets.
        let mut input = vec![0i64; n];
        for (i, v) in input.iter_mut().take(256).enumerate() {
            *v = (i % 7) as i64 - 3;
        }
        let runner = SegmentedRunner::with_config(
            sig2(),
            segments.clone(),
            n,
            RunnerConfig {
                chunk_size: 256,
                threads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut data = input.clone();
        let stats = runner.run_in_place(&mut data).unwrap();
        assert_eq!(data, run_serial(&sig2(), &segments, &input));
        assert_eq!(
            stats.reset_chunks, 4,
            "starts 1000/2000/3000/4000 each land mid-chunk"
        );
        assert!(stats.skipped_chunks > 0, "zero chunks must be skipped");
        assert_eq!(stats.plan_cache_hits + stats.plan_cache_misses, 0);
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let runner = SegmentedRunner::new(sig2(), Segments::uniform(4, 0), 0).unwrap();
        assert_eq!(runner.run(&[]).unwrap(), Vec::<i64>::new());
        let stats = runner.run_in_place(&mut []).unwrap();
        assert_eq!(stats.chunks, 0);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let runner = SegmentedRunner::new(sig2(), Segments::uniform(4, 16), 16).unwrap();
        assert!(matches!(
            runner.run(&[1, 2, 3]),
            Err(EngineError::LengthMismatch {
                expected: 16,
                got: 3
            })
        ));
    }
}
