//! The multithreaded runner: chunked decoupled look-back on real threads.
//!
//! This is the paper's algorithm mapped onto the parallelism we actually
//! have in this reproduction environment — CPU threads. Workers live in a
//! persistent [`WorkerPool`] (spawned lazily on the first run, reused by
//! every later one) and claim chunks in order from an atomic ticket
//! counter. Each worker applies the FIR map stage *in place* on its chunk
//! (cross-boundary inputs are stashed up front), solves its chunk locally
//! (serial within a chunk is optimal when there are no intra-chunk lanes),
//! publishes the chunk's *local* carries, derives its predecessor's
//! *global* carries by variable look-back over already-published carries,
//! corrects its chunk with the precomputed n-nacci factors, and publishes
//! its own global carries.
//!
//! Progress argument (same as the GPU kernel's): tickets are claimed in
//! order, every in-flight chunk publishes its local carries *before* any
//! waiting, and the oldest in-flight chunk's predecessor globals always
//! exist — so the look-back chain can always be resolved and the spin
//! waits are bounded by the pipeline depth (the pool width).

use crate::pool::{
    resolve_threads, AbortSignal, CancelToken, RunControl, RunError, SendPtr, Tickets, WorkerPanic,
    WorkerPool,
};
use crate::stats::RunStats;
use plr_core::element::Element;
use plr_core::engine::MAX_INPUT_LEN;
use plr_core::error::EngineError;
use plr_core::nacci::carries_of;
use plr_core::plan::{self, CorrectionPlan, PlanMode, PlanRequest};
use plr_core::signature::Signature;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// How the runner schedules the carry propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Single pass with decoupled look-back: each worker publishes local
    /// carries, resolves its predecessor's global carries from whatever is
    /// already published, corrects, and publishes — the paper's pipelined
    /// Phase 2 on threads.
    #[default]
    LookbackPipeline,
    /// Two passes with a barrier: parallel local solves, a sequential
    /// `O(chunks·k²)` carry chain on one thread, then parallel correction.
    /// Simpler, no spinning, but touches every chunk's data twice.
    TwoPass,
}

/// Configuration for [`ParallelRunner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Elements per chunk (one chunk is one unit of work). Must be at
    /// least the recurrence order.
    pub chunk_size: usize,
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Carry-propagation strategy.
    pub strategy: Strategy,
    /// Opt-in finiteness validation for float runs: after each chunk's
    /// local solve and correction, scan its `k` carries for NaN/Inf and
    /// abort the run with [`EngineError::NonFiniteCarry`] instead of
    /// silently propagating garbage through the look-back chain. Only
    /// the carries are scanned (`O(k)` per chunk, off the element-wise
    /// hot path); a no-op for integer elements. Default `false`.
    pub check_finite: bool,
    /// Wall-clock budget per `run` call, enforced by the worker pool's
    /// watchdog thread: a run that outlives it — even one wedged in a
    /// spin-wait or starved by the OS — is aborted cooperatively and
    /// returns [`EngineError::DeadlineExceeded`] instead of hanging. One
    /// budget covers the whole call (both passes of
    /// [`Strategy::TwoPass`], every chunk of the pipeline). Default
    /// `None` (unbounded).
    pub deadline: Option<Duration>,
    /// Correction-plan mode: [`PlanMode::Auto`] (default) picks the
    /// cheapest sound strategy per factor list through the shared plan
    /// cache; [`PlanMode::Dense`] forces the unspecialized full-table
    /// path (the differential-testing and benchmarking baseline).
    pub plan: PlanMode,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            chunk_size: 1 << 16,
            threads: 0,
            strategy: Strategy::default(),
            check_finite: false,
            deadline: None,
            plan: PlanMode::default(),
        }
    }
}

/// A multithreaded executor for one signature (factors precomputed once,
/// worker threads spawned once and reused across runs).
///
/// # Examples
///
/// ```
/// use plr_parallel::ParallelRunner;
/// use plr_core::signature::Signature;
///
/// let sig: Signature<i64> = "1 : 2, -1".parse()?;
/// let runner = ParallelRunner::new(sig)?;
/// let y = runner.run(&[1, 1, 1, 1])?;
/// assert_eq!(y, vec![1, 3, 6, 10]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ParallelRunner<T> {
    signature: Signature<T>,
    /// The cached correction plan: factor table (decay-truncated when
    /// sound), per-list strategies, FIR and local-solve kernels.
    plan: Arc<CorrectionPlan<T>>,
    /// Whether the plan came from the shared cache (reported in stats).
    plan_cache_hit: bool,
    config: RunnerConfig,
    /// The persistent pool, created on first use (or inherited from a
    /// [`crate::BatchRunner`] so both share one set of threads).
    pool: OnceLock<Arc<WorkerPool>>,
}

/// Per-chunk carry slots, published lock-free through [`OnceLock`].
pub(crate) struct Slot<T> {
    pub(crate) local: OnceLock<Vec<T>>,
    pub(crate) global: OnceLock<Vec<T>>,
}

impl<T> Slot<T> {
    pub(crate) fn new() -> Self {
        Slot {
            local: OnceLock::new(),
            global: OnceLock::new(),
        }
    }
}

/// Atomic accumulators for the per-phase wall times in [`RunStats`],
/// plus the local-solve slice count (the abort-granularity metric).
#[derive(Default)]
pub(crate) struct PhaseClocks {
    pub(crate) fir: AtomicU64,
    pub(crate) solve: AtomicU64,
    pub(crate) lookback: AtomicU64,
    pub(crate) correct: AtomicU64,
    pub(crate) slices: AtomicU64,
}

/// Per-worker tallies, flushed to the shared clocks once per job to keep
/// atomic traffic off the per-chunk path.
#[derive(Default)]
pub(crate) struct PhaseTally {
    pub(crate) fir: u64,
    pub(crate) solve: u64,
    pub(crate) lookback: u64,
    pub(crate) correct: u64,
    pub(crate) slices: u64,
}

impl PhaseTally {
    pub(crate) fn flush(&self, clocks: &PhaseClocks) {
        clocks.fir.fetch_add(self.fir, Ordering::Relaxed);
        clocks.solve.fetch_add(self.solve, Ordering::Relaxed);
        clocks.lookback.fetch_add(self.lookback, Ordering::Relaxed);
        clocks.correct.fetch_add(self.correct, Ordering::Relaxed);
        clocks.slices.fetch_add(self.slices, Ordering::Relaxed);
    }
}

/// Times one closure, adding the elapsed nanoseconds to `slot`.
pub(crate) fn timed<R>(slot: &mut u64, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let out = f();
    *slot += start.elapsed().as_nanos() as u64;
    out
}

impl<T: Element> ParallelRunner<T> {
    /// Creates a runner with the default configuration.
    ///
    /// # Errors
    ///
    /// See [`ParallelRunner::with_config`].
    pub fn new(signature: Signature<T>) -> Result<Self, EngineError> {
        Self::with_config(signature, RunnerConfig::default())
    }

    /// Creates a runner with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidChunkSize`] when the chunk size is
    /// zero or smaller than the recurrence order (a chunk must hold all
    /// `k` published carries).
    pub fn with_config(signature: Signature<T>, config: RunnerConfig) -> Result<Self, EngineError> {
        if config.chunk_size == 0 || config.chunk_size < signature.order() {
            return Err(EngineError::InvalidChunkSize {
                chunk_size: config.chunk_size,
            });
        }
        let req = PlanRequest {
            mode: config.plan,
            ..PlanRequest::new::<T>(config.chunk_size)
        };
        let (plan, plan_cache_hit) = plan::plan_for(&signature, req);
        Ok(ParallelRunner {
            signature,
            plan,
            plan_cache_hit,
            config,
            pool: OnceLock::new(),
        })
    }

    /// Like [`ParallelRunner::with_config`], but executing on an existing
    /// pool instead of lazily spawning a private one.
    pub(crate) fn with_config_and_pool(
        signature: Signature<T>,
        config: RunnerConfig,
        pool: Arc<WorkerPool>,
    ) -> Result<Self, EngineError> {
        let runner = Self::with_config(signature, config)?;
        let _ = runner.pool.set(pool);
        Ok(runner)
    }

    /// The configured worker count (resolving `0` to the CPU count).
    pub fn threads(&self) -> usize {
        resolve_threads(self.config.threads)
    }

    /// The runner's configuration.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// The correction plan this runner executes (strategy selection,
    /// truncation depth, kernels) — shared through the global plan cache.
    pub fn plan(&self) -> &CorrectionPlan<T> {
        &self.plan
    }

    /// The persistent pool, spawning it on first use.
    fn pool(&self) -> &Arc<WorkerPool> {
        self.pool
            .get_or_init(|| Arc::new(WorkerPool::new(self.threads())))
    }

    /// Computes the recurrence over `input`, allocating the output.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InputTooLarge`] beyond 2^30 elements,
    /// [`EngineError::WorkerPanicked`] when a worker (or the calling
    /// thread) panicked mid-run, [`EngineError::NonFiniteCarry`] when
    /// [`RunnerConfig::check_finite`] is on and a chunk produced a NaN or
    /// infinite carry, and [`EngineError::DeadlineExceeded`] when
    /// [`RunnerConfig::deadline`] is set and the run outlived it. On
    /// error the pool survives and the runner stays usable; the input
    /// buffer's contents are unspecified (partially processed).
    pub fn run(&self, input: &[T]) -> Result<Vec<T>, EngineError> {
        let mut data = input.to_vec();
        self.run_in_place(&mut data)?;
        Ok(data)
    }

    /// Like [`ParallelRunner::run`], but observing a caller-held
    /// [`CancelToken`]: cancelling any clone of `cancel` — before the
    /// call or while it is executing — aborts the run cooperatively (the
    /// same bail-out paths a worker panic uses; even carry spin-waits
    /// notice within one poll interval) and the call returns
    /// [`EngineError::Cancelled`]. The runner and its pool stay fully
    /// usable afterwards.
    ///
    /// # Errors
    ///
    /// [`EngineError::Cancelled`] on cancellation, plus everything
    /// [`ParallelRunner::run`] can return.
    pub fn run_with_cancel(
        &self,
        input: &[T],
        cancel: &CancelToken,
    ) -> Result<Vec<T>, EngineError> {
        let mut data = input.to_vec();
        self.run_in_place_with_cancel(&mut data, cancel)?;
        Ok(data)
    }

    /// Computes the recurrence in place, returning runtime statistics.
    ///
    /// # Errors
    ///
    /// See [`ParallelRunner::run`]; additionally, on error `data` is left
    /// partially processed.
    pub fn run_in_place(&self, data: &mut [T]) -> Result<RunStats, EngineError> {
        self.execute(data, None)
    }

    /// In-place variant of [`ParallelRunner::run_with_cancel`].
    ///
    /// # Errors
    ///
    /// See [`ParallelRunner::run_with_cancel`]; on error `data` is left
    /// partially processed.
    pub fn run_in_place_with_cancel(
        &self,
        data: &mut [T],
        cancel: &CancelToken,
    ) -> Result<RunStats, EngineError> {
        self.execute(data, Some(cancel))
    }

    /// Shared entry point: builds the run's [`RunControl`] (cancel link +
    /// deadline, resolved once so a multi-pass strategy spends a single
    /// budget) and dispatches on the strategy.
    pub(crate) fn execute(
        &self,
        data: &mut [T],
        cancel: Option<&CancelToken>,
    ) -> Result<RunStats, EngineError> {
        if data.len() > MAX_INPUT_LEN {
            return Err(EngineError::InputTooLarge {
                len: data.len(),
                max: MAX_INPUT_LEN,
            });
        }
        if data.is_empty() {
            // Report the worker count the run would have used; every other
            // path resolves it the same way.
            return Ok(RunStats {
                threads: self.threads() as u64,
                plan_cache_hits: self.plan_cache_hit as u64,
                plan_cache_misses: !self.plan_cache_hit as u64,
                plan_kind: self.plan.kind(),
                correction_taps: self.plan.correction_taps() as u64,
                kernel: self.plan.solve().kind(),
                ..RunStats::default()
            });
        }
        let mut ctl = RunControl::new();
        if let Some(token) = cancel {
            ctl = ctl.with_cancel(token);
        }
        if let Some(budget) = self.config.deadline {
            ctl = ctl.with_deadline(budget);
        }
        let pool = self.pool();
        match self.config.strategy {
            Strategy::LookbackPipeline => self.run_lookback(data, pool, &ctl),
            Strategy::TwoPass => self.run_two_pass(data, pool, &ctl),
        }
    }

    /// Stashes, for every chunk after the first, the original inputs its
    /// in-place FIR needs from across its left boundary (the `p - 1`
    /// values before the chunk start; fewer near the front of the data).
    ///
    /// The stash is what lets the map stage run in place: by the time a
    /// worker reads across its left boundary, the owner of that data may
    /// already have overwritten it with mapped values.
    fn stash_boundaries(&self, data: &[T], m: usize, num_chunks: usize) -> Vec<Vec<T>> {
        let p = self.plan.fir().len();
        if self.signature.is_pure_feedback() || p <= 1 {
            return Vec::new();
        }
        (1..num_chunks)
            .map(|c| {
                let start = c * m;
                data[start.saturating_sub(p - 1)..start].to_vec()
            })
            .collect()
    }

    /// The FIR map for chunk `c` (`start = c·m`), in place. `boundaries`
    /// comes from [`Self::stash_boundaries`].
    fn fir_chunk(&self, chunk: &mut [T], c: usize, start: usize, boundaries: &[Vec<T>]) {
        if self.signature.is_pure_feedback() {
            return;
        }
        // `boundaries` is empty when `p <= 1`: a one-tap FIR never reads
        // across a chunk boundary.
        let prev: &[T] = if c == 0 || boundaries.is_empty() {
            &[]
        } else {
            &boundaries[c - 1]
        };
        fir_in_place(self.plan.fir(), prev, start, chunk);
    }

    /// The single-pass decoupled look-back pipeline on the pool.
    fn run_lookback(
        &self,
        data: &mut [T],
        pool: &WorkerPool,
        ctl: &RunControl,
    ) -> Result<RunStats, EngineError> {
        let m = self.config.chunk_size;
        let n = data.len();
        let k = self.signature.order();
        let num_chunks = n.div_ceil(m);
        let boundaries = self.stash_boundaries(data, m, num_chunks);
        let check_finite = self.config.check_finite && T::IS_FLOAT;

        let slots: Vec<Slot<T>> = (0..num_chunks).map(|_| Slot::new()).collect();
        let hops = AtomicU64::new(0);
        let spins = AtomicU64::new(0);
        let max_depth = AtomicU64::new(0);
        let resets = AtomicU64::new(0);
        let aborts = AtomicU64::new(0);
        let clocks = PhaseClocks::default();
        let failure: OnceLock<EngineError> = OnceLock::new();
        let tickets = Tickets::new(num_chunks);
        let base = SendPtr::new(data.as_mut_ptr());
        let recovered_before = pool.recovered_workers();

        let outcome = pool.run_ctl(ctl, |_worker, abort| {
            let mut tally = PhaseTally::default();
            while let Some(c) = tickets.claim() {
                if abort.is_aborted() {
                    // A worker died or a check failed: stop touching data
                    // so the run can surface its error promptly.
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let start = c * m;
                let len = m.min(n - start);
                // SAFETY: tickets are unique, so chunk `c` is exclusively
                // ours; `base` outlives `pool.run` (it blocks until every
                // worker finishes, even when one of them panics).
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), len) };
                timed(&mut tally.fir, || {
                    self.fir_chunk(chunk, c, start, &boundaries)
                });
                #[cfg(feature = "fault-inject")]
                crate::fault::check(crate::fault::FaultSite::Solve, _worker, c, Some(abort));
                // Local solve (time-sliced so a cancel or deadline lands
                // mid-chunk, not after it), then publish local carries.
                let solved = timed(&mut tally.solve, || {
                    self.plan
                        .solve()
                        .solve_in_place_sliced(chunk, &mut || !abort.is_aborted())
                });
                tally.slices += solved.slices;
                if !solved.completed {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let locals = carries_of(chunk, k);
                if check_finite && !all_finite(&locals) {
                    let _ = failure.set(EngineError::NonFiniteCarry { chunk: c });
                    abort.trigger();
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                slots[c]
                    .local
                    .set(locals.clone())
                    .expect("sole producer of local carries");
                if c == 0 {
                    slots[0]
                        .global
                        .set(locals)
                        .expect("sole producer of chunk 0 globals");
                    continue;
                }
                #[cfg(feature = "fault-inject")]
                crate::fault::check(crate::fault::FaultSite::Lookback, _worker, c, Some(abort));
                // Variable look-back: walk back to the most recent
                // published globals, then fix forward through the
                // published locals. `None` means the run was aborted while
                // we waited on carries that will never be published.
                let Some(g) = timed(&mut tally.lookback, || {
                    resolve_global(
                        &self.plan,
                        &slots,
                        c - 1,
                        m,
                        n,
                        &hops,
                        &spins,
                        &max_depth,
                        &resets,
                        abort,
                    )
                }) else {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                };
                timed(&mut tally.correct, || self.plan.correct_chunk(chunk, &g));
                let globals = carries_of(chunk, k);
                if check_finite && !all_finite(&globals) {
                    let _ = failure.set(EngineError::NonFiniteCarry { chunk: c });
                    abort.trigger();
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                // A deeper look-back by a successor may already have
                // derived (and published) our globals.
                let _ = slots[c].global.set(globals);
            }
            tally.flush(&clocks);
        });

        outcome.map_err(RunError::into_engine_error)?;
        if let Some(e) = failure.into_inner() {
            return Err(e);
        }
        Ok(RunStats {
            rows: 1,
            chunks: num_chunks as u64,
            lookback_hops: hops.load(Ordering::Relaxed),
            spin_waits: spins.load(Ordering::Relaxed),
            max_lookback_depth: max_depth.load(Ordering::Relaxed),
            threads: pool.width() as u64,
            aborts: aborts.load(Ordering::Relaxed),
            workers_recovered: pool.recovered_workers() - recovered_before,
            fir_nanos: clocks.fir.load(Ordering::Relaxed),
            solve_nanos: clocks.solve.load(Ordering::Relaxed),
            lookback_nanos: clocks.lookback.load(Ordering::Relaxed),
            correct_nanos: clocks.correct.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hit as u64,
            plan_cache_misses: !self.plan_cache_hit as u64,
            plan_kind: self.plan.kind(),
            fused_chunks: 0,
            correction_taps: self.plan.correction_taps() as u64,
            carry_resets: resets.load(Ordering::Relaxed),
            kernel: self.plan.solve().kind(),
            solve_slices: clocks.slices.load(Ordering::Relaxed),
            reset_chunks: 0,
            skipped_chunks: 0,
        })
    }

    /// The two-pass strategy: parallel map + local solves, one sequential
    /// carry chain, parallel correction (the dependency structure of
    /// [`plr_core::phase2::propagate_decoupled`] on real threads).
    fn run_two_pass(
        &self,
        data: &mut [T],
        pool: &WorkerPool,
        ctl: &RunControl,
    ) -> Result<RunStats, EngineError> {
        let m = self.config.chunk_size;
        let k = self.signature.order();
        let n = data.len();
        let num_chunks = n.div_ceil(m);
        let boundaries = self.stash_boundaries(data, m, num_chunks);
        let check_finite = self.config.check_finite && T::IS_FLOAT;
        let clocks = PhaseClocks::default();
        let aborts = AtomicU64::new(0);
        let recovered_before = pool.recovered_workers();

        // Pass A: in-place map + local solves in parallel.
        let tickets = Tickets::new(num_chunks);
        let base = SendPtr::new(data.as_mut_ptr());
        pool.run_ctl(ctl, |_worker, abort| {
            let mut tally = PhaseTally::default();
            while let Some(c) = tickets.claim() {
                if abort.is_aborted() {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let start = c * m;
                let len = m.min(n - start);
                // SAFETY: unique tickets make the chunks disjoint.
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), len) };
                timed(&mut tally.fir, || {
                    self.fir_chunk(chunk, c, start, &boundaries)
                });
                #[cfg(feature = "fault-inject")]
                crate::fault::check(crate::fault::FaultSite::Solve, _worker, c, Some(abort));
                let solved = timed(&mut tally.solve, || {
                    self.plan
                        .solve()
                        .solve_in_place_sliced(chunk, &mut || !abort.is_aborted())
                });
                tally.slices += solved.slices;
                if !solved.completed {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
            tally.flush(&clocks);
        })
        .map_err(RunError::into_engine_error)?;

        // Sequential chain: globals of chunk c from globals of c-1. This
        // is worker 0's look-back stage; it runs outside the pool, so it
        // gets its own unwind guard to keep the "panics become errors"
        // contract uniform across strategies.
        let chain_start = Instant::now();
        let chain = catch_unwind(AssertUnwindSafe(
            || -> Result<(Vec<Vec<T>>, u64, u64), EngineError> {
                let mut hops = 0u64;
                let mut resets = 0u64;
                let mut globals: Vec<Vec<T>> = Vec::with_capacity(num_chunks);
                globals.push(carries_of(&data[..m.min(n)], k));
                for c in 1..num_chunks {
                    // The chain runs outside the pool, so the watchdog
                    // cannot see it; poll the control directly instead.
                    ctl.status().map_err(RunError::into_engine_error)?;
                    #[cfg(feature = "fault-inject")]
                    crate::fault::check(crate::fault::FaultSite::Lookback, 0, c, None);
                    let start = c * m;
                    let end = (start + m).min(n);
                    let locals = carries_of(&data[start..end], k);
                    if check_finite && !all_finite(&locals) {
                        return Err(EngineError::NonFiniteCarry { chunk: c });
                    }
                    // When chunk `c`'s correction cannot reach its own
                    // carries (truncated plan, long enough chunk), its
                    // globals equal its locals — the chain resets for free.
                    if self.plan.resets_carries(end - start) {
                        resets += 1;
                        globals.push(locals);
                    } else {
                        globals.push(self.plan.fixup_carries(
                            &globals[c - 1],
                            &locals,
                            end - start,
                        ));
                        hops += 1;
                    }
                }
                Ok((globals, hops, resets))
            },
        ));
        let (globals, hops, carry_resets) = match chain {
            Ok(Ok(v)) => v,
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                return Err(WorkerPanic::from_payload(0, payload.as_ref()).into_engine_error())
            }
        };
        let lookback_nanos = chain_start.elapsed().as_nanos() as u64;

        // Pass B: correct every chunk with its predecessor's globals, in
        // parallel (chunk 0 is already global).
        let tickets = Tickets::new(num_chunks.saturating_sub(1));
        let base = SendPtr::new(data.as_mut_ptr());
        let globals = &globals;
        pool.run_ctl(ctl, |_worker, abort| {
            let mut tally = PhaseTally::default();
            while let Some(t) = tickets.claim() {
                if abort.is_aborted() {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let c = t + 1;
                let start = c * m;
                let len = m.min(n - start);
                // SAFETY: unique tickets make the chunks disjoint.
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), len) };
                timed(&mut tally.correct, || {
                    self.plan.correct_chunk(chunk, &globals[c - 1])
                });
            }
            tally.flush(&clocks);
        })
        .map_err(RunError::into_engine_error)?;

        Ok(RunStats {
            rows: 1,
            chunks: num_chunks as u64,
            lookback_hops: hops,
            spin_waits: 0,
            max_lookback_depth: 1,
            threads: pool.width() as u64,
            aborts: aborts.load(Ordering::Relaxed),
            workers_recovered: pool.recovered_workers() - recovered_before,
            fir_nanos: clocks.fir.load(Ordering::Relaxed),
            solve_nanos: clocks.solve.load(Ordering::Relaxed),
            lookback_nanos,
            correct_nanos: clocks.correct.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hit as u64,
            plan_cache_misses: !self.plan_cache_hit as u64,
            plan_kind: self.plan.kind(),
            fused_chunks: 0,
            correction_taps: self.plan.correction_taps() as u64,
            carry_resets,
            kernel: self.plan.solve().kind(),
            solve_slices: clocks.slices.load(Ordering::Relaxed),
            reset_chunks: 0,
            skipped_chunks: 0,
        })
    }
}

/// Whether every carry in the slice widens to a finite `f64` (always true
/// for integer elements).
pub(crate) fn all_finite<T: Element>(carries: &[T]) -> bool {
    carries.iter().all(|&c| c.to_f64().is_finite())
}

// The in-place FIR kernel moved into plr-core's register-blocked kernel
// layer (branch-free steady state, unrolled small tap counts); the runner
// and the batch executor share it from there.
pub(crate) use plr_core::blocked::fir_in_place;

/// Derives the global carries of chunk `j` from published state: walks back
/// to the nearest chunk with published globals (spinning on chunk 0's if
/// necessary), then fixes forward through published local carries.
///
/// When the plan's correction cannot reach chunk `j`'s own carries (a
/// decay-truncated plan whose effective factors die out before the chunk's
/// last `k` elements), chunk `j`'s globals equal its locals — the look-back
/// chain resets there and the walk collapses to a single wait.
///
/// Returns `None` when the run was aborted while waiting on carries that
/// will never be published (a dead worker claimed the chunk that owned
/// them) — the caller must stop processing its chunk.
#[allow(clippy::too_many_arguments)]
fn resolve_global<T: Element>(
    plan: &CorrectionPlan<T>,
    slots: &[Slot<T>],
    j: usize,
    m: usize,
    n: usize,
    hops: &AtomicU64,
    spins: &AtomicU64,
    max_depth: &AtomicU64,
    resets: &AtomicU64,
    abort: &AbortSignal,
) -> Option<Vec<T>> {
    let len_j = m.min(n - j * m);
    if j > 0 && plan.resets_carries(len_j) {
        let locals = wait_for(&slots[j].local, spins, abort)?;
        resets.fetch_add(1, Ordering::Relaxed);
        max_depth.fetch_max(1, Ordering::Relaxed);
        return Some(locals.clone());
    }
    // Find the deepest published globals at or before j.
    let mut start = j;
    loop {
        if slots[start].global.get().is_some() {
            break;
        }
        if start == 0 {
            // Chunk 0 publishes unconditionally right after its local
            // solve; spin until it lands (or the run dies).
            wait_for(&slots[0].global, spins, abort)?;
            break;
        }
        start -= 1;
    }
    let mut g = slots[start]
        .global
        .get()
        .expect("checked or awaited above")
        .clone();
    hops.fetch_add(1, Ordering::Relaxed);
    max_depth.fetch_max((j - start + 1) as u64, Ordering::Relaxed);
    for (h, slot) in slots.iter().enumerate().take(j + 1).skip(start + 1) {
        let locals = wait_for(&slot.local, spins, abort)?;
        let chunk_len = m.min(n - h * m);
        g = plan.fixup_carries(&g, locals, chunk_len);
        hops.fetch_add(1, Ordering::Relaxed);
    }
    Some(g)
}

/// Spins (with yields) until a carry set is published, or `None` once the
/// run is aborted. The abort flag is polled only on the yield slots (every
/// 64th iteration), keeping the fast path a pure `spin_loop`.
pub(crate) fn wait_for<'a, T>(
    cell: &'a OnceLock<Vec<T>>,
    spins: &AtomicU64,
    abort: &AbortSignal,
) -> Option<&'a Vec<T>> {
    let mut tries = 0u64;
    loop {
        if let Some(v) = cell.get() {
            if tries > 0 {
                spins.fetch_add(tries, Ordering::Relaxed);
            }
            return Some(v);
        }
        tries += 1;
        if tries.is_multiple_of(64) {
            if abort.is_aborted() {
                spins.fetch_add(tries, Ordering::Relaxed);
                return None;
            }
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::serial;
    use plr_core::validate::validate;

    fn check<T: Element>(sig_text: &str, n: usize, config: RunnerConfig, tol: f64)
    where
        Signature<T>: std::str::FromStr,
        <Signature<T> as std::str::FromStr>::Err: std::fmt::Debug,
    {
        let sig: Signature<T> = sig_text.parse().unwrap();
        let input: Vec<T> = (0..n)
            .map(|i| T::from_i32(((i * 29) % 19) as i32 - 9))
            .collect();
        let runner = ParallelRunner::with_config(sig.clone(), config).unwrap();
        let got = runner.run(&input).unwrap();
        let expect = serial::run(&sig, &input);
        validate(&expect, &got, tol).unwrap_or_else(|e| panic!("{sig_text} {config:?}: {e}"));
    }

    #[test]
    fn integer_catalog_exact_across_thread_counts() {
        for threads in [1, 2, 4, 8] {
            for text in ["1:1", "1:0,1", "1:0,0,1", "1:2,-1", "1:3,-3,1"] {
                check::<i64>(
                    text,
                    100_000,
                    RunnerConfig {
                        chunk_size: 1 << 10,
                        threads,
                        strategy: Strategy::default(),
                        ..Default::default()
                    },
                    0.0,
                );
            }
        }
    }

    #[test]
    fn float_filters_within_tolerance() {
        for text in ["0.2:0.8", "0.04:1.6,-0.64", "0.9,-0.9:0.8"] {
            check::<f32>(
                text,
                50_000,
                RunnerConfig {
                    chunk_size: 4096,
                    threads: 4,
                    strategy: Strategy::default(),
                    ..Default::default()
                },
                1e-3,
            );
        }
    }

    /// Regression test for `WorkerPool::new` graceful degradation: if
    /// *every* worker spawn fails (simulated by `new_degraded`), runs must
    /// still complete correctly on the caller-as-worker-0 serial path and
    /// report the effective width of 1 — and once spawning works again,
    /// the next submission's heal pass must restore the full pool.
    #[test]
    fn zero_spawned_workers_degrades_to_correct_serial_run() {
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let input: Vec<i64> = (0..50_000).map(|i| (i % 17) as i64 - 8).collect();
        let expect = serial::run(&sig, &input);

        let pool = Arc::new(WorkerPool::new_degraded(4));
        assert_eq!(pool.width(), 1, "no spawned workers must survive");
        let runner = ParallelRunner::with_config_and_pool(
            sig,
            RunnerConfig {
                chunk_size: 1 << 10,
                threads: 4,
                ..Default::default()
            },
            Arc::clone(&pool),
        )
        .unwrap();

        let mut data = input.clone();
        let stats = runner.run_in_place(&mut data).unwrap();
        assert_eq!(data, expect, "serial fallback must still be correct");
        assert_eq!(stats.threads, 1, "effective width is the caller alone");
        assert_eq!(pool.width(), 1, "inhibited heal must not respawn");

        // Spawning works again: the next submission heals back to full
        // width and the run is still correct.
        pool.allow_respawn();
        let mut data = input.clone();
        let stats = runner.run_in_place(&mut data).unwrap();
        assert_eq!(data, expect);
        assert_eq!(stats.threads, 4, "heal must restore the full pool");
        assert!(pool.recovered_workers() >= 3);
    }

    #[test]
    fn check_finite_flags_divergent_float_runs() {
        // y_i = 2·y_{i-1} + x_i diverges; f32 overflows to +inf inside the
        // first chunk, so every strategy must report a non-finite carry.
        let sig: Signature<f32> = "1:2".parse().unwrap();
        let input = vec![1.0f32; 4096];
        let num_chunks = input.len() / 256;
        for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
            let strict = ParallelRunner::with_config(
                sig.clone(),
                RunnerConfig {
                    chunk_size: 256,
                    threads: 4,
                    strategy,
                    check_finite: true,
                    ..Default::default()
                },
            )
            .unwrap();
            match strict.run(&input) {
                Err(EngineError::NonFiniteCarry { chunk }) => assert!(chunk < num_chunks),
                other => panic!("expected NonFiniteCarry ({strategy:?}), got {other:?}"),
            }
            // The check is opt-in: by default the same run completes and
            // silently propagates the non-finite values.
            let lax = ParallelRunner::with_config(
                sig.clone(),
                RunnerConfig {
                    chunk_size: 256,
                    threads: 4,
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            let out = lax.run(&input).unwrap();
            assert!(!out.last().unwrap().is_finite(), "{strategy:?}");
        }
    }

    #[test]
    fn check_finite_passes_stable_runs_untouched() {
        // Stable float filter and (vacuously) an integer signature: the
        // scan must not reject finite runs or cost integer paths anything.
        let finite_cfg = RunnerConfig {
            chunk_size: 1024,
            threads: 4,
            check_finite: true,
            ..Default::default()
        };
        check::<f32>("0.2:0.8", 10_000, finite_cfg, 1e-3);
        check::<i64>("1:2,-1", 10_000, finite_cfg, 0.0);
    }

    #[test]
    fn ragged_and_tiny_inputs() {
        check::<i64>(
            "1:2,-1",
            1,
            RunnerConfig {
                chunk_size: 64,
                threads: 4,
                strategy: Strategy::default(),
                ..Default::default()
            },
            0.0,
        );
        check::<i64>(
            "1:2,-1",
            63,
            RunnerConfig {
                chunk_size: 64,
                threads: 4,
                strategy: Strategy::default(),
                ..Default::default()
            },
            0.0,
        );
        check::<i64>(
            "1:2,-1",
            65,
            RunnerConfig {
                chunk_size: 64,
                threads: 4,
                strategy: Strategy::default(),
                ..Default::default()
            },
            0.0,
        );
        check::<i64>(
            "1:2,-1",
            6400 + 17,
            RunnerConfig {
                chunk_size: 64,
                threads: 4,
                strategy: Strategy::default(),
                ..Default::default()
            },
            0.0,
        );
    }

    #[test]
    fn empty_input() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        let runner = ParallelRunner::new(sig).unwrap();
        assert_eq!(runner.run(&[]).unwrap(), Vec::<i32>::new());
    }

    #[test]
    fn empty_input_reports_resolved_workers() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        let runner = ParallelRunner::with_config(
            sig,
            RunnerConfig {
                chunk_size: 64,
                threads: 3,
                strategy: Strategy::default(),
                ..Default::default()
            },
        )
        .unwrap();
        let stats = runner.run_in_place(&mut []).unwrap();
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.chunks, 0);

        let sig: Signature<i32> = "1:1".parse().unwrap();
        let auto = ParallelRunner::new(sig).unwrap();
        let stats = auto.run_in_place(&mut []).unwrap();
        assert_eq!(stats.threads, auto.threads() as u64);
        assert!(stats.threads >= 1);
    }

    #[test]
    fn deterministic_for_integers() {
        let sig: Signature<i64> = "1:3,-3,1".parse().unwrap();
        let input: Vec<i64> = (0..200_000).map(|i| (i % 23) as i64 - 11).collect();
        let runner = ParallelRunner::with_config(
            sig,
            RunnerConfig {
                chunk_size: 2048,
                threads: 8,
                strategy: Strategy::default(),
                ..Default::default()
            },
        )
        .unwrap();
        let a = runner.run(&input).unwrap();
        for _ in 0..5 {
            assert_eq!(runner.run(&input).unwrap(), a);
        }
    }

    #[test]
    fn stats_reflect_the_lookback() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = ParallelRunner::with_config(
            sig,
            RunnerConfig {
                chunk_size: 1024,
                threads: 4,
                strategy: Strategy::default(),
                ..Default::default()
            },
        )
        .unwrap();
        let mut data: Vec<i64> = (0..100_000).map(|i| i as i64 % 7).collect();
        let stats = runner.run_in_place(&mut data).unwrap();
        assert_eq!(stats.chunks, 100_000u64.div_ceil(1024));
        assert!(stats.lookback_hops >= stats.chunks - 1);
        assert_eq!(stats.threads, 4);
    }

    #[test]
    fn phase_timings_are_populated() {
        let sig: Signature<f64> = "0.81,-1.62,0.81:1.6,-0.64".parse().unwrap();
        let mut input: Vec<f64> = (0..200_000)
            .map(|i| ((i % 13) as f64) * 0.1 - 0.6)
            .collect();
        for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
            let runner = ParallelRunner::with_config(
                sig.clone(),
                RunnerConfig {
                    chunk_size: 4096,
                    threads: 4,
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            let stats = runner.run_in_place(&mut input).unwrap();
            assert!(
                stats.solve_nanos > 0,
                "{strategy:?}: local solve must be timed"
            );
            assert!(stats.fir_nanos > 0, "{strategy:?}: FIR stage must be timed");
            assert!(
                stats.correct_nanos > 0,
                "{strategy:?}: correction must be timed"
            );
            assert!(
                stats.busy_nanos() >= stats.solve_nanos,
                "{strategy:?}: total covers the parts"
            );
        }
    }

    #[test]
    fn pure_feedback_skips_the_fir_phase() {
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let runner = ParallelRunner::with_config(
            sig,
            RunnerConfig {
                chunk_size: 1024,
                threads: 2,
                strategy: Strategy::default(),
                ..Default::default()
            },
        )
        .unwrap();
        let mut data: Vec<i64> = (0..50_000).map(|i| (i % 5) as i64).collect();
        let stats = runner.run_in_place(&mut data).unwrap();
        assert!(stats.solve_nanos > 0);
    }

    #[test]
    fn repeated_runs_on_one_runner_stay_correct() {
        // The pool is reused across calls; results must stay identical and
        // correct for differently sized inputs on the same runner.
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let runner = ParallelRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 512,
                threads: 4,
                strategy: Strategy::default(),
                ..Default::default()
            },
        )
        .unwrap();
        for n in [0usize, 1, 511, 512, 513, 10_000, 70_001] {
            let input: Vec<i64> = (0..n).map(|i| (i % 11) as i64 - 5).collect();
            assert_eq!(
                runner.run(&input).unwrap(),
                serial::run(&sig, &input),
                "n={n}"
            );
        }
    }

    #[test]
    fn config_validation() {
        let sig: Signature<i32> = "1:3,-3,1".parse().unwrap();
        assert!(matches!(
            ParallelRunner::with_config(
                sig.clone(),
                RunnerConfig {
                    chunk_size: 2,
                    threads: 1,
                    strategy: Strategy::default(),
                    ..Default::default()
                }
            ),
            Err(EngineError::InvalidChunkSize { .. })
        ));
        assert!(ParallelRunner::with_config(
            sig,
            RunnerConfig {
                chunk_size: 3,
                threads: 1,
                strategy: Strategy::default(),
                ..Default::default()
            }
        )
        .is_ok());
    }

    #[test]
    fn fir_signatures_run_the_map_stage() {
        check::<f64>(
            "0.81,-1.62,0.81:1.6,-0.64",
            30_000,
            RunnerConfig {
                chunk_size: 1024,
                threads: 4,
                strategy: Strategy::default(),
                ..Default::default()
            },
            1e-6,
        );
    }

    #[test]
    fn fir_wider_than_chunk_reaches_across_several_chunks() {
        // p - 1 > m: the boundary stash must reach past the immediately
        // preceding chunk into earlier ones.
        let sig: Signature<i64> = "1,1,1,1,1,1,1:1".parse().unwrap();
        for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
            let input: Vec<i64> = (0..1000).map(|i| (i % 9) as i64 - 4).collect();
            let runner = ParallelRunner::with_config(
                sig.clone(),
                RunnerConfig {
                    chunk_size: 4,
                    threads: 4,
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                runner.run(&input).unwrap(),
                serial::run(&sig, &input),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn fir_in_place_matches_fir_map() {
        let fir = [3i64, -2, 5, 7];
        let input: Vec<i64> = (0..100).map(|i| (i % 7) as i64 - 3).collect();
        let expect = serial::fir_map(&fir, &input);
        for m in [1usize, 3, 8, 33, 100, 200] {
            let mut data = input.clone();
            let num_chunks = data.len().div_ceil(m);
            let boundaries: Vec<Vec<i64>> = (1..num_chunks)
                .map(|c| data[(c * m).saturating_sub(fir.len() - 1)..c * m].to_vec())
                .collect();
            for c in (0..num_chunks).rev() {
                // Process in arbitrary (here reverse) order: the stash must
                // make order irrelevant.
                let start = c * m;
                let end = (start + m).min(input.len());
                let prev: &[i64] = if c == 0 { &[] } else { &boundaries[c - 1] };
                fir_in_place(&fir, prev, start, &mut data[start..end]);
            }
            assert_eq!(data, expect, "chunk size {m}");
        }
    }

    #[test]
    fn two_pass_strategy_matches_serial() {
        for threads in [1usize, 4] {
            for text in ["1:1", "1:2,-1", "1:0,0,1"] {
                check::<i64>(
                    text,
                    77_777,
                    RunnerConfig {
                        chunk_size: 1024,
                        threads,
                        strategy: Strategy::TwoPass,
                        ..Default::default()
                    },
                    0.0,
                );
            }
        }
    }

    #[test]
    fn two_pass_and_lookback_agree_exactly_on_ints() {
        let sig: Signature<i64> = "1:3,-3,1".parse().unwrap();
        let input: Vec<i64> = (0..120_000).map(|i| (i % 17) as i64 - 8).collect();
        let base = RunnerConfig {
            chunk_size: 4096,
            threads: 4,
            strategy: Strategy::default(),
            ..Default::default()
        };
        let a = ParallelRunner::with_config(sig.clone(), base)
            .unwrap()
            .run(&input)
            .unwrap();
        let two = RunnerConfig {
            strategy: Strategy::TwoPass,
            ..base
        };
        let b = ParallelRunner::with_config(sig, two)
            .unwrap()
            .run(&input)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn two_pass_has_no_spin_waits() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = ParallelRunner::with_config(
            sig,
            RunnerConfig {
                chunk_size: 512,
                threads: 8,
                strategy: Strategy::TwoPass,
                ..Default::default()
            },
        )
        .unwrap();
        let mut data: Vec<i64> = (0..50_000).map(|i| i as i64 % 5).collect();
        let stats = runner.run_in_place(&mut data).unwrap();
        assert_eq!(stats.spin_waits, 0);
        assert_eq!(stats.lookback_hops, stats.chunks - 1);
    }

    #[test]
    fn single_thread_equals_multi_thread_for_ints() {
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let input: Vec<i64> = (0..50_000).map(|i| (i % 31) as i64 - 15).collect();
        let one = ParallelRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 4096,
                threads: 1,
                strategy: Strategy::default(),
                ..Default::default()
            },
        )
        .unwrap()
        .run(&input)
        .unwrap();
        let many = ParallelRunner::with_config(
            sig,
            RunnerConfig {
                chunk_size: 4096,
                threads: 8,
                strategy: Strategy::default(),
                ..Default::default()
            },
        )
        .unwrap()
        .run(&input)
        .unwrap();
        assert_eq!(one, many);
    }

    #[test]
    fn pre_cancelled_token_rejects_the_run() {
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let runner = ParallelRunner::new(sig).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let input: Vec<i64> = (0..10_000).map(|i| (i % 7) as i64).collect();
        match runner.run_with_cancel(&input, &token) {
            Err(EngineError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // The runner (and its pool) are unaffected; a fresh token works.
        let out = runner.run_with_cancel(&input, &CancelToken::new()).unwrap();
        assert_eq!(out, serial::run(&"1:2,-1".parse().unwrap(), &input));
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let sig: Signature<i64> = "1:3,-3,1".parse().unwrap();
        let input: Vec<i64> = (0..50_000).map(|i| (i % 13) as i64 - 6).collect();
        for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
            let runner = ParallelRunner::with_config(
                sig.clone(),
                RunnerConfig {
                    chunk_size: 1024,
                    threads: 4,
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            let token = CancelToken::new();
            let got = runner.run_with_cancel(&input, &token).unwrap();
            assert_eq!(got, serial::run(&sig, &input), "{strategy:?}");
        }
    }

    #[test]
    fn expired_deadline_rejects_the_run_for_both_strategies() {
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let input: Vec<i64> = (0..10_000).map(|i| (i % 5) as i64).collect();
        for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
            let runner = ParallelRunner::with_config(
                sig.clone(),
                RunnerConfig {
                    chunk_size: 512,
                    threads: 4,
                    strategy,
                    deadline: Some(Duration::ZERO),
                    ..Default::default()
                },
            )
            .unwrap();
            match runner.run(&input) {
                Err(EngineError::DeadlineExceeded { deadline }) => {
                    assert_eq!(deadline, Duration::ZERO, "{strategy:?}")
                }
                other => panic!("expected DeadlineExceeded ({strategy:?}), got {other:?}"),
            }
        }
    }

    #[test]
    fn generous_deadline_does_not_perturb_results() {
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let input: Vec<i64> = (0..60_000).map(|i| (i % 9) as i64 - 4).collect();
        let runner = ParallelRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 1024,
                threads: 4,
                deadline: Some(Duration::from_secs(120)),
                ..Default::default()
            },
        )
        .unwrap();
        for _ in 0..3 {
            assert_eq!(runner.run(&input).unwrap(), serial::run(&sig, &input));
        }
    }
}
