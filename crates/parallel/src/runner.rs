//! The multithreaded runner: chunked decoupled look-back on real threads.
//!
//! This is the paper's algorithm mapped onto the parallelism we actually
//! have in this reproduction environment — CPU threads. Each worker claims
//! chunks in order from a work channel, solves its chunk locally (serial
//! within a chunk is optimal when there are no intra-chunk lanes), publishes
//! the chunk's *local* carries, derives its predecessor's *global* carries
//! by variable look-back over already-published carries, corrects its chunk
//! with the precomputed n-nacci factors, and publishes its own global
//! carries.
//!
//! Progress argument (same as the GPU kernel's): chunks enter the pipeline
//! in order, every in-flight chunk publishes its local carries *before* any
//! waiting, and the oldest in-flight chunk's predecessor globals always
//! exist — so the look-back chain can always be resolved and the spin waits
//! are bounded by the pipeline depth (the worker count).

use crate::stats::RunStats;
use plr_core::element::Element;
use plr_core::engine::MAX_INPUT_LEN;
use plr_core::error::EngineError;
use plr_core::nacci::{carries_of, CorrectionTable};
use plr_core::serial;
use plr_core::signature::Signature;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// How the runner schedules the carry propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Single pass with decoupled look-back: each worker publishes local
    /// carries, resolves its predecessor's global carries from whatever is
    /// already published, corrects, and publishes — the paper's pipelined
    /// Phase 2 on threads.
    #[default]
    LookbackPipeline,
    /// Two passes with a barrier: parallel local solves, a sequential
    /// `O(chunks·k²)` carry chain on one thread, then parallel correction.
    /// Simpler, no spinning, but touches every chunk's data twice.
    TwoPass,
}

/// Configuration for [`ParallelRunner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Elements per chunk (one chunk is one unit of work). Must be at
    /// least the recurrence order.
    pub chunk_size: usize,
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Carry-propagation strategy.
    pub strategy: Strategy,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig { chunk_size: 1 << 16, threads: 0, strategy: Strategy::default() }
    }
}

/// A multithreaded executor for one signature (factors precomputed once).
///
/// # Examples
///
/// ```
/// use plr_parallel::ParallelRunner;
/// use plr_core::signature::Signature;
///
/// let sig: Signature<i64> = "1 : 2, -1".parse()?;
/// let runner = ParallelRunner::new(sig)?;
/// let y = runner.run(&[1, 1, 1, 1])?;
/// assert_eq!(y, vec![1, 3, 6, 10]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ParallelRunner<T> {
    signature: Signature<T>,
    fir: Vec<T>,
    table: CorrectionTable<T>,
    config: RunnerConfig,
}

/// Per-chunk carry slots, published lock-free through [`OnceLock`].
struct Slot<T> {
    local: OnceLock<Vec<T>>,
    global: OnceLock<Vec<T>>,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot { local: OnceLock::new(), global: OnceLock::new() }
    }
}

impl<T: Element> ParallelRunner<T> {
    /// Creates a runner with the default configuration.
    ///
    /// # Errors
    ///
    /// See [`ParallelRunner::with_config`].
    pub fn new(signature: Signature<T>) -> Result<Self, EngineError> {
        Self::with_config(signature, RunnerConfig::default())
    }

    /// Creates a runner with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidChunkSize`] when the chunk size is
    /// zero or smaller than the recurrence order (a chunk must hold all
    /// `k` published carries).
    pub fn with_config(
        signature: Signature<T>,
        config: RunnerConfig,
    ) -> Result<Self, EngineError> {
        if config.chunk_size == 0 || config.chunk_size < signature.order() {
            return Err(EngineError::InvalidChunkSize { chunk_size: config.chunk_size });
        }
        let (fir, recursive) = signature.split();
        let table = CorrectionTable::generate_with(
            recursive.feedback(),
            config.chunk_size,
            T::IS_FLOAT,
        );
        Ok(ParallelRunner { signature, fir, table, config })
    }

    /// The configured worker count (resolving `0` to the CPU count).
    pub fn threads(&self) -> usize {
        if self.config.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            self.config.threads
        }
    }

    /// The runner's configuration.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// Computes the recurrence over `input`, allocating the output.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InputTooLarge`] beyond 2^30 elements.
    pub fn run(&self, input: &[T]) -> Result<Vec<T>, EngineError> {
        let mut data = input.to_vec();
        self.run_in_place(&mut data)?;
        Ok(data)
    }

    /// Computes the recurrence in place, returning runtime statistics.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InputTooLarge`] beyond 2^30 elements.
    pub fn run_in_place(&self, data: &mut [T]) -> Result<RunStats, EngineError> {
        if data.len() > MAX_INPUT_LEN {
            return Err(EngineError::InputTooLarge { len: data.len(), max: MAX_INPUT_LEN });
        }
        let m = self.config.chunk_size;
        let threads = self.threads().max(1);
        let n = data.len();
        if n == 0 {
            return Ok(RunStats::default());
        }

        // Stage 1: the map operation, parallel over chunks (each chunk
        // reads up to `p` input values across its left boundary, so the
        // mapped values are produced into a fresh buffer).
        if !self.signature.is_pure_feedback() {
            let mapped = self.parallel_fir(data, threads);
            data.copy_from_slice(&mapped);
        }

        if self.config.strategy == Strategy::TwoPass {
            return Ok(self.run_two_pass(data, threads));
        }

        let k = self.signature.order();
        let feedback = self.signature.feedback();
        let num_chunks = n.div_ceil(m);
        let slots: Vec<Slot<T>> = (0..num_chunks).map(|_| Slot::new()).collect();
        let hops = AtomicU64::new(0);
        let spins = AtomicU64::new(0);
        let max_depth = AtomicU64::new(0);

        std::thread::scope(|scope| {
            let (tx, rx) = crossbeam::channel::bounded::<(usize, &mut [T])>(threads);
            let slots = &slots;
            let table = &self.table;
            let hops = &hops;
            let spins = &spins;
            let max_depth = &max_depth;
            for _ in 0..threads {
                let rx = rx.clone();
                scope.spawn(move || {
                    while let Ok((c, chunk)) = rx.recv() {
                        // Local solve, then publish local carries.
                        serial::recursive_in_place(feedback, chunk);
                        let locals = carries_of(chunk, k);
                        slots[c].local.set(locals.clone()).expect("sole producer of local carries");
                        if c == 0 {
                            slots[0]
                                .global
                                .set(locals)
                                .expect("sole producer of chunk 0 globals");
                            continue;
                        }
                        // Variable look-back: walk back to the most recent
                        // published globals, then fix forward through the
                        // published locals.
                        let g = resolve_global(table, slots, c - 1, m, n, hops, spins, max_depth);
                        table.correct_chunk(chunk, &g);
                        let globals = carries_of(chunk, k);
                        // A deeper look-back by a successor may already
                        // have derived (and published) our globals.
                        let _ = slots[c].global.set(globals);
                    }
                });
            }
            drop(rx);
            for item in data.chunks_mut(m).enumerate() {
                tx.send(item).expect("workers outlive the feed");
            }
            drop(tx);
        });

        Ok(RunStats {
            chunks: num_chunks as u64,
            lookback_hops: hops.load(Ordering::Relaxed),
            spin_waits: spins.load(Ordering::Relaxed),
            max_lookback_depth: max_depth.load(Ordering::Relaxed),
            threads: threads as u64,
        })
    }

    /// The two-pass strategy: parallel local solves, one sequential carry
    /// chain, parallel correction (the dependency structure of
    /// [`plr_core::phase2::propagate_decoupled`] on real threads).
    fn run_two_pass(&self, data: &mut [T], threads: usize) -> RunStats {
        let m = self.config.chunk_size;
        let k = self.signature.order();
        let feedback = self.signature.feedback();
        let n = data.len();
        let num_chunks = n.div_ceil(m);

        // Pass A: local solves in parallel via a work channel.
        std::thread::scope(|scope| {
            let (tx, rx) = crossbeam::channel::bounded::<&mut [T]>(threads);
            for _ in 0..threads {
                let rx = rx.clone();
                scope.spawn(move || {
                    while let Ok(chunk) = rx.recv() {
                        serial::recursive_in_place(feedback, chunk);
                    }
                });
            }
            drop(rx);
            for chunk in data.chunks_mut(m) {
                tx.send(chunk).expect("workers outlive the feed");
            }
            drop(tx);
        });

        // Sequential chain: globals of chunk c from globals of c-1.
        let mut hops = 0u64;
        let mut globals: Vec<Vec<T>> = Vec::with_capacity(num_chunks);
        globals.push(carries_of(&data[..m.min(n)], k));
        for c in 1..num_chunks {
            let start = c * m;
            let end = (start + m).min(n);
            let locals = carries_of(&data[start..end], k);
            globals.push(self.table.fixup_carries(&globals[c - 1], &locals, end - start));
            hops += 1;
        }

        // Pass B: correct every chunk with its predecessor's globals, in
        // parallel.
        std::thread::scope(|scope| {
            let (tx, rx) = crossbeam::channel::bounded::<(usize, &mut [T])>(threads);
            let globals = &globals;
            let table = &self.table;
            for _ in 0..threads {
                let rx = rx.clone();
                scope.spawn(move || {
                    while let Ok((c, chunk)) = rx.recv() {
                        if c > 0 {
                            table.correct_chunk(chunk, &globals[c - 1]);
                        }
                    }
                });
            }
            drop(rx);
            for item in data.chunks_mut(m).enumerate() {
                tx.send(item).expect("workers outlive the feed");
            }
            drop(tx);
        });

        RunStats {
            chunks: num_chunks as u64,
            lookback_hops: hops,
            spin_waits: 0,
            max_lookback_depth: 1,
            threads: threads as u64,
        }
    }

    /// Parallel FIR map over chunks of the (immutable) input.
    fn parallel_fir(&self, input: &[T], threads: usize) -> Vec<T> {
        let n = input.len();
        let chunk = n.div_ceil(threads).max(1);
        let mut out = vec![T::zero(); n];
        std::thread::scope(|scope| {
            for (idx, slice) in out.chunks_mut(chunk).enumerate() {
                let fir = &self.fir;
                scope.spawn(move || {
                    let start = idx * chunk;
                    for (off, v) in slice.iter_mut().enumerate() {
                        let i = start + off;
                        let mut acc = T::zero();
                        for (j, &a) in fir.iter().enumerate() {
                            if j > i {
                                break;
                            }
                            acc = acc.add(a.mul(input[i - j]));
                        }
                        *v = acc;
                    }
                });
            }
        });
        out
    }
}

/// Derives the global carries of chunk `j` from published state: walks back
/// to the nearest chunk with published globals (spinning on chunk 0's if
/// necessary), then fixes forward through published local carries.
#[allow(clippy::too_many_arguments)]
fn resolve_global<T: Element>(
    table: &CorrectionTable<T>,
    slots: &[Slot<T>],
    j: usize,
    m: usize,
    n: usize,
    hops: &AtomicU64,
    spins: &AtomicU64,
    max_depth: &AtomicU64,
) -> Vec<T> {
    // Find the deepest published globals at or before j.
    let mut start = j;
    loop {
        if slots[start].global.get().is_some() {
            break;
        }
        if start == 0 {
            // Chunk 0 publishes unconditionally right after its local
            // solve; spin until it lands.
            wait_for(&slots[0].global, spins);
            break;
        }
        start -= 1;
    }
    let mut g = slots[start].global.get().expect("checked or awaited above").clone();
    hops.fetch_add(1, Ordering::Relaxed);
    max_depth.fetch_max((j - start + 1) as u64, Ordering::Relaxed);
    for h in start + 1..=j {
        let locals = wait_for(&slots[h].local, spins);
        let chunk_len = m.min(n - h * m);
        g = table.fixup_carries(&g, locals, chunk_len);
        hops.fetch_add(1, Ordering::Relaxed);
    }
    g
}

/// Spins (with yields) until a carry set is published.
fn wait_for<'a, T>(cell: &'a OnceLock<Vec<T>>, spins: &AtomicU64) -> &'a Vec<T> {
    let mut tries = 0u64;
    loop {
        if let Some(v) = cell.get() {
            if tries > 0 {
                spins.fetch_add(tries, Ordering::Relaxed);
            }
            return v;
        }
        tries += 1;
        if tries % 64 == 0 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::validate::validate;

    fn check<T: Element>(sig_text: &str, n: usize, config: RunnerConfig, tol: f64)
    where
        Signature<T>: std::str::FromStr,
        <Signature<T> as std::str::FromStr>::Err: std::fmt::Debug,
    {
        let sig: Signature<T> = sig_text.parse().unwrap();
        let input: Vec<T> = (0..n).map(|i| T::from_i32(((i * 29) % 19) as i32 - 9)).collect();
        let runner = ParallelRunner::with_config(sig.clone(), config).unwrap();
        let got = runner.run(&input).unwrap();
        let expect = serial::run(&sig, &input);
        validate(&expect, &got, tol).unwrap_or_else(|e| panic!("{sig_text} {config:?}: {e}"));
    }

    #[test]
    fn integer_catalog_exact_across_thread_counts() {
        for threads in [1, 2, 4, 8] {
            for text in ["1:1", "1:0,1", "1:0,0,1", "1:2,-1", "1:3,-3,1"] {
                check::<i64>(
                    text,
                    100_000,
                    RunnerConfig { chunk_size: 1 << 10, threads, strategy: Strategy::default() },
                    0.0,
                );
            }
        }
    }

    #[test]
    fn float_filters_within_tolerance() {
        for text in ["0.2:0.8", "0.04:1.6,-0.64", "0.9,-0.9:0.8"] {
            check::<f32>(text, 50_000, RunnerConfig { chunk_size: 4096, threads: 4, strategy: Strategy::default() }, 1e-3);
        }
    }

    #[test]
    fn ragged_and_tiny_inputs() {
        check::<i64>("1:2,-1", 1, RunnerConfig { chunk_size: 64, threads: 4, strategy: Strategy::default() }, 0.0);
        check::<i64>("1:2,-1", 63, RunnerConfig { chunk_size: 64, threads: 4, strategy: Strategy::default() }, 0.0);
        check::<i64>("1:2,-1", 65, RunnerConfig { chunk_size: 64, threads: 4, strategy: Strategy::default() }, 0.0);
        check::<i64>("1:2,-1", 6400 + 17, RunnerConfig { chunk_size: 64, threads: 4, strategy: Strategy::default() }, 0.0);
    }

    #[test]
    fn empty_input() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        let runner = ParallelRunner::new(sig).unwrap();
        assert_eq!(runner.run(&[]).unwrap(), Vec::<i32>::new());
    }

    #[test]
    fn deterministic_for_integers() {
        let sig: Signature<i64> = "1:3,-3,1".parse().unwrap();
        let input: Vec<i64> = (0..200_000).map(|i| (i % 23) as i64 - 11).collect();
        let runner = ParallelRunner::with_config(
            sig,
            RunnerConfig { chunk_size: 2048, threads: 8, strategy: Strategy::default() },
        )
        .unwrap();
        let a = runner.run(&input).unwrap();
        for _ in 0..5 {
            assert_eq!(runner.run(&input).unwrap(), a);
        }
    }

    #[test]
    fn stats_reflect_the_lookback() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = ParallelRunner::with_config(
            sig,
            RunnerConfig { chunk_size: 1024, threads: 4, strategy: Strategy::default() },
        )
        .unwrap();
        let mut data: Vec<i64> = (0..100_000).map(|i| i as i64 % 7).collect();
        let stats = runner.run_in_place(&mut data).unwrap();
        assert_eq!(stats.chunks, 100_000u64.div_ceil(1024));
        assert!(stats.lookback_hops >= stats.chunks - 1);
        assert_eq!(stats.threads, 4);
    }

    #[test]
    fn config_validation() {
        let sig: Signature<i32> = "1:3,-3,1".parse().unwrap();
        assert!(matches!(
            ParallelRunner::with_config(sig.clone(), RunnerConfig { chunk_size: 2, threads: 1, strategy: Strategy::default() }),
            Err(EngineError::InvalidChunkSize { .. })
        ));
        assert!(ParallelRunner::with_config(sig, RunnerConfig { chunk_size: 3, threads: 1, strategy: Strategy::default() })
            .is_ok());
    }

    #[test]
    fn fir_signatures_run_the_map_stage() {
        check::<f64>(
            "0.81,-1.62,0.81:1.6,-0.64",
            30_000,
            RunnerConfig { chunk_size: 1024, threads: 4, strategy: Strategy::default() },
            1e-6,
        );
    }

    #[test]
    fn two_pass_strategy_matches_serial() {
        for threads in [1usize, 4] {
            for text in ["1:1", "1:2,-1", "1:0,0,1"] {
                check::<i64>(
                    text,
                    77_777,
                    RunnerConfig {
                        chunk_size: 1024,
                        threads,
                        strategy: Strategy::TwoPass,
                    },
                    0.0,
                );
            }
        }
    }

    #[test]
    fn two_pass_and_lookback_agree_exactly_on_ints() {
        let sig: Signature<i64> = "1:3,-3,1".parse().unwrap();
        let input: Vec<i64> = (0..120_000).map(|i| (i % 17) as i64 - 8).collect();
        let base = RunnerConfig { chunk_size: 4096, threads: 4, strategy: Strategy::default() };
        let a = ParallelRunner::with_config(sig.clone(), base).unwrap().run(&input).unwrap();
        let two = RunnerConfig { strategy: Strategy::TwoPass, ..base };
        let b = ParallelRunner::with_config(sig, two).unwrap().run(&input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn two_pass_has_no_spin_waits() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = ParallelRunner::with_config(
            sig,
            RunnerConfig { chunk_size: 512, threads: 8, strategy: Strategy::TwoPass },
        )
        .unwrap();
        let mut data: Vec<i64> = (0..50_000).map(|i| i as i64 % 5).collect();
        let stats = runner.run_in_place(&mut data).unwrap();
        assert_eq!(stats.spin_waits, 0);
        assert_eq!(stats.lookback_hops, stats.chunks - 1);
    }

    #[test]
    fn single_thread_equals_multi_thread_for_ints() {
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let input: Vec<i64> = (0..50_000).map(|i| (i % 31) as i64 - 15).collect();
        let one = ParallelRunner::with_config(
            sig.clone(),
            RunnerConfig { chunk_size: 4096, threads: 1, strategy: Strategy::default() },
        )
        .unwrap()
        .run(&input)
        .unwrap();
        let many = ParallelRunner::with_config(
            sig,
            RunnerConfig { chunk_size: 4096, threads: 8, strategy: Strategy::default() },
        )
        .unwrap()
        .run(&input)
        .unwrap();
        assert_eq!(one, many);
    }
}
