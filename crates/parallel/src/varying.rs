//! Multithreaded execution of time-varying recurrences.
//!
//! [`VaryingRunner`] maps the matrix-carry lowering
//! ([`plr_core::varying`]) onto the same chunked machinery the
//! constant-coefficient [`ParallelRunner`](crate::ParallelRunner) uses:
//! workers claim chunks from an atomic ticket counter, solve them locally
//! from zero state, and stitch the chunks together through per-chunk
//! *affine carry maps* `g ↦ M_c·g + local_c` instead of n-nacci
//! correction factors. The transition matrices `M_c` depend only on the
//! coefficients, so they are precomputed once per
//! [`VaryingPlan`] and shared by every run.
//!
//! Both carry strategies carry over:
//!
//! * [`Strategy::LookbackPipeline`] — single pass; each worker publishes
//!   its chunk's local state, resolves its predecessor's global state by
//!   variable look-back over published carries, corrects its chunk with a
//!   forward companion pass, and publishes its own global state. Workers
//!   additionally *fuse* opportunistically: when a chunk's predecessor
//!   global is already published at claim time (always true for chunk 0),
//!   the chunk is solved directly from real history — no local publish,
//!   no correction pass, no matrix math. On one thread every chunk fuses
//!   and the run degenerates to the serial sweep, which is exactly the
//!   work-optimal behavior. Float elements fuse only on a width-1 pool:
//!   fused and corrected solves round differently, and fusing on a race
//!   would make float outputs depend on scheduler timing.
//! * [`Strategy::TwoPass`] — parallel local solves, one sequential
//!   `O(chunks·k²)` affine-map chain, parallel correction.
//!
//! The look-back resolver must tolerate fused chunks, which never publish
//! local state: it waits on *either* carry cell of a chunk and restarts
//! the walk from a global whenever one lands first.
//!
//! Cancel tokens, deadlines, `check_finite`, fault injection, and the
//! batch/stream layers ([`VaryingRunner::run_rows`],
//! [`VaryingRunner::stream`]) all behave exactly as they do for constant
//! signatures; the differential test suite holds the two executors to the
//! same observable semantics.

use crate::batch::RowTask;
use crate::pool::{
    resolve_threads, AbortSignal, CancelToken, RunControl, RunError, SendPtr, Tickets, WorkerPanic,
    WorkerPool,
};
use crate::runner::{all_finite, timed, PhaseClocks, PhaseTally, RunnerConfig, Slot, Strategy};
use crate::stats::RunStats;
use crate::stream::RowStream;
use plr_core::element::Element;
use plr_core::error::EngineError;
use plr_core::plan::PlanKind;
use plr_core::varying::{advance_state, VaryingPlan, VaryingSignature};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A multithreaded executor for one time-varying signature: transition
/// matrices and constant-chunk kernels precomputed once, worker threads
/// spawned once and reused across runs.
///
/// Unlike [`ParallelRunner`](crate::ParallelRunner), the signature binds
/// the *input length* (coefficients are positional), so every run must
/// supply exactly `plan.len()` elements per sequence.
///
/// # Examples
///
/// ```
/// use plr_parallel::VaryingRunner;
/// use plr_core::varying::VaryingSignature;
///
/// // y[i] = x[i] + a[i]·y[i-1] with a = [2, 0, 3, 1].
/// let sig = VaryingSignature::first_order(vec![2i64, 0, 3, 1])?;
/// let runner = VaryingRunner::new(sig)?;
/// let y = runner.run(&[1, 1, 1, 1])?;
/// assert_eq!(y, vec![1, 1, 4, 5]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct VaryingRunner<T> {
    /// The precomputed lowering: per-chunk transition matrices and
    /// deduplicated constant-row kernels.
    plan: Arc<VaryingPlan<T>>,
    config: RunnerConfig,
    /// The persistent pool, created on first use.
    pool: OnceLock<Arc<WorkerPool>>,
}

impl<T: Element> VaryingRunner<T> {
    /// Creates a runner with the default configuration.
    ///
    /// # Errors
    ///
    /// See [`VaryingRunner::with_config`].
    pub fn new(signature: VaryingSignature<T>) -> Result<Self, EngineError> {
        Self::with_config(signature, RunnerConfig::default())
    }

    /// Creates a runner with an explicit configuration. The
    /// [`RunnerConfig::plan`] field is ignored — varying signatures have
    /// exactly one lowering and never consult the constant-coefficient
    /// correction-plan cache.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidChunkSize`] when the chunk size is
    /// zero or smaller than the recurrence order, and
    /// [`EngineError::InputTooLarge`] when the signature binds more than
    /// `2^30` elements.
    pub fn with_config(
        signature: VaryingSignature<T>,
        config: RunnerConfig,
    ) -> Result<Self, EngineError> {
        let plan = VaryingPlan::build(signature, config.chunk_size)?;
        Ok(VaryingRunner {
            plan: Arc::new(plan),
            config,
            pool: OnceLock::new(),
        })
    }

    /// The configured worker count (resolving `0` to the CPU count).
    pub fn threads(&self) -> usize {
        resolve_threads(self.config.threads)
    }

    /// The runner's configuration.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// The time-varying signature this runner executes.
    pub fn signature(&self) -> &VaryingSignature<T> {
        self.plan.signature()
    }

    /// The precomputed matrix-carry plan (shared with every run and with
    /// rows dispatched through [`VaryingRunner::run_rows`] /
    /// [`VaryingRunner::stream`]).
    pub fn plan(&self) -> &Arc<VaryingPlan<T>> {
        &self.plan
    }

    /// The persistent pool, spawning it on first use.
    fn pool(&self) -> &Arc<WorkerPool> {
        self.pool
            .get_or_init(|| Arc::new(WorkerPool::new(self.threads())))
    }

    /// Computes the recurrence over `input`, allocating the output.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::LengthMismatch`] when `input` does not have
    /// the signature's bound length, [`EngineError::WorkerPanicked`] when
    /// a worker (or the calling thread) panicked mid-run,
    /// [`EngineError::NonFiniteCarry`] when [`RunnerConfig::check_finite`]
    /// is on and a chunk produced a NaN or infinite carry, and
    /// [`EngineError::DeadlineExceeded`] when [`RunnerConfig::deadline`]
    /// is set and the run outlived it. On error the pool survives and the
    /// runner stays usable.
    pub fn run(&self, input: &[T]) -> Result<Vec<T>, EngineError> {
        let mut data = input.to_vec();
        self.run_in_place(&mut data)?;
        Ok(data)
    }

    /// Like [`VaryingRunner::run`], but observing a caller-held
    /// [`CancelToken`] — same semantics as
    /// [`ParallelRunner::run_with_cancel`](crate::ParallelRunner::run_with_cancel).
    ///
    /// # Errors
    ///
    /// [`EngineError::Cancelled`] on cancellation, plus everything
    /// [`VaryingRunner::run`] can return.
    pub fn run_with_cancel(
        &self,
        input: &[T],
        cancel: &CancelToken,
    ) -> Result<Vec<T>, EngineError> {
        let mut data = input.to_vec();
        self.run_in_place_with_cancel(&mut data, cancel)?;
        Ok(data)
    }

    /// Computes the recurrence in place, returning runtime statistics.
    ///
    /// # Errors
    ///
    /// See [`VaryingRunner::run`]; on error `data` is left partially
    /// processed.
    pub fn run_in_place(&self, data: &mut [T]) -> Result<RunStats, EngineError> {
        self.execute(data, None)
    }

    /// In-place variant of [`VaryingRunner::run_with_cancel`].
    ///
    /// # Errors
    ///
    /// See [`VaryingRunner::run_with_cancel`]; on error `data` is left
    /// partially processed.
    pub fn run_in_place_with_cancel(
        &self,
        data: &mut [T],
        cancel: &CancelToken,
    ) -> Result<RunStats, EngineError> {
        self.execute(data, Some(cancel))
    }

    /// Shared entry point: validates the length, builds the run's
    /// [`RunControl`], and dispatches on the strategy.
    fn execute(
        &self,
        data: &mut [T],
        cancel: Option<&CancelToken>,
    ) -> Result<RunStats, EngineError> {
        if data.len() != self.plan.len() {
            return Err(EngineError::LengthMismatch {
                expected: self.plan.len(),
                got: data.len(),
            });
        }
        if data.is_empty() {
            return Ok(RunStats {
                threads: self.threads() as u64,
                plan_kind: PlanKind::MatrixCarry,
                kernel: self.plan.aggregate_kernel_kind(),
                correction_taps: self.plan.order() as u64,
                ..RunStats::default()
            });
        }
        let mut ctl = RunControl::new();
        if let Some(token) = cancel {
            ctl = ctl.with_cancel(token);
        }
        if let Some(budget) = self.config.deadline {
            ctl = ctl.with_deadline(budget);
        }
        let pool = self.pool();
        match self.config.strategy {
            Strategy::LookbackPipeline => self.run_lookback(data, pool, &ctl),
            Strategy::TwoPass => self.run_two_pass(data, pool, &ctl),
        }
    }

    /// Seeds the stats every strategy shares: the varying path has no FIR
    /// stage, never touches the correction-plan cache, and reports the
    /// plan's kernel summary ([`KernelKind::Mixed`] when constant-row
    /// kernel chunks and varying scalar chunks coexist).
    fn base_stats(&self, pool: &WorkerPool, num_chunks: usize) -> RunStats {
        RunStats {
            rows: 1,
            chunks: num_chunks as u64,
            threads: pool.width() as u64,
            plan_kind: PlanKind::MatrixCarry,
            kernel: self.plan.aggregate_kernel_kind(),
            correction_taps: self.plan.order() as u64,
            ..RunStats::default()
        }
    }

    /// The single-pass decoupled look-back pipeline with opportunistic
    /// fusion.
    fn run_lookback(
        &self,
        data: &mut [T],
        pool: &WorkerPool,
        ctl: &RunControl,
    ) -> Result<RunStats, EngineError> {
        let plan = &self.plan;
        let m = plan.chunk_size();
        let n = data.len();
        let k = plan.order();
        let num_chunks = plan.num_chunks();
        let check_finite = self.config.check_finite && T::IS_FLOAT;

        let slots: Vec<Slot<T>> = (0..num_chunks).map(|_| Slot::new()).collect();
        let hops = AtomicU64::new(0);
        let spins = AtomicU64::new(0);
        let max_depth = AtomicU64::new(0);
        let fused = AtomicU64::new(0);
        let aborts = AtomicU64::new(0);
        let clocks = PhaseClocks::default();
        let failure: OnceLock<EngineError> = OnceLock::new();
        let tickets = Tickets::new(num_chunks);
        let base = SendPtr::new(data.as_mut_ptr());
        let recovered_before = pool.recovered_workers();

        let outcome = pool.run_ctl(ctl, |_worker, abort| {
            let mut tally = PhaseTally::default();
            while let Some(c) = tickets.claim() {
                if abort.is_aborted() {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let start = c * m;
                let len = m.min(n - start);
                // SAFETY: tickets are unique, so chunk `c` is exclusively
                // ours; `base` outlives `pool.run_ctl` (it blocks until
                // every worker finishes, even when one of them panics).
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), len) };
                // Fusion probe: chunk 0 always starts from real (zero)
                // history; later chunks fuse whenever their predecessor's
                // global state is already published at claim time. Float
                // chunks only fuse on a width-1 pool (where every chunk
                // fuses, deterministically): the fused direct solve rounds
                // differently from local-solve-plus-correction, and letting
                // the race decide would make float results depend on
                // scheduling timing. Integer arithmetic is exact either
                // way, so integers fuse freely.
                let fusable = c == 0 || !T::IS_FLOAT || pool.width() == 1;
                let prev: Option<Vec<T>> = if c == 0 {
                    Some(vec![T::zero(); k])
                } else if fusable {
                    slots[c - 1].global.get().cloned()
                } else {
                    None
                };
                #[cfg(feature = "fault-inject")]
                crate::fault::check(crate::fault::FaultSite::Solve, _worker, c, Some(abort));
                if let Some(state) = prev {
                    // Fused: solve with real history; the result is global
                    // immediately — no local publish, no correction.
                    let out = timed(&mut tally.solve, || {
                        plan.solve_chunk(c, Some(&state), chunk, &mut || !abort.is_aborted())
                    });
                    tally.slices += out.slices;
                    if !out.completed {
                        aborts.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    if check_finite && !all_finite(&out.state) {
                        let _ = failure.set(EngineError::NonFiniteCarry { chunk: c });
                        abort.trigger();
                        aborts.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    fused.fetch_add(1, Ordering::Relaxed);
                    slots[c]
                        .global
                        .set(out.state)
                        .expect("sole producer of fused globals");
                    continue;
                }
                // Decoupled: zero-state local solve, publish local state.
                let out = timed(&mut tally.solve, || {
                    plan.solve_chunk(c, None, chunk, &mut || !abort.is_aborted())
                });
                tally.slices += out.slices;
                if !out.completed {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                if check_finite && !all_finite(&out.state) {
                    let _ = failure.set(EngineError::NonFiniteCarry { chunk: c });
                    abort.trigger();
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                slots[c]
                    .local
                    .set(out.state)
                    .expect("sole producer of local state");
                #[cfg(feature = "fault-inject")]
                crate::fault::check(crate::fault::FaultSite::Lookback, _worker, c, Some(abort));
                // Variable look-back over published carries (fused chunks
                // publish globals only; the resolver copes).
                let Some(g) = timed(&mut tally.lookback, || {
                    resolve_state(plan, &slots, c - 1, &hops, &spins, &max_depth, abort)
                }) else {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                };
                timed(&mut tally.correct, || plan.correct_chunk(c, &g, chunk));
                let globals = advance_state(&g, chunk, k);
                if check_finite && !all_finite(&globals) {
                    let _ = failure.set(EngineError::NonFiniteCarry { chunk: c });
                    abort.trigger();
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let _ = slots[c].global.set(globals);
            }
            tally.flush(&clocks);
        });

        outcome.map_err(RunError::into_engine_error)?;
        if let Some(e) = failure.into_inner() {
            return Err(e);
        }
        Ok(RunStats {
            lookback_hops: hops.load(Ordering::Relaxed),
            spin_waits: spins.load(Ordering::Relaxed),
            max_lookback_depth: max_depth.load(Ordering::Relaxed),
            aborts: aborts.load(Ordering::Relaxed),
            workers_recovered: pool.recovered_workers() - recovered_before,
            fused_chunks: fused.load(Ordering::Relaxed),
            solve_nanos: clocks.solve.load(Ordering::Relaxed),
            lookback_nanos: clocks.lookback.load(Ordering::Relaxed),
            correct_nanos: clocks.correct.load(Ordering::Relaxed),
            solve_slices: clocks.slices.load(Ordering::Relaxed),
            ..self.base_stats(pool, num_chunks)
        })
    }

    /// The two-pass strategy: parallel local solves, one sequential
    /// affine-map chain, parallel correction.
    fn run_two_pass(
        &self,
        data: &mut [T],
        pool: &WorkerPool,
        ctl: &RunControl,
    ) -> Result<RunStats, EngineError> {
        let plan = &self.plan;
        let m = plan.chunk_size();
        let n = data.len();
        let num_chunks = plan.num_chunks();
        let check_finite = self.config.check_finite && T::IS_FLOAT;
        let clocks = PhaseClocks::default();
        let aborts = AtomicU64::new(0);
        let recovered_before = pool.recovered_workers();

        // Pass A: zero-state local solves in parallel; each chunk's local
        // carry state lands in its slot for the chain to consume.
        let locals: Vec<OnceLock<Vec<T>>> = (0..num_chunks).map(|_| OnceLock::new()).collect();
        let failure: OnceLock<EngineError> = OnceLock::new();
        let tickets = Tickets::new(num_chunks);
        let base = SendPtr::new(data.as_mut_ptr());
        pool.run_ctl(ctl, |_worker, abort| {
            let mut tally = PhaseTally::default();
            while let Some(c) = tickets.claim() {
                if abort.is_aborted() {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let start = c * m;
                let len = m.min(n - start);
                // SAFETY: unique tickets make the chunks disjoint.
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), len) };
                #[cfg(feature = "fault-inject")]
                crate::fault::check(crate::fault::FaultSite::Solve, _worker, c, Some(abort));
                let out = timed(&mut tally.solve, || {
                    plan.solve_chunk(c, None, chunk, &mut || !abort.is_aborted())
                });
                tally.slices += out.slices;
                if !out.completed {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                if check_finite && !all_finite(&out.state) {
                    let _ = failure.set(EngineError::NonFiniteCarry { chunk: c });
                    abort.trigger();
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let _ = locals[c].set(out.state);
            }
            tally.flush(&clocks);
        })
        .map_err(RunError::into_engine_error)?;
        if let Some(e) = failure.into_inner() {
            return Err(e);
        }

        // Sequential chain: global state of chunk c from chunk c-1 through
        // the precomputed affine map `g ↦ M_c·g + local_c`. Runs outside
        // the pool, so it gets its own unwind guard (mirrors the constant
        // runner's two-pass chain).
        let chain_start = Instant::now();
        let chain = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<Vec<T>>, EngineError> {
            let mut globals: Vec<Vec<T>> = Vec::with_capacity(num_chunks);
            globals.push(
                locals[0]
                    .get()
                    .expect("pass A completed every chunk")
                    .clone(),
            );
            for c in 1..num_chunks {
                // The chain runs outside the pool, so the watchdog cannot
                // see it; poll the control directly instead.
                ctl.status().map_err(RunError::into_engine_error)?;
                #[cfg(feature = "fault-inject")]
                crate::fault::check(crate::fault::FaultSite::Lookback, 0, c, None);
                let local = locals[c].get().expect("pass A completed every chunk");
                let g = plan.fixup_state(c, &globals[c - 1], local);
                if check_finite && !all_finite(&g) {
                    return Err(EngineError::NonFiniteCarry { chunk: c });
                }
                globals.push(g);
            }
            Ok(globals)
        }));
        let globals = match chain {
            Ok(Ok(v)) => v,
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                return Err(WorkerPanic::from_payload(0, payload.as_ref()).into_engine_error())
            }
        };
        let lookback_nanos = chain_start.elapsed().as_nanos() as u64;

        // Pass B: correct every chunk with its predecessor's global state,
        // in parallel (chunk 0 is already global).
        let tickets = Tickets::new(num_chunks.saturating_sub(1));
        let base = SendPtr::new(data.as_mut_ptr());
        let globals = &globals;
        pool.run_ctl(ctl, |_worker, abort| {
            let mut tally = PhaseTally::default();
            while let Some(t) = tickets.claim() {
                if abort.is_aborted() {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let c = t + 1;
                let start = c * m;
                let len = m.min(n - start);
                // SAFETY: unique tickets make the chunks disjoint.
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), len) };
                timed(&mut tally.correct, || {
                    plan.correct_chunk(c, &globals[c - 1], chunk)
                });
            }
            tally.flush(&clocks);
        })
        .map_err(RunError::into_engine_error)?;

        Ok(RunStats {
            lookback_hops: num_chunks.saturating_sub(1) as u64,
            max_lookback_depth: 1,
            aborts: aborts.load(Ordering::Relaxed),
            workers_recovered: pool.recovered_workers() - recovered_before,
            solve_nanos: clocks.solve.load(Ordering::Relaxed),
            lookback_nanos,
            correct_nanos: clocks.correct.load(Ordering::Relaxed),
            solve_slices: clocks.slices.load(Ordering::Relaxed),
            ..self.base_stats(pool, num_chunks)
        })
    }

    /// Applies the recurrence to each row of a row-major matrix in place:
    /// every row is an independent sequence under the same time-varying
    /// signature (so `width` must equal the signature's bound length).
    /// Rows are distributed whole across the pool through the same
    /// [`RowTask`] dispatch the constant batch runner and the streaming
    /// layer use.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnsupportedSignature`] when `width == 0` or
    /// does not divide the data length, [`EngineError::LengthMismatch`]
    /// when `width` is not the signature's bound length, and
    /// [`EngineError::WorkerPanicked`] when a worker panicked mid-run —
    /// the pool survives and the runner stays usable, but `data` is left
    /// partially processed.
    pub fn run_rows(&self, data: &mut [T], width: usize) -> Result<RunStats, EngineError> {
        self.run_rows_ctl(data, width, None)
    }

    /// Like [`VaryingRunner::run_rows`], but observing a caller-held
    /// [`CancelToken`] (cancelling aborts mid-row; completed rows keep
    /// their results).
    ///
    /// # Errors
    ///
    /// [`EngineError::Cancelled`] on cancellation, plus everything
    /// [`VaryingRunner::run_rows`] can return.
    pub fn run_rows_with_cancel(
        &self,
        data: &mut [T],
        width: usize,
        cancel: &CancelToken,
    ) -> Result<RunStats, EngineError> {
        self.run_rows_ctl(data, width, Some(cancel))
    }

    fn run_rows_ctl(
        &self,
        data: &mut [T],
        width: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<RunStats, EngineError> {
        if width == 0 || !data.len().is_multiple_of(width) {
            return Err(EngineError::UnsupportedSignature {
                reason: format!(
                    "row width {width} does not divide the data length {}",
                    data.len()
                ),
            });
        }
        if width != self.plan.len() {
            return Err(EngineError::LengthMismatch {
                expected: self.plan.len(),
                got: width,
            });
        }
        let rows = data.len() / width;
        let pool = self.pool();
        let mut ctl = RunControl::new();
        if let Some(token) = cancel {
            ctl = ctl.with_cancel(token);
        }
        if let Some(budget) = self.config.deadline {
            ctl = ctl.with_deadline(budget);
        }
        let task = RowTask::varying(Arc::clone(&self.plan));
        let solve_nanos = AtomicU64::new(0);
        let solve_slices = AtomicU64::new(0);
        let aborts = AtomicU64::new(0);
        let recovered_before = pool.recovered_workers();
        let tickets = Tickets::new(rows);
        let base = SendPtr::new(data.as_mut_ptr());
        pool.run_ctl(&ctl, |worker, abort| {
            let (mut solve_ns, mut slices) = (0u64, 0u64);
            while let Some(r) = tickets.claim() {
                if abort.is_aborted() {
                    aborts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                // SAFETY: unique tickets make the rows disjoint; `data`
                // outlives the blocking `pool.run_ctl` call.
                let row =
                    unsafe { std::slice::from_raw_parts_mut(base.ptr().add(r * width), width) };
                let (_, s, sl) = task.apply(row, worker, r, Some(abort));
                solve_ns += s;
                slices += sl;
            }
            solve_nanos.fetch_add(solve_ns, Ordering::Relaxed);
            solve_slices.fetch_add(slices, Ordering::Relaxed);
        })
        .map_err(RunError::into_engine_error)?;
        Ok(RunStats {
            rows: rows as u64,
            chunks: (rows * self.plan.num_chunks()) as u64,
            aborts: aborts.load(Ordering::Relaxed),
            workers_recovered: pool.recovered_workers() - recovered_before,
            solve_nanos: solve_nanos.load(Ordering::Relaxed),
            solve_slices: solve_slices.load(Ordering::Relaxed),
            ..self.base_stats(pool, self.plan.num_chunks())
        })
    }

    /// Opens a streaming submission channel for independent rows under
    /// this time-varying signature — the exact machinery of
    /// [`BatchRunner::stream`](crate::BatchRunner::stream) (backpressure
    /// window, per-row handles, cancel/deadline semantics), dispatching
    /// each row through [`RowTask::varying`]. Every pushed row must have
    /// the signature's bound length; other lengths resolve that row's
    /// handle to [`EngineError::WorkerPanicked`].
    pub fn stream(&self) -> RowStream<T> {
        self.stream_with_window(2 * self.threads().max(1))
    }

    /// Like [`VaryingRunner::stream`] with an explicit in-flight window
    /// (clamped to at least 1).
    pub fn stream_with_window(&self, window: usize) -> RowStream<T> {
        RowStream::launch(
            Arc::clone(self.pool()),
            RowTask::varying(Arc::clone(&self.plan)),
            window.max(1),
        )
    }
}

/// Derives the global carry state of chunk `j` from published state: walks
/// back to the nearest chunk with published globals (chunk 0 publishes
/// unconditionally), then fixes forward through the per-chunk affine maps.
///
/// Fused chunks never publish local state — only their global — so the
/// forward walk waits on *either* cell of each chunk: when a global lands
/// first (the chunk fused, or its owner finished correcting), the walk
/// restarts from that deeper global instead of composing through a local.
///
/// Returns `None` when the run was aborted while waiting on carries that
/// will never be published.
fn resolve_state<T: Element>(
    plan: &VaryingPlan<T>,
    slots: &[Slot<T>],
    j: usize,
    hops: &AtomicU64,
    spins: &AtomicU64,
    max_depth: &AtomicU64,
    abort: &AbortSignal,
) -> Option<Vec<T>> {
    // Find the deepest published globals at or before j.
    let mut start = j;
    loop {
        if slots[start].global.get().is_some() {
            break;
        }
        if start == 0 {
            // Chunk 0 always fuses (zero history) and publishes its global
            // right after its solve; spin until it lands or the run dies.
            wait_for_either(&slots[0], spins, abort)?;
            break;
        }
        start -= 1;
    }
    let mut g = slots[start]
        .global
        .get()
        .expect("checked or awaited above")
        .clone();
    hops.fetch_add(1, Ordering::Relaxed);
    max_depth.fetch_max((j - start + 1) as u64, Ordering::Relaxed);
    for (h, slot) in slots.iter().enumerate().take(j + 1).skip(start + 1) {
        match wait_for_either(slot, spins, abort)? {
            Published::Global(gv) => g = gv.clone(),
            Published::Local(lv) => g = plan.fixup_state(h, &g, lv),
        }
        hops.fetch_add(1, Ordering::Relaxed);
    }
    Some(g)
}

/// Which carry cell of a [`Slot`] was found published first.
enum Published<'a, T> {
    /// The chunk's global state (fused chunks only ever publish this).
    Global(&'a Vec<T>),
    /// The chunk's zero-history local state.
    Local(&'a Vec<T>),
}

/// Spins (with yields) until *either* carry cell of `slot` is published,
/// preferring the global (it subsumes the local), or `None` once the run
/// is aborted. The abort flag is polled only on the yield slots (every
/// 64th iteration), keeping the fast path a pure `spin_loop` — the same
/// discipline as the constant runner's `wait_for`.
fn wait_for_either<'a, T>(
    slot: &'a Slot<T>,
    spins: &AtomicU64,
    abort: &AbortSignal,
) -> Option<Published<'a, T>> {
    let mut tries = 0u64;
    loop {
        if let Some(v) = slot.global.get() {
            if tries > 0 {
                spins.fetch_add(tries, Ordering::Relaxed);
            }
            return Some(Published::Global(v));
        }
        if let Some(v) = slot.local.get() {
            if tries > 0 {
                spins.fetch_add(tries, Ordering::Relaxed);
            }
            return Some(Published::Local(v));
        }
        tries += 1;
        if tries.is_multiple_of(64) {
            if abort.is_aborted() {
                spins.fetch_add(tries, Ordering::Relaxed);
                return None;
            }
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::varying::{reference, VaryingSignature};

    fn gates_f64(n: usize, k: usize) -> Vec<f64> {
        // Deterministic contractive coefficients in [0.1, 0.5].
        let mut s = 0x9e3779b97f4a7c15u64;
        (0..n * k)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                0.1 + 0.4 * ((s >> 11) as f64 / (1u64 << 53) as f64)
            })
            .collect()
    }

    fn coeffs_i64(n: usize, k: usize) -> Vec<i64> {
        let mut s = 0x243f6a8885a308d3u64;
        (0..n * k)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 5) as i64 - 2
            })
            .collect()
    }

    fn input_i64(n: usize) -> Vec<i64> {
        (0..n).map(|i| (i % 23) as i64 - 11).collect()
    }

    #[test]
    fn lookback_matches_reference_exactly_on_ints() {
        let n = 5000;
        for k in [1usize, 2, 3] {
            let sig = VaryingSignature::new(k, coeffs_i64(n, k)).unwrap();
            let input = input_i64(n);
            let expect = reference(&sig, &input).unwrap();
            for threads in [1usize, 4] {
                let runner = VaryingRunner::with_config(
                    sig.clone(),
                    RunnerConfig {
                        chunk_size: 256,
                        threads,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    runner.run(&input).unwrap(),
                    expect,
                    "k={k} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn two_pass_matches_lookback_exactly_on_ints() {
        let n = 4097;
        let k = 2;
        let sig = VaryingSignature::new(k, coeffs_i64(n, k)).unwrap();
        let input = input_i64(n);
        let expect = reference(&sig, &input).unwrap();
        let two = VaryingRunner::with_config(
            sig,
            RunnerConfig {
                chunk_size: 128,
                threads: 4,
                strategy: Strategy::TwoPass,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(two.run(&input).unwrap(), expect);
    }

    #[test]
    fn float_runs_stay_close_to_reference() {
        let n = 10_000;
        let k = 2;
        let sig = VaryingSignature::new(k, gates_f64(n, k)).unwrap();
        let input: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) * 0.25 - 1.5).collect();
        let expect = reference(&sig, &input).unwrap();
        for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
            let runner = VaryingRunner::with_config(
                sig.clone(),
                RunnerConfig {
                    chunk_size: 512,
                    threads: 4,
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            let got = runner.run(&input).unwrap();
            for (i, (&g, &e)) in got.iter().zip(&expect).enumerate() {
                assert!(
                    (g - e).abs() <= 1e-9 * e.abs().max(1.0),
                    "{strategy:?} i={i}: {g} vs {e}"
                );
            }
        }
    }

    #[test]
    fn stats_report_the_varying_shape() {
        let n = 4096;
        let sig = VaryingSignature::first_order(coeffs_i64(n, 1)).unwrap();
        let input = input_i64(n);
        let runner = VaryingRunner::with_config(
            sig,
            RunnerConfig {
                chunk_size: 256,
                threads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut data = input.clone();
        let stats = runner.run_in_place(&mut data).unwrap();
        assert_eq!(stats.plan_kind, PlanKind::MatrixCarry);
        assert_eq!(stats.plan_cache_hits, 0);
        assert_eq!(stats.plan_cache_misses, 0);
        assert_eq!(stats.chunks, 16);
        assert!(stats.fused_chunks >= 1, "chunk 0 always fuses");
    }

    #[test]
    fn wrong_length_is_rejected() {
        let sig = VaryingSignature::first_order(vec![1i64; 64]).unwrap();
        let runner = VaryingRunner::new(sig).unwrap();
        match runner.run(&[0i64; 63]) {
            Err(EngineError::LengthMismatch { expected, got }) => {
                assert_eq!((expected, got), (64, 63));
            }
            other => panic!("expected LengthMismatch, got {other:?}"),
        }
    }

    #[test]
    fn empty_signature_runs_empty_input() {
        let sig = VaryingSignature::new(1, Vec::<i64>::new()).unwrap();
        let runner = VaryingRunner::new(sig).unwrap();
        assert_eq!(runner.run(&[]).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn run_rows_applies_the_signature_per_row() {
        let width = 300;
        let rows = 5;
        let k = 2;
        let sig = VaryingSignature::new(k, coeffs_i64(width, k)).unwrap();
        let runner = VaryingRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 64,
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let mut data: Vec<i64> = (0..width * rows).map(|i| (i % 31) as i64 - 15).collect();
        let expect: Vec<i64> = data
            .chunks(width)
            .flat_map(|row| reference(&sig, row).unwrap())
            .collect();
        let stats = runner.run_rows(&mut data, width).unwrap();
        assert_eq!(data, expect);
        assert_eq!(stats.rows, rows as u64);
        assert_eq!(stats.plan_kind, PlanKind::MatrixCarry);
    }

    #[test]
    fn run_rows_rejects_foreign_widths() {
        let sig = VaryingSignature::first_order(vec![1i64; 100]).unwrap();
        let runner = VaryingRunner::new(sig).unwrap();
        let mut data = vec![0i64; 200];
        assert!(matches!(
            runner.run_rows(&mut data, 50),
            Err(EngineError::LengthMismatch { .. })
        ));
        assert!(matches!(
            runner.run_rows(&mut data, 0),
            Err(EngineError::UnsupportedSignature { .. })
        ));
    }

    #[test]
    fn stream_solves_varying_rows() {
        let width = 257;
        let sig = VaryingSignature::first_order(coeffs_i64(width, 1)).unwrap();
        let runner = VaryingRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 64,
                threads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let rows: Vec<Vec<i64>> = (0..6)
            .map(|r| (0..width).map(|i| ((i + r * 7) % 19) as i64 - 9).collect())
            .collect();
        let stream = runner.stream();
        let handles: Vec<_> = rows
            .iter()
            .map(|row| stream.push_row(row.clone()))
            .collect();
        for (row, handle) in rows.iter().zip(handles) {
            let (got, outcome) = handle.join();
            outcome.unwrap();
            assert_eq!(got, reference(&sig, row).unwrap());
        }
        let stats = stream.finish().unwrap();
        assert_eq!(stats.rows, 6);
        assert_eq!(stats.plan_kind, PlanKind::MatrixCarry);
        assert_eq!(stats.plan_cache_hits, 0);
        assert_eq!(stats.plan_cache_misses, 0);
    }

    #[test]
    fn pre_cancelled_token_rejects_the_run() {
        let n = 10_000;
        let sig = VaryingSignature::first_order(coeffs_i64(n, 1)).unwrap();
        let runner = VaryingRunner::new(sig.clone()).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let input = input_i64(n);
        match runner.run_with_cancel(&input, &token) {
            Err(EngineError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        let out = runner.run_with_cancel(&input, &CancelToken::new()).unwrap();
        assert_eq!(out, reference(&sig, &input).unwrap());
    }

    #[test]
    fn expired_deadline_rejects_the_run_for_both_strategies() {
        let n = 10_000;
        let sig = VaryingSignature::first_order(coeffs_i64(n, 1)).unwrap();
        let input = input_i64(n);
        for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
            let runner = VaryingRunner::with_config(
                sig.clone(),
                RunnerConfig {
                    chunk_size: 512,
                    threads: 4,
                    strategy,
                    deadline: Some(std::time::Duration::ZERO),
                    ..Default::default()
                },
            )
            .unwrap();
            match runner.run(&input) {
                Err(EngineError::DeadlineExceeded { .. }) => {}
                other => panic!("expected DeadlineExceeded ({strategy:?}), got {other:?}"),
            }
        }
    }

    #[test]
    fn check_finite_flags_divergent_varying_floats() {
        // Gain 2 everywhere: f32 state overflows to +inf within the first
        // few chunks; both strategies must surface NonFiniteCarry.
        let n = 8192;
        let sig = VaryingSignature::first_order(vec![2.0f32; n]).unwrap();
        let input = vec![1.0f32; n];
        for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
            let strict = VaryingRunner::with_config(
                sig.clone(),
                RunnerConfig {
                    chunk_size: 256,
                    threads: 4,
                    strategy,
                    check_finite: true,
                    ..Default::default()
                },
            )
            .unwrap();
            match strict.run(&input) {
                Err(EngineError::NonFiniteCarry { chunk }) => assert!(chunk < n / 256),
                other => panic!("expected NonFiniteCarry ({strategy:?}), got {other:?}"),
            }
        }
    }
}
