//! Streamed row submission with per-row completion handles.
//!
//! [`BatchRunner::run_rows`] takes the whole batch at once and blocks —
//! the one remaining all-or-nothing barrier between callers and the
//! pool. This module removes it: [`BatchRunner::stream`] opens a
//! [`RowStream`] that accepts rows one at a time ([`RowStream::push_row`])
//! and solves them concurrently on the same persistent [`WorkerPool`]
//! while the producer keeps generating, so recurrence solving composes as
//! a stage in a larger dataflow instead of a batch barrier.
//!
//! ## Execution model
//!
//! `stream()` submits **one long-lived run** to the pool (via
//! [`WorkerPool::submit`], so the caller's thread is never borrowed);
//! every pool worker loops popping rows from a shared bounded queue and
//! solving them through the same [`RowTask`] code path blocking
//! `run_rows` uses — a streamed row cannot drift from its blocking
//! counterpart. The queue admits at most `window` unfinished rows:
//! `push_row` blocks once the window is full, which is the backpressure
//! that stops a fast producer from buffering an unbounded batch.
//!
//! Each pushed row gets a [`RowHandle`]: poll it, block on it (with or
//! without a timeout), register a completion waker, `await` it (the
//! handle implements [`IntoFuture`]), cancel it through its own
//! [`CancelToken`], or bound it with a per-row deadline via
//! [`RowStream::push_row_ctl`] — all reusing the [`RunControl`]
//! machinery, enforced per row by the pool's multi-watch watchdog.
//!
//! ## Error & ordering guarantees
//!
//! - A failed row (panic, cancel, deadline) resolves **only its own
//!   handle**; the workers and every other row are unaffected, and the
//!   pool stays usable afterwards.
//! - Rows complete in whatever order workers finish them; handles are
//!   the ordering authority, not wall-clock.
//! - [`RowStream::finish`] drains the queue, waits for quiescence, and
//!   surfaces the first per-row error (the aggregate [`RunStats`] counts
//!   every row either way). Dropping the stream instead *cancels*
//!   still-pending rows — their handles resolve to
//!   [`EngineError::Cancelled`] — and quiesces before returning, so no
//!   handle can hang on a dead stream.
//!
//! ## The `Future` adapter
//!
//! [`RowFuture`] / [`RunFuture`] wrap the waker hooks
//! ([`RowHandle::on_complete`], [`RunHandle::on_complete`]) as
//! runtime-agnostic `std` futures — no executor dependency, no busy
//! polling: `poll` registers the task waker and returns `Pending`
//! exactly until the completion callback fires. [`block_on`] is a
//! minimal park-based executor for synchronous callers and tests.
//!
//! [`BatchRunner::run_rows`]: crate::BatchRunner::run_rows
//! [`BatchRunner::stream`]: crate::BatchRunner::stream
//! [`RowTask`]: crate::batch::RowTask

use crate::batch::RowTask;
use crate::pool::{
    lock_recover, AbortReason, AbortSignal, CancelToken, RunControl, RunHandle, WorkerExit,
    WorkerPanic, WorkerPool,
};
use crate::stats::RunStats;
use plr_core::element::Element;
use plr_core::error::EngineError;
use std::cell::Cell;
use std::collections::VecDeque;
use std::future::{Future, IntoFuture};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

/// How often a parked stream worker re-checks the run-level abort flag
/// while waiting for rows (bounds drop/cancel latency).
const POLL: Duration = Duration::from_millis(10);

thread_local! {
    /// True on a thread that is currently *inside* [`RowStream::launch`]'s
    /// `submit` call. If the pool's driver thread could not be spawned,
    /// `submit` degrades to executing the job synchronously on the calling
    /// thread — which for a stream would deadlock (the worker would wait
    /// for rows the blocked caller can never push). The worker detects
    /// that degenerate re-entry through this flag and declares the stream
    /// dead instead, so pushes fail fast rather than hang.
    static INLINE_LAUNCH: Cell<bool> = const { Cell::new(false) };
}

/// A non-blocking or bounded-wait push found the backpressure window
/// still full — the `WouldBlock` verdict of [`RowStream::try_push_row`] /
/// [`RowStream::push_row_timeout`]. Carries the row buffer back to the
/// caller untouched, so shedding or retrying costs no copy.
#[derive(Debug)]
pub struct PushError<T> {
    /// The row buffer handed back, exactly as submitted.
    pub data: Vec<T>,
}

impl<T> PushError<T> {
    /// Recovers the row buffer for a retry or for shedding bookkeeping.
    pub fn into_data(self) -> Vec<T> {
        self.data
    }
}

impl<T> std::fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream backpressure window full (would block)")
    }
}

impl<T: std::fmt::Debug> std::error::Error for PushError<T> {}

/// One pushed row waiting in the stream's queue.
struct QueuedRow<T> {
    index: usize,
    data: Vec<T>,
    ctl: RunControl,
    inner: Arc<RowInner<T>>,
}

/// Mutable stream state, guarded by [`StreamShared::state`].
struct StreamState<T> {
    queue: VecDeque<QueuedRow<T>>,
    /// Rows pushed but not yet completed (queued + being solved); the
    /// backpressure window bounds this, not just the queue length.
    in_flight: usize,
    closed: bool,
    /// Set when the underlying run died (abort, worker loss, drop): every
    /// later push fails fast with this error instead of queueing forever.
    dead: Option<EngineError>,
    /// First per-row failure, surfaced by [`RowStream::finish`].
    first_error: Option<EngineError>,
    /// Aggregate over completed rows (successes contribute their phase
    /// times; failures contribute `rows` and `aborts`).
    stats: RunStats,
    next_row: usize,
}

struct StreamShared<T> {
    state: Mutex<StreamState<T>>,
    /// Signalled when rows arrive or the stream closes/dies (workers wait
    /// here).
    ready: Condvar,
    /// Signalled when a row completes or the stream dies (pushers blocked
    /// on the window wait here).
    space: Condvar,
    window: usize,
}

/// Clears [`INLINE_LAUNCH`] even if `submit` panics.
struct InlineLaunchGuard;

impl Drop for InlineLaunchGuard {
    fn drop(&mut self) {
        INLINE_LAUNCH.with(|f| f.set(false));
    }
}

/// A streaming submission channel over a [`BatchRunner`]'s pool — see the
/// [module docs](self) for the execution model and guarantees. Created by
/// [`BatchRunner::stream`] / [`BatchRunner::stream_with_window`].
///
/// Dropping the stream without [`finish`](Self::finish) cancels rows
/// still queued or in flight (their handles resolve to
/// [`EngineError::Cancelled`]) and blocks until the workers quiesce.
///
/// [`BatchRunner`]: crate::BatchRunner
/// [`BatchRunner::stream`]: crate::BatchRunner::stream
/// [`BatchRunner::stream_with_window`]: crate::BatchRunner::stream_with_window
pub struct RowStream<T> {
    shared: Arc<StreamShared<T>>,
    /// Cancelling this token aborts the whole stream run.
    run_token: CancelToken,
    /// The long-lived pool run draining the queue; dropping it (stream
    /// drop without `finish`) cancels and quiesces.
    handle: RunHandle,
    /// Pool width at launch, reported in the aggregate stats.
    threads: u64,
}

impl<T> std::fmt::Debug for RowStream<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = lock_recover(&self.shared.state);
        f.debug_struct("RowStream")
            .field("window", &self.shared.window)
            .field("in_flight", &state.in_flight)
            .field("closed", &state.closed)
            .field("dead", &state.dead.is_some())
            .finish()
    }
}

impl<T: Element> RowStream<T> {
    /// Starts the long-lived pool run that drains the row queue. Called
    /// by [`BatchRunner::stream`].
    ///
    /// [`BatchRunner::stream`]: crate::BatchRunner::stream
    pub(crate) fn launch(pool: Arc<WorkerPool>, task: RowTask<T>, window: usize) -> Self {
        let shared = Arc::new(StreamShared {
            state: Mutex::new(StreamState {
                queue: VecDeque::new(),
                in_flight: 0,
                closed: false,
                dead: None,
                first_error: None,
                // One plan consult backs the whole stream; seed the
                // aggregate with its outcome rather than recounting it on
                // every row.
                stats: RunStats {
                    plan_cache_hits: task.plan_cache_hits(),
                    plan_cache_misses: task.plan_cache_misses(),
                    plan_kind: task.plan_kind(),
                    kernel: task.kernel_kind(),
                    ..RunStats::default()
                },
                next_row: 0,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            window,
        });
        let run_token = CancelToken::new();
        let threads = pool.width() as u64;
        let handle = {
            let shared = Arc::clone(&shared);
            let task = task.clone();
            let run_token = run_token.clone();
            let job_pool = Arc::clone(&pool);
            INLINE_LAUNCH.with(|f| f.set(true));
            let _guard = InlineLaunchGuard;
            pool.submit(
                RunControl::new().with_cancel(&run_token),
                move |worker, run_abort| {
                    stream_worker(&job_pool, &shared, &task, &run_token, worker, run_abort)
                },
            )
        };
        // Final sweep once the run is over (normal close, abort, or the
        // degenerate no-worker paths): anything still queued will never be
        // popped — complete those handles and unblock pushers, so no
        // handle and no `push_row` can wedge on a finished run.
        {
            let shared = Arc::clone(&shared);
            let run_token = run_token.clone();
            handle.on_complete(move || {
                let err = if run_token.is_cancelled() {
                    EngineError::Cancelled
                } else {
                    EngineError::WorkerPanicked {
                        worker: 0,
                        payload: "stream run ended with rows still queued".to_string(),
                    }
                };
                drain_pending(&shared, err);
            });
        }
        RowStream {
            shared,
            run_token,
            handle,
            threads,
        }
    }

    /// The backpressure window: the maximum number of unfinished rows
    /// (queued or being solved) before `push_row` blocks.
    pub fn window(&self) -> usize {
        self.shared.window
    }

    /// Rows pushed but not yet completed.
    pub fn in_flight(&self) -> usize {
        lock_recover(&self.shared.state).in_flight
    }

    /// Submits one row for solving, taking ownership of its buffer, and
    /// returns a [`RowHandle`] that resolves when the row is done (get
    /// the solved buffer back with [`RowHandle::join`]).
    ///
    /// Blocks while the in-flight window is full — that is the
    /// backpressure contract. Rows may have any length, including
    /// lengths that differ between pushes.
    ///
    /// Pushing onto a closed or dead stream does not block: the returned
    /// handle is already resolved to [`EngineError::Cancelled`] (closed)
    /// or the stream's fatal error (dead), with the buffer untouched.
    pub fn push_row(&self, data: Vec<T>) -> RowHandle<T> {
        self.push_row_ctl(data, RunControl::new())
    }

    /// Like [`push_row`](Self::push_row), with a per-row [`RunControl`]:
    /// the row observes its own [`CancelToken`] and/or wall-clock
    /// deadline (armed on the pool's watchdog while the row is being
    /// solved), independently of every other row. A cancelled or expired
    /// row resolves its handle to [`EngineError::Cancelled`] /
    /// [`EngineError::DeadlineExceeded`]; the stream keeps going.
    ///
    /// Note the deadline clock starts when [`RunControl::with_deadline`]
    /// is called — time spent blocked on the window counts against it.
    pub fn push_row_ctl(&self, data: Vec<T>, ctl: RunControl) -> RowHandle<T> {
        match self.push_row_bounded(data, ctl, None) {
            Ok(handle) => handle,
            // Unreachable: an unbounded wait never reports WouldBlock.
            Err(e) => unreachable!("blocking push returned {e}"),
        }
    }

    /// Non-blocking [`push_row`](Self::push_row): enqueues only if the
    /// backpressure window has space *right now*, otherwise hands the
    /// buffer straight back as [`PushError`] without waiting. This is the
    /// admission-controller entry point — a caller that must never wedge
    /// on a saturated stream probes with this and converts the verdict
    /// into its own shed/retry decision.
    ///
    /// Closed and dead streams are not `WouldBlock`: exactly like
    /// [`push_row`](Self::push_row), those return an already-resolved
    /// handle (the stream's state is final, so there is nothing to wait
    /// for).
    pub fn try_push_row(&self, data: Vec<T>) -> Result<RowHandle<T>, PushError<T>> {
        self.push_row_bounded(data, RunControl::new(), Some(Duration::ZERO))
    }

    /// [`try_push_row`](Self::try_push_row) with a per-row [`RunControl`]
    /// (cancel token and/or deadline for the row once admitted).
    pub fn try_push_row_ctl(
        &self,
        data: Vec<T>,
        ctl: RunControl,
    ) -> Result<RowHandle<T>, PushError<T>> {
        self.push_row_bounded(data, ctl, Some(Duration::ZERO))
    }

    /// Bounded-wait [`push_row`](Self::push_row): blocks on the window for
    /// at most `timeout`, then hands the buffer back as [`PushError`] if
    /// space never opened. `Duration::ZERO` is equivalent to
    /// [`try_push_row`](Self::try_push_row).
    pub fn push_row_timeout(
        &self,
        data: Vec<T>,
        timeout: Duration,
    ) -> Result<RowHandle<T>, PushError<T>> {
        self.push_row_bounded(data, RunControl::new(), Some(timeout))
    }

    /// [`push_row_timeout`](Self::push_row_timeout) with a per-row
    /// [`RunControl`].
    pub fn push_row_timeout_ctl(
        &self,
        data: Vec<T>,
        ctl: RunControl,
        timeout: Duration,
    ) -> Result<RowHandle<T>, PushError<T>> {
        self.push_row_bounded(data, ctl, Some(timeout))
    }

    /// The one push implementation: waits on the window forever
    /// (`budget: None`), not at all (`Some(ZERO)`), or up to a timeout.
    fn push_row_bounded(
        &self,
        data: Vec<T>,
        ctl: RunControl,
        budget: Option<Duration>,
    ) -> Result<RowHandle<T>, PushError<T>> {
        let cancel = ctl.cancel.clone().unwrap_or_default();
        let ctl = RunControl {
            cancel: Some(cancel.clone()),
            deadline: ctl.deadline,
        };
        let deadline = budget.map(|b| Instant::now() + b);
        let inner = Arc::new(RowInner::new());
        let mut state = lock_recover(&self.shared.state);
        loop {
            if state.closed {
                drop(state);
                return Ok(RowHandle::resolved(
                    inner,
                    cancel,
                    usize::MAX,
                    data,
                    EngineError::Cancelled,
                ));
            }
            if let Some(err) = state.dead.clone() {
                drop(state);
                return Ok(RowHandle::resolved(inner, cancel, usize::MAX, data, err));
            }
            if state.in_flight < self.shared.window {
                break;
            }
            match deadline {
                None => {
                    state = self
                        .shared
                        .space
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        drop(state);
                        return Err(PushError { data });
                    }
                    state = self
                        .shared
                        .space
                        .wait_timeout(state, at - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
        let index = state.next_row;
        state.next_row += 1;
        state.in_flight += 1;
        state.queue.push_back(QueuedRow {
            index,
            data,
            ctl,
            inner: Arc::clone(&inner),
        });
        drop(state);
        self.shared.ready.notify_one();
        Ok(RowHandle {
            inner,
            cancel,
            index,
            detached: false,
        })
    }

    /// Aborts the whole stream (idempotent): every queued or in-flight
    /// row resolves to [`EngineError::Cancelled`] and later pushes fail
    /// fast. Workers quiesce within one poll interval; use
    /// [`finish`](Self::finish) to join them.
    pub fn cancel(&self) {
        self.run_token.cancel();
    }

    /// Closes the intake: later pushes resolve immediately to
    /// [`EngineError::Cancelled`], and the workers exit once the queue is
    /// drained. Idempotent; does not block — pair with
    /// [`finish`](Self::finish) (or outstanding [`RowHandle`]s) to wait
    /// for the rows already in flight.
    pub fn close(&self) {
        let mut state = lock_recover(&self.shared.state);
        state.closed = true;
        drop(state);
        self.shared.ready.notify_all();
        self.shared.space.notify_all();
    }

    /// Closes the stream, waits for every pushed row to complete, and
    /// returns the aggregate [`RunStats`] — or the first error: a
    /// stream-level failure if the run itself died, otherwise the first
    /// per-row error (including deliberate per-row cancellations and
    /// deadline trips). Per-row outcomes remain available on the
    /// individual handles either way.
    pub fn finish(self) -> Result<RunStats, EngineError> {
        self.close();
        let run = self.handle.wait();
        let state = lock_recover(&self.shared.state);
        if let Err(e) = run {
            return Err(e.into_engine_error());
        }
        if let Some(e) = &state.first_error {
            return Err(e.clone());
        }
        let mut stats = state.stats;
        stats.threads = self.threads;
        Ok(stats)
    }
}

/// Completes every row still in the queue with `err` and marks the
/// stream dead so pushers fail fast. Safe to call repeatedly and
/// concurrently with the worker-side drain — each row is popped exactly
/// once under the state lock.
fn drain_pending<T: Element>(shared: &StreamShared<T>, err: EngineError) {
    let mut state = lock_recover(&shared.state);
    if state.dead.is_none() {
        state.dead = Some(err.clone());
    }
    let leftovers: Vec<QueuedRow<T>> = state.queue.drain(..).collect();
    state.in_flight -= leftovers.len();
    for _ in &leftovers {
        state.stats.absorb(&RunStats {
            rows: 1,
            aborts: 1,
            ..RunStats::default()
        });
    }
    if state.first_error.is_none() && !leftovers.is_empty() {
        state.first_error = Some(err.clone());
    }
    drop(state);
    shared.ready.notify_all();
    shared.space.notify_all();
    for row in leftovers {
        RowInner::complete(&row.inner, row.data, Err(err.clone()));
    }
}

/// The per-worker loop of the stream's long-lived run: pop a row, solve
/// it, repeat; exit when the stream is closed and drained, or when the
/// run itself is aborted (draining leftovers with the abort's reason).
fn stream_worker<T: Element>(
    pool: &Arc<WorkerPool>,
    shared: &StreamShared<T>,
    task: &RowTask<T>,
    run_token: &CancelToken,
    worker: usize,
    run_abort: &AbortSignal,
) {
    loop {
        let row = {
            let mut state = lock_recover(&shared.state);
            loop {
                if run_abort.is_aborted() {
                    drop(state);
                    let err = match run_abort.reason() {
                        Some(AbortReason::DeadlineExceeded) => EngineError::DeadlineExceeded {
                            deadline: Duration::ZERO,
                        },
                        Some(AbortReason::WorkerFault) => EngineError::WorkerPanicked {
                            worker,
                            payload: "a worker fault aborted the stream".to_string(),
                        },
                        Some(AbortReason::Cancelled) | None => EngineError::Cancelled,
                    };
                    drain_pending(shared, err);
                    return;
                }
                if let Some(row) = state.queue.pop_front() {
                    break row;
                }
                if state.closed {
                    return;
                }
                if INLINE_LAUNCH.with(Cell::get) {
                    // Degenerate synchronous fallback (driver thread could
                    // not spawn): we are running *inside* `launch` on the
                    // caller's thread; no rows can ever arrive. Declare
                    // the stream dead instead of deadlocking.
                    drop(state);
                    drain_pending(shared, EngineError::Cancelled);
                    return;
                }
                // Timed wait so an abort tripped while we are parked is
                // still noticed within one poll interval.
                state = shared
                    .ready
                    .wait_timeout(state, POLL)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        process_one(pool, shared, task, run_token, worker, row);
    }
}

/// Solves one popped row and resolves its handle — the streaming analogue
/// of one `run_whole_rows` ticket, plus the per-row control plumbing
/// (cancel token attach, watchdog deadline, panic capture).
fn process_one<T: Element>(
    pool: &Arc<WorkerPool>,
    shared: &StreamShared<T>,
    task: &RowTask<T>,
    run_token: &CancelToken,
    worker: usize,
    row: QueuedRow<T>,
) {
    let QueuedRow {
        index,
        mut data,
        ctl,
        inner,
    } = row;
    if let Err(e) = ctl.status() {
        // Cancelled or expired while queued: fail fast, no work.
        finish_row(shared, &inner, data, Err(e.into_engine_error()));
        return;
    }
    let abort = Arc::new(AbortSignal::default());
    // Stream-level cancellation (drop, explicit run cancel) must reach a
    // row mid-solve — e.g. one wedged in an injected delay — so the
    // stream's quiesce is bounded by one poll, not by the row.
    let run_att = run_token.attach(&abort);
    let row_att = ctl.cancel.as_ref().map(|t| t.attach(&abort));
    let watch = ctl
        .deadline
        .and_then(|(at, _)| pool.watchdog_arm(at, &abort));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "fault-inject")]
        crate::fault::check(crate::fault::FaultSite::Row, worker, index, Some(&abort));
        task.apply(&mut data, worker, index, Some(&abort))
    }));
    // Disarm before reading the reason, mirroring `run_ctl`.
    drop(watch);
    drop(row_att);
    drop(run_att);
    match outcome {
        Ok((fir_nanos, solve_nanos, solve_slices)) => {
            let result = match abort.reason() {
                // A bare WorkerFault is job-owned elsewhere; nothing trips
                // it on a per-row signal, so treat it as clean.
                None | Some(AbortReason::WorkerFault) => Ok(RunStats {
                    rows: 1,
                    chunks: 1,
                    threads: 1,
                    fir_nanos,
                    solve_nanos,
                    plan_kind: task.plan_kind(),
                    kernel: task.kernel_kind(),
                    solve_slices,
                    ..RunStats::default()
                }),
                Some(AbortReason::Cancelled) => Err(EngineError::Cancelled),
                Some(AbortReason::DeadlineExceeded) => Err(EngineError::DeadlineExceeded {
                    deadline: ctl.deadline.map(|(_, b)| b).unwrap_or_default(),
                }),
            };
            finish_row(shared, &inner, data, result);
        }
        Err(payload) => {
            // The panic stays contained: only this row's handle errors,
            // the worker keeps draining the queue. Resolve the handle
            // *before* any rethrow so it can never be left dangling.
            let err = WorkerPanic::from_payload(worker, payload.as_ref()).into_engine_error();
            finish_row(shared, &inner, data, Err(err));
            if payload.is::<WorkerExit>() {
                // Simulated thread death must still retire the worker
                // through the pool's machinery (lazy respawn & co).
                resume_unwind(payload);
            }
        }
    }
}

/// Resolves a row's handle and updates the stream's aggregate state.
fn finish_row<T: Element>(
    shared: &StreamShared<T>,
    inner: &Arc<RowInner<T>>,
    data: Vec<T>,
    result: Result<RunStats, EngineError>,
) {
    let row_stats = match &result {
        Ok(stats) => *stats,
        Err(_) => RunStats {
            rows: 1,
            aborts: 1,
            ..RunStats::default()
        },
    };
    let err = result.as_ref().err().cloned();
    RowInner::complete(inner, data, result);
    let mut state = lock_recover(&shared.state);
    state.in_flight -= 1;
    state.stats.absorb(&row_stats);
    if let Some(e) = err {
        if state.first_error.is_none() {
            state.first_error = Some(e);
        }
    }
    drop(state);
    shared.space.notify_all();
}

struct RowState<T> {
    /// `(solved buffer, outcome)` once the row is done.
    outcome: Option<(Vec<T>, Result<RunStats, EngineError>)>,
    waker: Option<Box<dyn FnOnce() + Send>>,
}

/// Shared completion cell between a [`RowHandle`] and the worker solving
/// its row — the row-granular analogue of the pool's `HandleInner`.
struct RowInner<T> {
    state: Mutex<RowState<T>>,
    done: Condvar,
}

impl<T> RowInner<T> {
    fn new() -> Self {
        RowInner {
            state: Mutex::new(RowState {
                outcome: None,
                waker: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Publishes the outcome, wakes blocked waiters, and fires the waker
    /// outside the lock. Idempotent: the first completion wins (the
    /// worker-side drain and the run-end sweep may race on a dying
    /// stream).
    fn complete(inner: &Arc<Self>, data: Vec<T>, result: Result<RunStats, EngineError>) {
        let waker = {
            let mut state = lock_recover(&inner.state);
            if state.outcome.is_some() {
                return;
            }
            state.outcome = Some((data, result));
            inner.done.notify_all();
            state.waker.take()
        };
        if let Some(wake) = waker {
            wake();
        }
    }
}

/// One streamed row in flight (see [`RowStream::push_row`]).
///
/// Completion is signalled, not joined: poll
/// [`is_finished`](Self::is_finished), block with [`wait`](Self::wait) /
/// [`wait_timeout`](Self::wait_timeout), register a
/// [`on_complete`](Self::on_complete) waker, or `await` the handle (it
/// implements [`IntoFuture`], resolving to the solved buffer plus the
/// outcome). [`join`](Self::join) returns the buffer synchronously.
///
/// Dropping an unfinished handle **cancels its row** (non-blocking; the
/// worker observes the cancel at its next consult and resolves the
/// abandoned row to [`EngineError::Cancelled`]) — a caller that walks
/// away from a row does not leak work. Use [`detach`](Self::detach) to
/// drop the handle and let the row run to completion anyway.
pub struct RowHandle<T> {
    inner: Arc<RowInner<T>>,
    cancel: CancelToken,
    index: usize,
    detached: bool,
}

impl<T> std::fmt::Debug for RowHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowHandle")
            .field("index", &self.index)
            .field(
                "finished",
                &lock_recover(&self.inner.state).outcome.is_some(),
            )
            .finish()
    }
}

impl<T: Element> RowHandle<T> {
    /// A handle born already resolved (push onto a closed/dead stream).
    fn resolved(
        inner: Arc<RowInner<T>>,
        cancel: CancelToken,
        index: usize,
        data: Vec<T>,
        err: EngineError,
    ) -> Self {
        RowInner::complete(&inner, data, Err(err));
        RowHandle {
            inner,
            cancel,
            index,
            detached: false,
        }
    }

    /// The row's submission index (0-based, in push order). Pushes that
    /// were rejected outright (closed/dead stream) report `usize::MAX`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether the row has completed (successfully or not).
    pub fn is_finished(&self) -> bool {
        lock_recover(&self.inner.state).outcome.is_some()
    }

    /// Blocks until the row completes and returns its outcome (the per-row
    /// [`RunStats`], or the per-row error). Callable repeatedly; the
    /// solved buffer stays inside the handle until [`join`](Self::join).
    pub fn wait(&self) -> Result<RunStats, EngineError> {
        #[cfg(feature = "fault-inject")]
        crate::fault::check(crate::fault::FaultSite::HandleWait, 0, self.index, None);
        let mut state = lock_recover(&self.inner.state);
        while state.outcome.is_none() {
            state = self
                .inner
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.outcome.as_ref().expect("checked above").1.clone()
    }

    /// Blocks up to `budget` for completion; `None` on timeout (the row
    /// keeps going — pair with [`cancel`](Self::cancel) to give up on
    /// it). Re-waits with the *remaining* budget after spurious wakeups,
    /// so the total wait is bounded by `budget` plus scheduling slack.
    pub fn wait_timeout(&self, budget: Duration) -> Option<Result<RunStats, EngineError>> {
        #[cfg(feature = "fault-inject")]
        crate::fault::check(crate::fault::FaultSite::HandleWait, 0, self.index, None);
        let deadline = Instant::now() + budget;
        let mut state = lock_recover(&self.inner.state);
        while state.outcome.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            state = self
                .inner
                .done
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        Some(state.outcome.as_ref().expect("checked above").1.clone())
    }

    /// Blocks until the row completes and returns the buffer together
    /// with the outcome — solved in place on success, in whatever state
    /// the row reached on error.
    pub fn join(mut self) -> (Vec<T>, Result<RunStats, EngineError>) {
        let _ = self.wait();
        self.detached = true; // the drop below must not cancel
        lock_recover(&self.inner.state)
            .outcome
            .take()
            .expect("wait() returned, the outcome is set")
    }

    /// Cancels this row (idempotent): if it has not started it fails fast
    /// with [`EngineError::Cancelled`]; if it is mid-solve the worker
    /// bails at its next consult. Other rows are unaffected.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of the row's cancel token (cancel it from anywhere).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Registers a callback invoked exactly once when the row completes
    /// (immediately if it already has) — the waker hook behind the
    /// `Future` adapter. A second registration replaces the first.
    pub fn on_complete(&self, wake: impl FnOnce() + Send + 'static) {
        let mut state = lock_recover(&self.inner.state);
        if state.outcome.is_some() {
            drop(state);
            wake();
        } else {
            state.waker = Some(Box::new(wake));
        }
    }

    /// Drops the handle *without* cancelling the row: it runs to
    /// completion unobserved (its result is discarded when done).
    pub fn detach(mut self) {
        self.detached = true;
    }
}

impl<T> Drop for RowHandle<T> {
    fn drop(&mut self) {
        if self.detached {
            return;
        }
        if lock_recover(&self.inner.state).outcome.is_none() {
            // Non-blocking by design: the worker resolves the abandoned
            // row to Cancelled on its own schedule; `RowStream::finish`
            // (or the stream's drop) is the quiesce point.
            self.cancel.cancel();
        }
    }
}

// ---------------------------------------------------------------------------
// Future adapters
// ---------------------------------------------------------------------------

/// A [`RowHandle`] as a runtime-agnostic [`Future`], created by
/// `await`ing the handle (its [`IntoFuture`] impl) — resolves to the
/// solved buffer plus the row's outcome, exactly like
/// [`RowHandle::join`], waking the task through
/// [`RowHandle::on_complete`] (no polling loop, no executor dependency).
pub struct RowFuture<T> {
    handle: Option<RowHandle<T>>,
}

impl<T: Element> Future for RowFuture<T> {
    type Output = (Vec<T>, Result<RunStats, EngineError>);

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let handle = self
            .handle
            .as_ref()
            .expect("RowFuture polled after completion");
        if !handle.is_finished() {
            let waker = cx.waker().clone();
            // If the row completed between the check and this call, the
            // callback fires immediately and the executor re-polls — no
            // lost wakeup. Re-registration replaces the previous waker,
            // so the row wakes each poller at most once: no double-wake.
            handle.on_complete(move || waker.wake());
            if !self.handle.as_ref().expect("set above").is_finished() {
                return Poll::Pending;
            }
        }
        let handle = self.handle.take().expect("checked above");
        Poll::Ready(handle.join())
    }
}

impl<T: Element> IntoFuture for RowHandle<T> {
    type Output = (Vec<T>, Result<RunStats, EngineError>);
    type IntoFuture = RowFuture<T>;

    fn into_future(self) -> RowFuture<T> {
        RowFuture { handle: Some(self) }
    }
}

/// A [`RunHandle`] as a runtime-agnostic [`Future`], created by
/// `await`ing the handle — resolves to the run's outcome, waking the
/// task through [`RunHandle::on_complete`].
pub struct RunFuture {
    handle: Option<RunHandle>,
}

impl Future for RunFuture {
    type Output = Result<(), crate::pool::RunError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let handle = self
            .handle
            .as_ref()
            .expect("RunFuture polled after completion");
        if !handle.is_finished() {
            let waker = cx.waker().clone();
            handle.on_complete(move || waker.wake());
            if !self.handle.as_ref().expect("set above").is_finished() {
                return Poll::Pending;
            }
        }
        // Finished: wait() returns without blocking; dropping the handle
        // afterwards is a no-op.
        let handle = self.handle.take().expect("checked above");
        Poll::Ready(handle.wait())
    }
}

impl IntoFuture for RunHandle {
    type Output = Result<(), crate::pool::RunError>;
    type IntoFuture = RunFuture;

    fn into_future(self) -> RunFuture {
        RunFuture { handle: Some(self) }
    }
}

/// Waker that unparks the thread driving [`block_on`].
struct ThreadWaker(std::thread::Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives any future to completion on the current thread — a minimal
/// executor for synchronous callers of the [`Future`] adapters. Parks
/// between polls (no busy-waiting): the future's waker unparks us.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchRunner;
    use plr_core::serial;
    use plr_core::signature::Signature;

    fn rows_of(width: usize, count: usize) -> Vec<Vec<i64>> {
        (0..count)
            .map(|r| {
                (0..width)
                    .map(|i| ((r * 31 + i * 7) % 13) as i64 - 6)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn streamed_rows_match_serial_reference() {
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let runner = BatchRunner::new(sig.clone(), 4);
        let stream = runner.stream();
        let inputs = rows_of(57, 12);
        let handles: Vec<RowHandle<i64>> = inputs
            .iter()
            .map(|row| stream.push_row(row.clone()))
            .collect();
        // Join in reverse push order: completion is per-handle, not FIFO.
        for (handle, input) in handles.into_iter().zip(&inputs).rev() {
            let (got, result) = handle.join();
            let stats = result.unwrap();
            assert_eq!(stats.rows, 1);
            assert_eq!(got, serial::run(&sig, input));
        }
        let stats = stream.finish().unwrap();
        assert_eq!(stats.rows, 12);
        assert_eq!(stats.chunks, 12);
    }

    #[test]
    fn heterogeneous_row_lengths_are_fine() {
        let sig: Signature<f64> = "0.81,-1.62,0.81:1.6,-0.64".parse().unwrap();
        let runner = BatchRunner::new(sig.clone(), 2);
        let stream = runner.stream_with_window(3);
        let mut handles = Vec::new();
        let mut inputs = Vec::new();
        for width in [1usize, 7, 64, 131] {
            let row: Vec<f64> = (0..width).map(|i| ((i % 9) as f64) * 0.25 - 1.0).collect();
            handles.push(stream.push_row(row.clone()));
            inputs.push(row);
        }
        for (handle, input) in handles.into_iter().zip(&inputs) {
            let (got, result) = handle.join();
            result.unwrap();
            let want = serial::run(&sig, input);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{g} vs {w}");
            }
        }
        stream.finish().unwrap();
    }

    #[test]
    fn push_after_close_resolves_cancelled_with_buffer() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = BatchRunner::new(sig, 2);
        let stream = runner.stream();
        stream.close();
        let handle = stream.push_row(vec![1, 2, 3]);
        assert!(handle.is_finished());
        assert_eq!(handle.index(), usize::MAX);
        let (data, result) = handle.join();
        assert_eq!(
            data,
            vec![1, 2, 3],
            "rejected pushes leave the buffer untouched"
        );
        assert!(matches!(result, Err(EngineError::Cancelled)));
        stream.finish().unwrap();
    }

    #[test]
    fn empty_stream_finishes_clean() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = BatchRunner::new(sig, 3);
        let stats = runner.stream().finish().unwrap();
        assert_eq!(stats.rows, 0);
        assert!(stats.threads >= 1);
    }

    #[test]
    fn row_future_awaits_to_the_solved_buffer() {
        let sig: Signature<i64> = "1:1".parse().unwrap(); // prefix sum
        let runner = BatchRunner::new(sig, 2);
        let stream = runner.stream();
        let handle = stream.push_row(vec![1, 2, 3, 4]);
        let (got, result) = block_on(handle.into_future());
        result.unwrap();
        assert_eq!(got, vec![1, 3, 6, 10]);
        stream.finish().unwrap();
    }

    #[test]
    fn run_future_awaits_pool_submissions() {
        let pool = Arc::new(WorkerPool::new(2));
        let handle = pool.submit(RunControl::new(), |_, _| {});
        block_on(handle.into_future()).unwrap();
    }

    #[test]
    fn precancelled_row_fails_alone_and_finish_reports_it() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = BatchRunner::new(sig.clone(), 2);
        let stream = runner.stream();
        let ok_before = stream.push_row(vec![1; 32]);
        let token = CancelToken::new();
        token.cancel();
        let doomed = stream.push_row_ctl(vec![2; 32], RunControl::new().with_cancel(&token));
        let ok_after = stream.push_row(vec![3; 32]);
        assert!(matches!(doomed.wait(), Err(EngineError::Cancelled)));
        ok_before.wait().unwrap();
        ok_after.wait().unwrap();
        // finish surfaces the first per-row error, even a deliberate one.
        assert!(matches!(stream.finish(), Err(EngineError::Cancelled)));
    }

    #[test]
    fn expired_row_deadline_fails_fast() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = BatchRunner::new(sig, 2);
        let stream = runner.stream();
        let handle =
            stream.push_row_ctl(vec![1; 16], RunControl::new().with_deadline(Duration::ZERO));
        match handle.wait() {
            Err(EngineError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let ok = stream.push_row(vec![1; 16]);
        ok.wait().unwrap();
    }

    #[test]
    fn dropping_the_stream_resolves_every_handle() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = BatchRunner::new(sig, 2);
        let stream = runner.stream_with_window(8);
        let handles: Vec<RowHandle<i64>> = (0..8).map(|_| stream.push_row(vec![1; 64])).collect();
        drop(stream); // cancels pending rows, quiesces before returning
        for handle in handles {
            // Each row either completed before the drop landed or was
            // cancelled by it; neither may hang.
            match handle.wait() {
                Ok(_) | Err(EngineError::Cancelled) => {}
                other => panic!("unexpected outcome after stream drop: {other:?}"),
            }
        }
    }

    #[test]
    fn cancel_aborts_the_whole_stream() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = BatchRunner::new(sig, 2);
        let stream = runner.stream_with_window(4);
        let first = stream.push_row(vec![1; 8]);
        first.wait().unwrap();
        stream.cancel();
        let late = stream.push_row(vec![2; 8]);
        match late.wait() {
            // Either the death landed before the push (fail-fast) or the
            // drain caught it in the queue; both resolve to Cancelled.
            Err(EngineError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert!(matches!(stream.finish(), Err(EngineError::Cancelled)));
    }

    #[test]
    fn window_bounds_in_flight_rows() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = BatchRunner::new(sig, 2);
        let stream = runner.stream_with_window(2);
        assert_eq!(stream.window(), 2);
        for _ in 0..20 {
            stream.push_row(vec![1; 256]).detach();
            assert!(stream.in_flight() <= 2, "window must bound in-flight rows");
        }
        stream.finish().unwrap();
    }

    #[test]
    fn try_push_row_would_block_hands_the_buffer_back() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = BatchRunner::new(sig, 2);
        let stream = runner.stream_with_window(1);
        // A multi-millisecond row holds the window full while we probe.
        let first = stream.push_row(vec![1; 2_000_000]);
        let marker: Vec<i64> = vec![7; 8];
        match stream.try_push_row(marker.clone()) {
            Err(e) => {
                assert!(e.to_string().contains("would block"), "{e}");
                assert_eq!(e.into_data(), marker, "buffer must come back untouched");
            }
            Ok(handle) => {
                // The first row won the race and finished already; the
                // probe was admitted instead of blocking — also correct.
                handle.join().1.unwrap();
            }
        }
        first.join().1.unwrap();
        stream.finish().unwrap();
    }

    #[test]
    fn push_row_timeout_admits_once_space_frees() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = BatchRunner::new(sig, 2);
        let stream = runner.stream_with_window(1);
        let first = stream.push_row(vec![1; 1_000_000]);
        // Generous budget: the bounded wait must ride out the first row
        // and then admit, never report WouldBlock here.
        let handle = stream
            .push_row_timeout(vec![2; 64], Duration::from_secs(60))
            .expect("space frees within the budget");
        let (data, stats) = handle.join();
        stats.unwrap();
        assert_eq!(data[0], 2);
        assert_eq!(data[63], 2 * 64);
        first.join().1.unwrap();
        stream.finish().unwrap();
    }

    #[test]
    fn try_push_on_closed_stream_resolves_instead_of_would_block() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = BatchRunner::new(sig, 2);
        let stream = runner.stream_with_window(1);
        stream.close();
        // Closed is a *final* verdict, not backpressure: the push must
        // succeed with an already-resolved handle, exactly like push_row.
        let handle = stream
            .try_push_row(vec![3; 16])
            .expect("closed stream must not report WouldBlock");
        assert!(handle.is_finished());
        let (data, result) = handle.join();
        assert_eq!(data, vec![3; 16], "buffer untouched on a closed stream");
        assert!(matches!(result, Err(EngineError::Cancelled)));
    }

    #[test]
    fn detached_rows_still_count_in_aggregate_stats() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let runner = BatchRunner::new(sig, 2);
        let stream = runner.stream();
        for _ in 0..5 {
            stream.push_row(vec![1; 32]).detach();
        }
        let stats = stream.finish().unwrap();
        assert_eq!(stats.rows, 5);
    }
}
