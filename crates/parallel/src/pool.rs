//! A persistent worker pool: threads are spawned once and reused across
//! `run()` calls.
//!
//! The paper's Phase 2 pipeline assumes *resident* execution units — GPU
//! blocks that are already scheduled when chunks start flowing. The seed
//! CPU mapping instead paid a full `std::thread::scope` spawn/join plus a
//! bounded-channel handshake on every call, which dominates small and
//! medium runs and caps steady-state throughput. This pool keeps the
//! workers parked on a condvar between calls:
//!
//! - [`WorkerPool::new`] spawns `width - 1` OS threads (the thread that
//!   calls [`WorkerPool::run`] participates as worker 0, so `width == 1`
//!   spawns nothing and runs jobs inline). Spawn failures degrade
//!   gracefully: the pool keeps the workers that did spawn, [`width`]
//!   shrinks accordingly, and the missing workers are retried lazily on
//!   every later submission.
//! - [`WorkerPool::run`] publishes one type-erased job, wakes the workers,
//!   executes the job on the calling thread too, and blocks until every
//!   worker has finished. Job submission is serialized internally, so a
//!   pool shared by several runners is safe (calls queue up).
//! - Work distribution inside a job is the callers' business; the runner
//!   uses an atomic ticket counter over chunk indices, which preserves the
//!   in-order claiming the decoupled look-back progress argument needs
//!   (a chunk is only claimed after every earlier chunk has been claimed).
//!
//! # Run control: cancellation, deadlines, non-blocking submission
//!
//! [`WorkerPool::run_ctl`] extends `run` with a [`RunControl`]:
//!
//! - a caller-held [`CancelToken`] aborts the run from outside — the
//!   token trips the run's [`AbortSignal`] directly, so every cooperative
//!   loop bails at its next poll and the run returns
//!   [`RunError::Cancelled`];
//! - a wall-clock deadline is enforced by a lazily-spawned watchdog
//!   thread *inside the pool*: when the budget expires mid-run, the
//!   watchdog trips the abort signal and the run returns
//!   [`RunError::DeadlineExceeded`] instead of hanging on a wedged stage
//!   or an OS-starved worker.
//!
//! [`WorkerPool::submit`] is the non-blocking variant: the job (which
//! must be `'static`) is handed to a lazily-spawned *driver* thread that
//! plays the caller's worker-0 role — a donated worker standing in for
//! the caller-participates design — and the caller gets a [`RunHandle`]
//! whose completion is signalled (condvar + [`RunHandle::is_finished`] /
//! [`RunHandle::wait_timeout`], plus an optional waker callback for
//! async executors) instead of joined.
//!
//! **Handle-drop invariant.** Dropping a [`RunHandle`] before completion
//! cancels the run and *blocks until its workers quiesce* — the same
//! lifetime-erasure discipline as the caller-panic path below: a run must
//! never be left executing with nobody obligated to wait for it.
//!
//! # Failure model
//!
//! Every job invocation — on the spawned workers *and* on the calling
//! thread — runs under `catch_unwind`. The first panic is recorded, the
//! per-run [`AbortSignal`] (passed to every job invocation) is tripped so
//! cooperative loops and spin waits can bail out, and [`WorkerPool::run`]
//! returns `Err(`[`WorkerPanic`]`)` once every worker has quiesced. A
//! worker thread never dies from a job panic; the one exception is the
//! [`WorkerExit`] sentinel payload (used by fault injection to simulate
//! thread death), after which the dead worker is respawned lazily on the
//! next submission. The pool stays fully reusable after any failure.
//!
//! **Precedence.** When several abort causes coincide, a recorded panic
//! always wins (it is the root-cause evidence); otherwise the *first*
//! tripped reason decides between [`RunError::Cancelled`] and
//! [`RunError::DeadlineExceeded`] — [`AbortSignal`] records only the
//! first reason. A job-level abort (e.g. the runner's finiteness check)
//! trips the generic [`AbortReason::WorkerFault`], which the pool does
//! *not* convert into an error — the job's caller owns that diagnosis.
//!
//! [`width`]: WorkerPool::width
//!
//! # Safety
//!
//! `run` erases the job closure's lifetime to park it in shared state the
//! worker threads can reach. This is sound because of an unwind-ordering
//! invariant: **no exit path of `run` — including the caller's own closure
//! invocation panicking — returns or resumes an unwind before every clone
//! of the erased closure has been dropped.** Concretely:
//!
//! - each worker drops its clone *before* reporting completion, and the
//!   decrement that reports completion sits in a drop guard, so it happens
//!   even if the panic-recording machinery itself unwinds;
//! - the calling thread invokes its clone under `catch_unwind`, and on a
//!   caller-side panic it trips the abort signal and still *waits for
//!   `running` to reach zero* before converting the panic into an error —
//!   the caller's stack frame (which the closure borrows) cannot be torn
//!   down while any worker may still hold a clone;
//! - the shared job slot is cleared under the lock before `run` returns.
//!
//! Together these guarantee the closure (and everything it borrows from
//! the caller's stack) never outlives the `run` call, on the success path
//! and on every failure path. Cancellation and deadlines do not weaken
//! the invariant: they only *request* early bail-out through the abort
//! flag; the submitter still waits for every worker before returning.
//! ([`WorkerPool::submit`] sidesteps the question entirely by requiring
//! `'static` jobs.)

use crate::stats::PoolCounters;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, recovering from poisoning.
///
/// With every job invocation wrapped in `catch_unwind`, a poisoned pool
/// mutex can only mean a panic in the tiny bookkeeping sections below —
/// whose state is valid at every intermediate point — so recovering the
/// guard is always sound and keeps one panic from masquerading as a
/// second, unrelated one.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Resolves a configured thread count: `0` means the `PLR_THREADS`
/// environment variable when it is set to a positive integer, otherwise
/// one worker per available CPU (falling back to 4 when the CPU count is
/// unknown).
///
/// The env override is what lets CI pin the whole `plr-parallel` suite to
/// a thread-count matrix (`PLR_THREADS=1,2,4`) without touching every
/// test, and lets a deployment size the pool without recompiling.
///
/// Shared by [`crate::ParallelRunner`] and [`crate::BatchRunner`] so the
/// two fallbacks cannot drift.
pub fn resolve_threads(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    if let Some(n) = std::env::var("PLR_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// Why a run's [`AbortSignal`] was tripped. Only the *first* trip is
/// recorded; later causes are ignored (see the module docs on
/// precedence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// A worker panicked, died, or a job-level check failed (e.g. the
    /// runner's finiteness validation). The pool reports panics as
    /// [`RunError::Panicked`]; job-level faults are the job owner's to
    /// diagnose.
    WorkerFault,
    /// A caller-held [`CancelToken`] was cancelled.
    Cancelled,
    /// The pool's watchdog observed the run outliving its deadline.
    DeadlineExceeded,
}

impl AbortReason {
    fn code(self) -> u8 {
        match self {
            AbortReason::WorkerFault => 1,
            AbortReason::Cancelled => 2,
            AbortReason::DeadlineExceeded => 3,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => None,
            1 => Some(AbortReason::WorkerFault),
            2 => Some(AbortReason::Cancelled),
            3 => Some(AbortReason::DeadlineExceeded),
            _ => unreachable!("invalid abort code {code}"),
        }
    }
}

/// Per-run cooperative cancellation flag, passed to every job invocation.
///
/// The pool trips it when any worker panics, when a linked
/// [`CancelToken`] is cancelled, or when the deadline watchdog fires;
/// jobs may also trip it themselves (e.g. the runner's finiteness check).
/// Ticket loops and spin waits are expected to poll
/// [`is_aborted`](Self::is_aborted) and bail out promptly — that is what
/// turns a dead worker into a clean error instead of a hang in the
/// decoupled look-back pipeline.
#[derive(Debug, Default)]
pub struct AbortSignal(AtomicU8);

impl AbortSignal {
    /// Whether this run has been aborted (a single relaxed load — cheap
    /// enough for per-chunk and per-spin polling).
    #[inline]
    pub fn is_aborted(&self) -> bool {
        self.0.load(Ordering::Relaxed) != 0
    }

    /// Trips the abort flag with [`AbortReason::WorkerFault`]; every
    /// cooperating loop in the current run will bail out at its next poll.
    pub fn trigger(&self) {
        self.trip(AbortReason::WorkerFault);
    }

    /// Trips the abort flag with an explicit reason. The first trip wins;
    /// later trips (whatever their reason) are no-ops.
    pub(crate) fn trip(&self, reason: AbortReason) {
        let _ = self
            .0
            .compare_exchange(0, reason.code(), Ordering::Relaxed, Ordering::Relaxed);
    }

    /// The first recorded abort reason, or `None` while the run is live.
    pub fn reason(&self) -> Option<AbortReason> {
        AbortReason::from_code(self.0.load(Ordering::Relaxed))
    }
}

/// A caller-held handle that cancels runs from outside the pool.
///
/// Clone it freely; all clones share one flag. [`cancel`](Self::cancel)
/// is sticky: every run currently observing the token is aborted
/// immediately (their [`AbortSignal`]s are tripped directly, so even
/// spin-waiting workers bail within one poll interval), and every
/// *future* run handed the token fails fast with [`RunError::Cancelled`]
/// before doing any work.
///
/// ```
/// use plr_parallel::CancelToken;
///
/// let token = CancelToken::new();
/// let clone = token.clone();
/// assert!(!token.is_cancelled());
/// clone.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    /// Abort signals of runs currently observing this token.
    watchers: Mutex<Vec<Weak<AbortSignal>>>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Cancels every linked in-flight run and all future runs using this
    /// token. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
        for watcher in lock_recover(&self.inner.watchers).iter() {
            if let Some(abort) = watcher.upgrade() {
                abort.trip(AbortReason::Cancelled);
            }
        }
    }

    /// Links a run's abort signal to this token for the run's duration.
    /// The returned guard unlinks on drop. A token cancelled concurrently
    /// with the attach still trips the signal (flag checked after
    /// publication). Public so external drain loops (the streaming layer
    /// in this crate, the service core's shard workers) can link per-row
    /// tokens to per-row abort signals the same way the pool does.
    pub fn attach(&self, abort: &Arc<AbortSignal>) -> CancelAttachment<'_> {
        {
            let mut watchers = lock_recover(&self.inner.watchers);
            watchers.retain(|w| w.strong_count() > 0);
            watchers.push(Arc::downgrade(abort));
        }
        if self.is_cancelled() {
            abort.trip(AbortReason::Cancelled);
        }
        CancelAttachment {
            token: self,
            abort: Arc::downgrade(abort),
        }
    }
}

/// Unlinks a run's abort signal from its [`CancelToken`] on drop.
pub struct CancelAttachment<'a> {
    token: &'a CancelToken,
    abort: Weak<AbortSignal>,
}

impl Drop for CancelAttachment<'_> {
    fn drop(&mut self) {
        lock_recover(&self.token.inner.watchers).retain(|w| !w.ptr_eq(&self.abort));
    }
}

/// Per-run control: an optional caller-held [`CancelToken`] and an
/// optional wall-clock deadline, resolved to an absolute instant when the
/// control is built (so a multi-pass run spends one budget, not one per
/// pass).
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) deadline: Option<(Instant, Duration)>,
}

impl RunControl {
    /// An empty control: no cancellation, no deadline — behaviorally
    /// identical to [`WorkerPool::run`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes `token` for the run's duration (a clone is stored; cancel
    /// any clone to abort).
    #[must_use]
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Bounds the run's wall time: `budget` from *now* (the moment this
    /// method is called, not the moment the run starts).
    #[must_use]
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some((Instant::now() + budget, budget));
        self
    }

    /// Whether the linked token (if any) has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// The cancel token this control observes, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The resolved deadline, if any: `(absolute instant, original
    /// budget)`.
    pub fn deadline(&self) -> Option<(Instant, Duration)> {
        self.deadline
    }

    /// Fails fast when the control is already cancelled or past its
    /// deadline; used by the pool before starting a run and by multi-pass
    /// runners between (and inside) passes.
    pub fn status(&self) -> Result<(), RunError> {
        if self.is_cancelled() {
            return Err(RunError::Cancelled);
        }
        if let Some((at, budget)) = self.deadline {
            if Instant::now() >= at {
                return Err(RunError::DeadlineExceeded { deadline: budget });
            }
        }
        Ok(())
    }
}

/// The first panic captured during a [`WorkerPool::run`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Id of the worker whose job invocation panicked (`0` is the calling
    /// thread).
    pub worker: usize,
    /// The panic payload, stringified.
    pub payload: String,
}

impl WorkerPanic {
    /// Builds a `WorkerPanic` from a caught panic payload (used by every
    /// layer that wraps job execution in `catch_unwind`, including the
    /// service core's shard workers).
    pub fn from_payload(worker: usize, payload: &(dyn Any + Send)) -> Self {
        let payload = if payload.is::<WorkerExit>() {
            "worker exited (injected thread death)".to_string()
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        WorkerPanic { worker, payload }
    }

    /// Converts into the engine-level error the runners surface.
    pub fn into_engine_error(self) -> plr_core::error::EngineError {
        plr_core::error::EngineError::WorkerPanicked {
            worker: self.worker,
            payload: self.payload,
        }
    }
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker {} panicked: {}", self.worker, self.payload)
    }
}

impl std::error::Error for WorkerPanic {}

/// How a controlled run failed (see [`WorkerPool::run_ctl`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A worker (or the calling thread acting as worker 0) panicked.
    Panicked(WorkerPanic),
    /// The run was aborted through its [`CancelToken`].
    Cancelled,
    /// The run outlived its deadline and was aborted by the watchdog.
    DeadlineExceeded {
        /// The wall-clock budget that was exceeded.
        deadline: Duration,
    },
}

impl RunError {
    /// Converts into the engine-level error the runners surface.
    pub fn into_engine_error(self) -> plr_core::error::EngineError {
        match self {
            RunError::Panicked(p) => p.into_engine_error(),
            RunError::Cancelled => plr_core::error::EngineError::Cancelled,
            RunError::DeadlineExceeded { deadline } => {
                plr_core::error::EngineError::DeadlineExceeded { deadline }
            }
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Panicked(p) => p.fmt(f),
            RunError::Cancelled => write!(f, "run cancelled by the caller"),
            RunError::DeadlineExceeded { deadline } => {
                write!(f, "run exceeded its deadline of {deadline:?}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Sentinel panic payload that makes a pool worker exit its loop after
/// reporting, simulating thread death (the execution-unit loss the
/// decoupled look-back liveness argument must survive).
///
/// Used by the `fault-inject` harness via `std::panic::panic_any`; the
/// dead worker is respawned lazily on the pool's next submission.
#[derive(Debug)]
pub struct WorkerExit;

/// The type-erased job executed by every worker; the arguments are the
/// worker id in `0..width` and the run's abort signal.
type Job = BorrowedJob<'static>;

/// [`Job`] before its lifetime is erased in [`WorkerPool::run`].
type BorrowedJob<'a> = Arc<dyn Fn(usize, &AbortSignal) + Send + Sync + 'a>;

struct PoolState {
    /// The current job, present only while a generation is in flight.
    job: Option<Job>,
    /// The current run's abort signal (a fresh one per submission, so a
    /// stale [`CancelToken`] link can never abort an unrelated later run).
    abort: Arc<AbortSignal>,
    /// Bumped once per submitted job so a worker never runs one twice.
    generation: u64,
    /// Spawned workers still executing the current job.
    running: usize,
    /// Spawned workers currently inside their loop (dead ones excluded).
    alive: usize,
    /// Worker ids that exited their loop (via [`WorkerExit`]); joined and
    /// respawned on the next submission.
    dead: Vec<usize>,
    /// First panic captured in the current generation.
    panic: Option<WorkerPanic>,
    /// Set by `Drop` to retire the workers.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signals workers that a new job (or shutdown) is available.
    work_ready: Condvar,
    /// Signals the submitter that `running` reached zero.
    work_done: Condvar,
    /// Cumulative count of workers respawned after death or a failed
    /// earlier spawn; see [`WorkerPool::recovered_workers`].
    recovered: AtomicU64,
    /// Cumulative run-outcome counters; see [`WorkerPool::counters`].
    runs: AtomicU64,
    panicked_runs: AtomicU64,
    cancelled_runs: AtomicU64,
    deadlined_runs: AtomicU64,
}

impl Shared {
    /// Records the first panic of the current generation and trips the
    /// run's abort signal so the surviving workers bail out of their
    /// loops.
    fn record_panic(&self, worker: usize, payload: &(dyn Any + Send)) {
        let mut state = lock_recover(&self.state);
        state.abort.trigger();
        if state.panic.is_none() {
            state.panic = Some(WorkerPanic::from_payload(worker, payload));
        }
    }
}

/// Per-worker slots; index `i` holds the handle for worker id `i + 1`
/// (`None` while that worker could not be spawned). Doubles as the
/// submission lock: holding it serializes `run` calls.
struct Workers {
    handles: Vec<Option<JoinHandle<()>>>,
}

/// The deadline watchdog's shared state. Blocking submissions are
/// serialized, so they arm at most one watch at a time — but a streamed
/// row submission ([`crate::stream::RowStream`]) arms one watch *per
/// in-flight row with a deadline*, so the watchdog tracks a set of
/// watches and always sleeps until the earliest one.
struct WatchdogShared {
    state: Mutex<WatchState>,
    cv: Condvar,
}

struct WatchState {
    /// `(id, deadline, abort signal)` for every run or row under watch.
    watches: Vec<(u64, Instant, Weak<AbortSignal>)>,
    next_id: u64,
    shutdown: bool,
}

fn watchdog_loop(shared: &WatchdogShared) {
    let mut state = lock_recover(&shared.state);
    loop {
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        // Trip every expired watch under the lock: a disarm (which takes
        // the same lock) can then never race a trip for a run that
        // already completed and disarmed.
        state.watches.retain(|(_, at, weak)| {
            if now >= *at {
                if let Some(abort) = weak.upgrade() {
                    abort.trip(AbortReason::DeadlineExceeded);
                }
                false
            } else {
                true
            }
        });
        match state.watches.iter().map(|(_, at, _)| *at).min() {
            None => {
                state = shared
                    .cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            Some(earliest) => {
                let wait = earliest - now;
                state = shared
                    .cv
                    .wait_timeout(state, wait)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }
    }
}

/// Disarms the watchdog for a completed run (or streamed row) on drop.
pub struct WatchGuard<'a> {
    watchdog: &'a WatchdogShared,
    id: u64,
}

impl Drop for WatchGuard<'_> {
    fn drop(&mut self) {
        let mut state = lock_recover(&self.watchdog.state);
        let before = state.watches.len();
        state.watches.retain(|w| w.0 != self.id);
        if state.watches.len() != before {
            self.watchdog.cv.notify_all();
        }
    }
}

/// One queued [`WorkerPool::submit`] task, executed by the driver thread.
type Submission = Box<dyn FnOnce() + Send>;

/// The submit driver's shared state.
struct DriverShared {
    state: Mutex<DriverState>,
    cv: Condvar,
}

struct DriverState {
    queue: VecDeque<Submission>,
    shutdown: bool,
}

fn driver_loop(shared: &DriverShared) {
    loop {
        let task = {
            let mut state = lock_recover(&shared.state);
            loop {
                // Drain the queue even during shutdown: every queued task
                // completes a RunHandle somebody may be waiting on.
                if let Some(task) = state.queue.pop_front() {
                    break task;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        task();
    }
}

/// A fixed-width pool of persistent worker threads (see the module docs).
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Mutex<Workers>,
    watchdog: Arc<WatchdogShared>,
    /// Lazily spawned on the first deadline-bearing run.
    watchdog_thread: Mutex<Option<JoinHandle<()>>>,
    driver: Arc<DriverShared>,
    /// Lazily spawned on the first [`submit`](Self::submit).
    driver_thread: Mutex<Option<JoinHandle<()>>>,
    /// Test hook ([`new_degraded`](Self::new_degraded)): while set, `heal`
    /// still reaps dead workers but does not respawn missing slots, so the
    /// zero-worker serial path stays observable across submissions.
    inhibit_respawn: AtomicBool,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("width", &self.width())
            .finish()
    }
}

fn spawn_worker(shared: &Arc<Shared>, id: usize) -> std::io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("plr-worker-{id}"))
        .spawn(move || worker_loop(&shared, id))
}

impl WorkerPool {
    /// Creates a pool of total width `width` (the calling thread counts as
    /// one worker, so `width - 1` threads are spawned).
    ///
    /// Thread-spawn failures are not fatal: the pool keeps whatever did
    /// spawn (worst case only the calling thread), [`width`](Self::width)
    /// reports the effective count, and the missing workers are retried on
    /// every later [`run`](Self::run) submission.
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                abort: Arc::new(AbortSignal::default()),
                generation: 0,
                running: 0,
                alive: 0,
                dead: Vec::new(),
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            recovered: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            panicked_runs: AtomicU64::new(0),
            cancelled_runs: AtomicU64::new(0),
            deadlined_runs: AtomicU64::new(0),
        });
        let handles: Vec<Option<JoinHandle<()>>> = (1..width)
            .map(|id| spawn_worker(&shared, id).ok())
            .collect();
        lock_recover(&shared.state).alive = handles.iter().flatten().count();
        WorkerPool {
            shared,
            workers: Mutex::new(Workers { handles }),
            watchdog: Arc::new(WatchdogShared {
                state: Mutex::new(WatchState {
                    watches: Vec::new(),
                    next_id: 0,
                    shutdown: false,
                }),
                cv: Condvar::new(),
            }),
            watchdog_thread: Mutex::new(None),
            driver: Arc::new(DriverShared {
                state: Mutex::new(DriverState {
                    queue: VecDeque::new(),
                    shutdown: false,
                }),
                cv: Condvar::new(),
            }),
            driver_thread: Mutex::new(None),
            inhibit_respawn: AtomicBool::new(false),
        }
    }

    /// Test-only constructor simulating total spawn failure at
    /// construction: a pool of nominal width `width` with **zero** live
    /// spawned workers, exactly the state [`new`](Self::new) leaves behind
    /// when every `thread::spawn` fails. Runs degrade to the
    /// caller-as-worker-0 serial path until a later submission's heal pass
    /// respawns the missing workers.
    #[doc(hidden)]
    pub fn new_degraded(width: usize) -> Self {
        let width = width.max(1);
        let pool = Self::new(1);
        // Record the missing workers as never-spawned slots so `heal` can
        // retry them, mirroring the spawn-failure bookkeeping in `new`.
        lock_recover(&pool.workers)
            .handles
            .extend((1..width).map(|_| None));
        pool.inhibit_respawn.store(true, Ordering::Relaxed);
        pool
    }

    /// Lifts the [`new_degraded`](Self::new_degraded) respawn inhibition:
    /// the next submission's heal pass retries the missing workers.
    #[doc(hidden)]
    pub fn allow_respawn(&self) {
        self.inhibit_respawn.store(false, Ordering::Relaxed);
    }

    /// Effective worker count, including the thread that calls
    /// [`run`](Self::run) (live spawned workers plus one). Shrinks when a
    /// spawn failed or a worker died, grows back when a later submission
    /// respawns it.
    pub fn width(&self) -> usize {
        lock_recover(&self.shared.state).alive + 1
    }

    /// Cumulative number of workers revived by lazy respawning — dead
    /// workers joined and replaced, or initially-failed spawns that later
    /// succeeded.
    pub fn recovered_workers(&self) -> u64 {
        self.shared.recovered.load(Ordering::Relaxed)
    }

    /// Cumulative run-outcome counters for this pool: total runs and how
    /// many ended panicked, cancelled, or past their deadline.
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            runs: self.shared.runs.load(Ordering::Relaxed),
            panicked: self.shared.panicked_runs.load(Ordering::Relaxed),
            cancelled: self.shared.cancelled_runs.load(Ordering::Relaxed),
            deadline_exceeded: self.shared.deadlined_runs.load(Ordering::Relaxed),
            workers_recovered: self.recovered_workers(),
        }
    }

    fn note_outcome(&self, result: &Result<(), RunError>) {
        self.shared.runs.fetch_add(1, Ordering::Relaxed);
        let counter = match result {
            Ok(()) => return,
            Err(RunError::Panicked(_)) => &self.shared.panicked_runs,
            Err(RunError::Cancelled) => &self.shared.cancelled_runs,
            Err(RunError::DeadlineExceeded { .. }) => &self.shared.deadlined_runs,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reaps dead workers and retries every missing slot; called at each
    /// submission with the submission lock held.
    fn heal(&self, workers: &mut Workers) {
        let dead = {
            let mut state = lock_recover(&self.shared.state);
            std::mem::take(&mut state.dead)
        };
        for id in dead {
            // The worker marked itself dead as its final locked action, so
            // the join only waits out thread teardown.
            if let Some(handle) = workers.handles[id - 1].take() {
                let _ = handle.join();
            }
        }
        if self.inhibit_respawn.load(Ordering::Relaxed) {
            return;
        }
        for (i, slot) in workers.handles.iter_mut().enumerate() {
            if slot.is_none() {
                if let Ok(handle) = spawn_worker(&self.shared, i + 1) {
                    *slot = Some(handle);
                    lock_recover(&self.shared.state).alive += 1;
                    self.shared.recovered.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Ensures the deadline watchdog thread is running; `false` when it
    /// could not be spawned (the deadline is then only checked before the
    /// run starts — graceful degradation, like worker-spawn failure).
    fn ensure_watchdog(&self) -> bool {
        let mut slot = lock_recover(&self.watchdog_thread);
        if slot.is_some() {
            return true;
        }
        let watchdog = Arc::clone(&self.watchdog);
        match std::thread::Builder::new()
            .name("plr-watchdog".to_string())
            .spawn(move || watchdog_loop(&watchdog))
        {
            Ok(handle) => {
                *slot = Some(handle);
                true
            }
            Err(_) => false,
        }
    }

    /// Puts a run — or one streamed row — under deadline watch; the guard
    /// disarms on drop. Any number of watches may be armed concurrently
    /// (the streaming layer and the service core's shards arm one per
    /// in-flight row with a deadline).
    /// `None` when the watchdog thread could not be spawned.
    pub fn watchdog_arm(&self, at: Instant, abort: &Arc<AbortSignal>) -> Option<WatchGuard<'_>> {
        if !self.ensure_watchdog() {
            return None;
        }
        let mut state = lock_recover(&self.watchdog.state);
        let id = state.next_id;
        state.next_id += 1;
        state.watches.push((id, at, Arc::downgrade(abort)));
        self.watchdog.cv.notify_all();
        Some(WatchGuard {
            watchdog: &self.watchdog,
            id,
        })
    }

    /// Ensures the submit driver thread is running; `false` when it could
    /// not be spawned (submissions then execute synchronously).
    fn ensure_driver(&self) -> bool {
        let mut slot = lock_recover(&self.driver_thread);
        if slot.is_some() {
            return true;
        }
        let driver = Arc::clone(&self.driver);
        match std::thread::Builder::new()
            .name("plr-driver".to_string())
            .spawn(move || driver_loop(&driver))
        {
            Ok(handle) => {
                *slot = Some(handle);
                true
            }
            Err(_) => false,
        }
    }

    /// Runs `job(worker_id, abort)` on every worker — ids `1..width` on
    /// the pool threads, id `0` on the calling thread — returning once all
    /// have finished.
    ///
    /// # Errors
    ///
    /// Returns the first [`WorkerPanic`] when any invocation (including
    /// the calling thread's) panicked. The run's [`AbortSignal`] is
    /// tripped as soon as the panic is caught so cooperative loops bail
    /// out; `run` still waits for every worker to finish before returning
    /// (see the module-level safety discussion), and the pool remains
    /// reusable afterwards.
    pub fn run<F>(&self, job: F) -> Result<(), WorkerPanic>
    where
        F: Fn(usize, &AbortSignal) + Send + Sync,
    {
        match self.run_ctl(&RunControl::new(), job) {
            Ok(()) => Ok(()),
            Err(RunError::Panicked(p)) => Err(p),
            Err(other) => unreachable!("uncontrolled run cannot fail with {other:?}"),
        }
    }

    /// Like [`run`](Self::run), but observing a [`RunControl`]: the run
    /// can be cancelled from outside through a [`CancelToken`] and is
    /// bounded by the control's deadline (enforced by the pool's watchdog
    /// thread, so even a wedged stage or an OS-starved worker converts
    /// into an error instead of a hang).
    ///
    /// # Errors
    ///
    /// [`RunError::Panicked`] as for [`run`](Self::run);
    /// [`RunError::Cancelled`] when the token was (or became) cancelled;
    /// [`RunError::DeadlineExceeded`] when the deadline expired before
    /// the run finished. A panic takes precedence over both; otherwise
    /// the first-tripped reason wins. On every error path the submitter
    /// still waits for all workers to quiesce before returning, and the
    /// pool stays reusable.
    pub fn run_ctl<F>(&self, ctl: &RunControl, job: F) -> Result<(), RunError>
    where
        F: Fn(usize, &AbortSignal) + Send + Sync,
    {
        let mut workers = lock_recover(&self.workers);
        self.heal(&mut workers);
        if let Err(e) = ctl.status() {
            // Fail fast: cancelled or expired before any work started.
            self.note_outcome(&Err(e.clone()));
            return Err(e);
        }
        let abort = Arc::new(AbortSignal::default());
        let attachment = ctl.cancel.as_ref().map(|t| t.attach(&abort));
        let watch = ctl
            .deadline
            .and_then(|(at, _)| self.watchdog_arm(at, &abort));
        let live = lock_recover(&self.shared.state).alive;

        let result = if live == 0 {
            // No spawned workers: run inline. Panics still become errors
            // so callers see one failure surface regardless of width.
            match catch_unwind(AssertUnwindSafe(|| job(0, &abort))) {
                Ok(()) => Ok(()),
                Err(payload) => Err(RunError::Panicked(WorkerPanic::from_payload(
                    0,
                    payload.as_ref(),
                ))),
            }
        } else {
            self.run_on_workers(live, &abort, job)
        };
        // Disarm before reading the abort reason so the window for a
        // spurious post-completion deadline trip is as small as possible.
        drop(watch);
        drop(attachment);
        let result = match result {
            Ok(()) => match abort.reason() {
                Some(AbortReason::Cancelled) => Err(RunError::Cancelled),
                Some(AbortReason::DeadlineExceeded) => Err(RunError::DeadlineExceeded {
                    deadline: ctl.deadline.map(|(_, b)| b).unwrap_or_default(),
                }),
                // A plain WorkerFault without a recorded panic is a
                // job-level abort (e.g. check_finite); the job's caller
                // owns that error, not the pool.
                Some(AbortReason::WorkerFault) | None => Ok(()),
            },
            err => err,
        };
        self.note_outcome(&result);
        result
    }

    /// The erased-lifetime fan-out on the spawned workers plus the
    /// calling thread (see the module-level safety discussion).
    fn run_on_workers<F>(
        &self,
        live: usize,
        abort: &Arc<AbortSignal>,
        job: F,
    ) -> Result<(), RunError>
    where
        F: Fn(usize, &AbortSignal) + Send + Sync,
    {
        // SAFETY: see the module docs — every clone of the erased Arc is
        // dropped before this function returns on every exit path
        // (including panics), so the closure's borrows stay within this
        // frame.
        let erased: BorrowedJob<'_> = Arc::new(job);
        let erased: Job = unsafe { std::mem::transmute(erased) };
        {
            let mut state = lock_recover(&self.shared.state);
            debug_assert!(state.job.is_none() && state.running == 0);
            state.job = Some(Arc::clone(&erased));
            state.abort = Arc::clone(abort);
            state.generation += 1;
            state.running = live;
            state.panic = None;
            self.shared.work_ready.notify_all();
        }
        let caller = catch_unwind(AssertUnwindSafe(|| erased(0, abort)));
        if caller.is_err() {
            // Workers may be spinning on carries this thread will never
            // publish; make them bail before we wait on them.
            abort.trigger();
        }
        drop(erased);
        let mut state = lock_recover(&self.shared.state);
        while state.running > 0 {
            state = self
                .shared
                .work_done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.job = None;
        let worker_panic = state.panic.take();
        drop(state);
        // All clones are dead; only now is it safe to surface any panic.
        match caller {
            Err(payload) => Err(RunError::Panicked(WorkerPanic::from_payload(
                0,
                payload.as_ref(),
            ))),
            Ok(()) => match worker_panic {
                Some(p) => Err(RunError::Panicked(p)),
                None => Ok(()),
            },
        }
    }

    /// Submits `job` without blocking: a lazily-spawned driver thread
    /// stands in for the caller as worker 0 (the donated-worker fallback
    /// of the caller-participates design) and the returned [`RunHandle`]
    /// signals completion instead of joining it.
    ///
    /// Submissions execute in order, serialized with blocking
    /// [`run`](Self::run) calls on the same pool. If the driver thread
    /// cannot be spawned, the run executes synchronously inside `submit`
    /// and the returned handle is already finished (graceful
    /// degradation).
    ///
    /// The handle's token (the control's, or a fresh one when the control
    /// has none) cancels the run; *dropping the handle before completion
    /// cancels the run and blocks until it quiesces* (see the module
    /// docs).
    pub fn submit<F>(self: &Arc<Self>, ctl: RunControl, job: F) -> RunHandle
    where
        F: Fn(usize, &AbortSignal) + Send + Sync + 'static,
    {
        let cancel = ctl.cancel.clone().unwrap_or_default();
        let ctl = RunControl {
            cancel: Some(cancel.clone()),
            deadline: ctl.deadline,
        };
        let inner = Arc::new(HandleInner {
            state: Mutex::new(HandleState {
                result: None,
                waker: None,
            }),
            done: Condvar::new(),
        });
        let task: Submission = {
            let pool = Arc::clone(self);
            let inner = Arc::clone(&inner);
            Box::new(move || {
                let result = pool.run_ctl(&ctl, job);
                HandleInner::complete(&inner, result);
            })
        };
        if self.ensure_driver() {
            let mut state = lock_recover(&self.driver.state);
            state.queue.push_back(task);
            self.driver.cv.notify_all();
        } else {
            task();
        }
        RunHandle {
            inner,
            cancel,
            _pool: Arc::clone(self),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // The driver goes first: queued submissions hold an `Arc` to this
        // pool, so by the time `Drop` runs the queue is empty and the
        // driver is parked (or never spawned).
        {
            let mut state = lock_recover(&self.driver.state);
            state.shutdown = true;
            self.driver.cv.notify_all();
        }
        // The last `Arc<WorkerPool>` can be dropped from a thread the
        // pool itself owns — e.g. a completion callback running on the
        // driver thread releasing the final clone. Joining the current
        // thread would deadlock (and panics in std), so such threads are
        // detached instead: they observe `shutdown` and exit on their
        // own right after this drop returns.
        let me = std::thread::current().id();
        if let Some(handle) = lock_recover(&self.driver_thread).take() {
            if handle.thread().id() != me {
                let _ = handle.join();
            }
        }
        {
            let mut state = lock_recover(&self.watchdog.state);
            state.shutdown = true;
            self.watchdog.cv.notify_all();
        }
        if let Some(handle) = lock_recover(&self.watchdog_thread).take() {
            if handle.thread().id() != me {
                let _ = handle.join();
            }
        }
        {
            let mut state = lock_recover(&self.shared.state);
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        let mut workers = lock_recover(&self.workers);
        for handle in workers.handles.iter_mut().filter_map(Option::take) {
            if handle.thread().id() != me {
                let _ = handle.join();
            }
        }
    }
}

struct HandleState {
    result: Option<Result<(), RunError>>,
    waker: Option<Box<dyn FnOnce() + Send>>,
}

struct HandleInner {
    state: Mutex<HandleState>,
    done: Condvar,
}

impl HandleInner {
    fn complete(inner: &Arc<HandleInner>, result: Result<(), RunError>) {
        let waker = {
            let mut state = lock_recover(&inner.state);
            debug_assert!(state.result.is_none(), "a submission completes once");
            state.result = Some(result);
            inner.done.notify_all();
            state.waker.take()
        };
        if let Some(wake) = waker {
            wake();
        }
    }
}

/// A non-blocking run in flight (see [`WorkerPool::submit`]).
///
/// Completion is signalled, not joined: poll [`is_finished`]
/// (`Self::is_finished`), block with [`wait`](Self::wait) /
/// [`wait_timeout`](Self::wait_timeout), or register a waker callback
/// with [`on_complete`](Self::on_complete) so an async executor can be
/// woken to poll again.
///
/// Dropping the handle before completion **cancels the run and blocks
/// until its workers quiesce** — the execution layer never leaves a run
/// executing with nobody obligated to observe it (the same invariant the
/// caller-panic path upholds for borrowed jobs).
pub struct RunHandle {
    inner: Arc<HandleInner>,
    cancel: CancelToken,
    /// Keeps the pool (and its driver) alive until the run is observed.
    _pool: Arc<WorkerPool>,
}

impl std::fmt::Debug for RunHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHandle")
            .field("finished", &self.is_finished())
            .field("cancelled", &self.cancel.is_cancelled())
            .finish()
    }
}

impl RunHandle {
    /// Whether the run has completed (successfully or not).
    pub fn is_finished(&self) -> bool {
        lock_recover(&self.inner.state).result.is_some()
    }

    /// Blocks until the run completes and returns its outcome. Callable
    /// repeatedly; every call returns the same outcome.
    pub fn wait(&self) -> Result<(), RunError> {
        #[cfg(feature = "fault-inject")]
        crate::fault::check(crate::fault::FaultSite::HandleWait, 0, 0, None);
        let mut state = lock_recover(&self.inner.state);
        while state.result.is_none() {
            state = self
                .inner
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.result.clone().expect("checked above")
    }

    /// Blocks up to `budget` for completion; `None` on timeout (the run
    /// keeps going — pair with [`cancel`](Self::cancel) to give up on
    /// it).
    pub fn wait_timeout(&self, budget: Duration) -> Option<Result<(), RunError>> {
        #[cfg(feature = "fault-inject")]
        crate::fault::check(crate::fault::FaultSite::HandleWait, 0, 0, None);
        let deadline = Instant::now() + budget;
        let mut state = lock_recover(&self.inner.state);
        while state.result.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            state = self
                .inner
                .done
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        Some(state.result.clone().expect("checked above"))
    }

    /// Cancels the run through its token (idempotent; the run still has
    /// to quiesce, so follow with [`wait`](Self::wait) or let the drop
    /// block).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of the run's cancel token (cancel it from anywhere).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Registers a callback invoked exactly once when the run completes
    /// (immediately if it already has) — the waker hook an async executor
    /// needs to `poll` the handle without spinning. A second registration
    /// replaces the first.
    pub fn on_complete(&self, wake: impl FnOnce() + Send + 'static) {
        let mut state = lock_recover(&self.inner.state);
        if state.result.is_some() {
            drop(state);
            wake();
        } else {
            state.waker = Some(Box::new(wake));
        }
    }
}

impl Drop for RunHandle {
    fn drop(&mut self) {
        if self.is_finished() {
            return;
        }
        self.cancel.cancel();
        let mut state = lock_recover(&self.inner.state);
        while state.result.is_none() {
            state = self
                .inner
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Drop guard that reports one worker's completion: decrements `running`
/// (waking the submitter at zero) even if the code between its creation
/// and its drop unwinds, and — when the worker is exiting — retires it in
/// the same critical section, so a submitter can never observe the
/// decrement without the death.
struct CompletionGuard<'a> {
    shared: &'a Shared,
    id: usize,
    exiting: bool,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        let mut state = lock_recover(&self.shared.state);
        state.running -= 1;
        if self.exiting {
            state.alive -= 1;
            state.dead.push(self.id);
        }
        if state.running == 0 {
            self.shared.work_done.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared, id: usize) {
    let mut seen_generation = 0u64;
    loop {
        let (job, abort) = {
            let mut state = lock_recover(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation != seen_generation {
                    if let Some(job) = &state.job {
                        seen_generation = state.generation;
                        break (Arc::clone(job), Arc::clone(&state.abort));
                    }
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let mut guard = CompletionGuard {
            shared,
            id,
            exiting: false,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| job(id, &abort)));
        // The clone must die before completion is reported: `run` treats
        // `running == 0` as "no live borrows of the caller's stack".
        drop(job);
        let exiting = match outcome {
            Ok(()) => false,
            Err(payload) => {
                // Record before the guard's decrement so the submitter
                // sees the panic the moment `running` hits zero.
                shared.record_panic(id, payload.as_ref());
                payload.is::<WorkerExit>()
            }
        };
        guard.exiting = exiting;
        drop(guard);
        if exiting {
            return;
        }
    }
}

/// A `Send + Sync` wrapper for a raw base pointer, so pool jobs can carve
/// disjoint `&mut` chunks out of one buffer by ticket index.
///
/// The field is private on purpose: closures must capture the wrapper
/// itself (not the raw pointer, which edition-2021 disjoint capture would
/// otherwise grab field-by-field, losing the `Send + Sync` impls).
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    pub(crate) fn ptr(self) -> *mut T {
        self.0
    }
}

// SAFETY: the wrapper only moves the pointer between threads; callers are
// responsible for deriving disjoint slices from it (the ticket counter
// guarantees each chunk index is claimed exactly once).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// An atomic take-a-number dispenser over `0..limit`; claims are strictly
/// increasing, which is what keeps the look-back pipeline deadlock-free.
pub(crate) struct Tickets {
    next: AtomicUsize,
    limit: usize,
}

impl Tickets {
    pub(crate) fn new(limit: usize) -> Self {
        Tickets {
            next: AtomicUsize::new(0),
            limit,
        }
    }

    /// Claims the next index, or `None` when all are taken.
    pub(crate) fn claim(&self) -> Option<usize> {
        let t = self.next.fetch_add(1, Ordering::Relaxed);
        (t < self.limit).then_some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Silences the default panic-hook output for the injected panics
    /// these tests provoke on purpose (real failures still print).
    fn quiet_expected_panics() {
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let payload = info.payload();
                let s = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                    .unwrap_or("");
                if !s.contains("deliberate") && !payload.is::<WorkerExit>() {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn resolve_threads_passes_nonzero_through() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn all_workers_run_the_job_once() {
        let pool = WorkerPool::new(4);
        let hits = AtomicU64::new(0);
        let ids = Mutex::new(Vec::new());
        pool.run(|id, _abort| {
            hits.fetch_add(1, Ordering::Relaxed);
            ids.lock().unwrap().push(id);
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        let mut ids = ids.into_inner().unwrap();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn repeated_runs_reuse_the_same_threads() {
        let pool = WorkerPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(|_, _| {
                total.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn width_one_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.width(), 1);
        let mut hit = false;
        let hit_ref = std::sync::Mutex::new(&mut hit);
        pool.run(|id, _abort| {
            assert_eq!(id, 0);
            **hit_ref.lock().unwrap() = true;
        })
        .unwrap();
        assert!(hit);
    }

    #[test]
    fn jobs_may_borrow_the_callers_stack() {
        let pool = WorkerPool::new(4);
        let mut data = vec![0u64; 1024];
        let base = SendPtr::new(data.as_mut_ptr());
        let tickets = Tickets::new(16);
        pool.run(|_, _| {
            while let Some(t) = tickets.claim() {
                // SAFETY: tickets are unique, so the 64-element chunks are
                // disjoint.
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(t * 64), 64) };
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (t * 64 + i) as u64;
                }
            }
        })
        .unwrap();
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn tickets_are_exhaustive_and_unique() {
        let pool = WorkerPool::new(8);
        let tickets = Tickets::new(1000);
        let seen: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(|_, _| {
            while let Some(t) = tickets.claim() {
                seen[t].fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap();
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dropping_the_pool_joins_cleanly() {
        let pool = WorkerPool::new(4);
        pool.run(|_, _| {}).unwrap();
        drop(pool);
    }

    #[test]
    fn worker_panic_returns_err_and_pool_survives() {
        quiet_expected_panics();
        let pool = WorkerPool::new(4);
        for round in 0..3 {
            let tickets = Tickets::new(64);
            let err = pool
                .run(|_, _| {
                    while let Some(t) = tickets.claim() {
                        if t == 13 {
                            panic!("deliberate pool test panic {round}");
                        }
                    }
                })
                .unwrap_err();
            assert!(err.payload.contains("deliberate"), "{err}");
            // A fault-free run on the same pool must still work.
            let hits = AtomicU64::new(0);
            pool.run(|_, _| {
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
            assert_eq!(hits.load(Ordering::Relaxed), 4);
        }
    }

    #[test]
    fn caller_panic_waits_for_workers_then_errors() {
        quiet_expected_panics();
        let pool = WorkerPool::new(4);
        // The job borrows this stack buffer; worker 0 (the caller) panics
        // while spawned workers are still writing through the pointer. The
        // unwind-ordering invariant says `run` must not return before they
        // finish — otherwise these writes would be use-after-free.
        let mut data = vec![0u64; 4096];
        let base = SendPtr::new(data.as_mut_ptr());
        let tickets = Tickets::new(64);
        let err = pool
            .run(|id, _abort| {
                if id == 0 {
                    panic!("deliberate caller panic");
                }
                while let Some(t) = tickets.claim() {
                    // SAFETY: unique tickets, disjoint 64-element chunks.
                    let chunk =
                        unsafe { std::slice::from_raw_parts_mut(base.ptr().add(t * 64), 64) };
                    for v in chunk.iter_mut() {
                        *v = 7;
                    }
                    std::thread::yield_now();
                }
            })
            .unwrap_err();
        assert_eq!(err.worker, 0);
        assert!(err.payload.contains("deliberate caller panic"));
        // Every chunk was either fully written or untouched — and the
        // buffer is still valid to read, which is the point.
        assert!(data.chunks(64).all(|c| c.iter().all(|&v| v == 7 || v == 0)));
        // The pool is reusable after a caller-side panic.
        pool.run(|_, _| {}).unwrap();
    }

    #[test]
    fn inline_pool_converts_panics_to_errors() {
        quiet_expected_panics();
        let pool = WorkerPool::new(1);
        let err = pool
            .run(|_, _| panic!("deliberate inline panic"))
            .unwrap_err();
        assert_eq!(err.worker, 0);
        assert!(err.payload.contains("deliberate inline panic"));
        pool.run(|_, _| {}).unwrap();
    }

    #[test]
    fn panic_trips_the_abort_signal_for_other_workers() {
        quiet_expected_panics();
        let pool = WorkerPool::new(4);
        let bailed = AtomicU64::new(0);
        let err = pool
            .run(|id, abort| {
                if id == 1 {
                    panic!("deliberate abort-signal panic");
                }
                // Everyone else waits for the abort instead of spinning
                // forever — the cooperative protocol under test.
                while !abort.is_aborted() {
                    std::thread::yield_now();
                }
                bailed.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        assert!(err.payload.contains("abort-signal"));
        assert_eq!(bailed.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn worker_exit_is_respawned_on_next_submission() {
        quiet_expected_panics();
        let pool = WorkerPool::new(4);
        assert_eq!(pool.width(), 4);
        let err = pool
            .run(|id, _abort| {
                if id == 2 {
                    std::panic::panic_any(WorkerExit);
                }
            })
            .unwrap_err();
        assert_eq!(err.worker, 2);
        // The worker is gone until the next submission heals the pool.
        assert_eq!(pool.width(), 3);
        let hits = AtomicU64::new(0);
        pool.run(|_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        assert_eq!(pool.width(), 4);
        assert_eq!(pool.recovered_workers(), 1);
    }

    #[test]
    fn first_panic_wins() {
        quiet_expected_panics();
        let pool = WorkerPool::new(4);
        let err = pool
            .run(|id, _abort| {
                if id != 0 {
                    panic!("deliberate panic from worker {id}");
                }
            })
            .unwrap_err();
        assert_ne!(err.worker, 0);
        assert!(err.payload.contains("deliberate panic from worker"));
        pool.run(|_, _| {}).unwrap();
    }

    // ------------------------------------------------------------------
    // Run control: cancellation, deadlines, submission handles.
    // ------------------------------------------------------------------

    #[test]
    fn pre_cancelled_token_fails_fast() {
        let pool = WorkerPool::new(4);
        let token = CancelToken::new();
        token.cancel();
        let ran = AtomicU64::new(0);
        let err = pool
            .run_ctl(&RunControl::new().with_cancel(&token), |_, _| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        assert_eq!(err, RunError::Cancelled);
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no work may start");
        assert_eq!(pool.counters().cancelled, 1);
        pool.run(|_, _| {}).unwrap();
    }

    #[test]
    fn cancel_token_aborts_a_running_job() {
        let pool = WorkerPool::new(4);
        let token = CancelToken::new();
        let bailed = AtomicU64::new(0);
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                token.cancel();
            })
        };
        // Every worker loops until the abort lands: the run can only end
        // through the token, which makes the test deterministic.
        let err = pool
            .run_ctl(&RunControl::new().with_cancel(&token), |_, abort| {
                while !abort.is_aborted() {
                    std::thread::yield_now();
                }
                bailed.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        canceller.join().unwrap();
        assert_eq!(err, RunError::Cancelled);
        assert_eq!(bailed.load(Ordering::Relaxed), 4);
        assert_eq!(pool.counters().cancelled, 1);
        // The pool (and later runs with a fresh token) are unaffected.
        pool.run_ctl(
            &RunControl::new().with_cancel(&CancelToken::new()),
            |_, _| {},
        )
        .unwrap();
    }

    #[test]
    fn cancel_works_on_an_inline_pool() {
        let pool = WorkerPool::new(1);
        let token = CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                token.cancel();
            })
        };
        let err = pool
            .run_ctl(&RunControl::new().with_cancel(&token), |_, abort| {
                while !abort.is_aborted() {
                    std::thread::yield_now();
                }
            })
            .unwrap_err();
        canceller.join().unwrap();
        assert_eq!(err, RunError::Cancelled);
    }

    #[test]
    fn deadline_converts_a_wedged_run_into_an_error() {
        let pool = WorkerPool::new(4);
        let budget = Duration::from_millis(50);
        let start = Instant::now();
        // The job only ever exits through the abort flag — without the
        // watchdog this run would hang forever.
        let err = pool
            .run_ctl(&RunControl::new().with_deadline(budget), |_, abort| {
                while !abort.is_aborted() {
                    std::thread::yield_now();
                }
            })
            .unwrap_err();
        assert_eq!(err, RunError::DeadlineExceeded { deadline: budget });
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "watchdog must fire near the deadline, not hang"
        );
        assert_eq!(pool.counters().deadline_exceeded, 1);
        pool.run(|_, _| {}).unwrap();
    }

    #[test]
    fn expired_deadline_fails_fast() {
        let pool = WorkerPool::new(2);
        let ran = AtomicU64::new(0);
        let err = pool
            .run_ctl(&RunControl::new().with_deadline(Duration::ZERO), |_, _| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        assert!(matches!(err, RunError::DeadlineExceeded { .. }), "{err:?}");
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn fast_runs_beat_their_deadline() {
        let pool = WorkerPool::new(4);
        for _ in 0..20 {
            pool.run_ctl(
                &RunControl::new().with_deadline(Duration::from_secs(30)),
                |_, _| {},
            )
            .unwrap();
        }
        assert_eq!(pool.counters().deadline_exceeded, 0);
        assert_eq!(pool.counters().runs, 20);
    }

    #[test]
    fn panic_takes_precedence_over_cancellation() {
        quiet_expected_panics();
        let pool = WorkerPool::new(4);
        let token = CancelToken::new();
        let job_token = token.clone();
        // Worker 0 cancels the run; worker 1 *then* panics (after
        // observing the abort, so both causes are definitely present).
        let err = pool
            .run_ctl(&RunControl::new().with_cancel(&token), move |id, abort| {
                if id == 0 {
                    job_token.cancel();
                }
                while !abort.is_aborted() {
                    std::thread::yield_now();
                }
                if id == 1 {
                    panic!("deliberate panic after cancel");
                }
            })
            .unwrap_err();
        match err {
            RunError::Panicked(p) => assert!(p.payload.contains("deliberate"), "{p}"),
            other => panic!("panic must outrank cancellation, got {other:?}"),
        }
        pool.run(|_, _| {}).unwrap();
    }

    #[test]
    fn stale_token_does_not_abort_later_runs() {
        let pool = WorkerPool::new(4);
        let token = CancelToken::new();
        pool.run_ctl(&RunControl::new().with_cancel(&token), |_, _| {})
            .unwrap();
        // Cancelling after the linked run finished must not touch an
        // unrelated follow-up run that uses no token.
        token.cancel();
        let bailed = AtomicU64::new(0);
        pool.run(|_, abort| {
            if abort.is_aborted() {
                bailed.fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap();
        assert_eq!(bailed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn submit_signals_completion_without_joining() {
        let pool = Arc::new(WorkerPool::new(4));
        let hits = Arc::new(AtomicU64::new(0));
        let job_hits = Arc::clone(&hits);
        let handle = pool.submit(RunControl::new(), move |_, _| {
            job_hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(handle.wait(), Ok(()));
        assert!(handle.is_finished());
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        // wait() is idempotent.
        assert_eq!(handle.wait(), Ok(()));
    }

    #[test]
    fn submit_wait_timeout_expires_then_cancel_finishes() {
        let pool = Arc::new(WorkerPool::new(4));
        let handle = pool.submit(RunControl::new(), |_, abort| {
            while !abort.is_aborted() {
                std::thread::yield_now();
            }
        });
        // The job never finishes on its own: the timeout must expire.
        assert_eq!(handle.wait_timeout(Duration::from_millis(30)), None);
        assert!(!handle.is_finished());
        handle.cancel();
        assert_eq!(handle.wait(), Err(RunError::Cancelled));
    }

    #[test]
    fn submit_invokes_the_waker_on_completion() {
        let pool = Arc::new(WorkerPool::new(2));
        let token = CancelToken::new();
        let handle = pool.submit(RunControl::new().with_cancel(&token), |_, abort| {
            while !abort.is_aborted() {
                std::thread::yield_now();
            }
        });
        let woken = Arc::new(AtomicU64::new(0));
        let waker_woken = Arc::clone(&woken);
        handle.on_complete(move || {
            waker_woken.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(woken.load(Ordering::Relaxed), 0, "not complete yet");
        token.cancel();
        assert_eq!(handle.wait(), Err(RunError::Cancelled));
        // The waker runs outside the handle lock, so it may land a beat
        // after wait() returns; give it a bounded moment.
        let waker_deadline = Instant::now() + Duration::from_secs(10);
        while woken.load(Ordering::Relaxed) == 0 && Instant::now() < waker_deadline {
            std::thread::yield_now();
        }
        assert_eq!(woken.load(Ordering::Relaxed), 1);
        // Registering after completion fires immediately.
        let waker_woken = Arc::clone(&woken);
        handle.on_complete(move || {
            waker_woken.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(woken.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn dropping_an_unfinished_handle_cancels_and_quiesces() {
        let pool = Arc::new(WorkerPool::new(4));
        let entered = Arc::new(AtomicU64::new(0));
        let exited = Arc::new(AtomicU64::new(0));
        let (job_entered, job_exited) = (Arc::clone(&entered), Arc::clone(&exited));
        let handle = pool.submit(RunControl::new(), move |_, abort| {
            job_entered.fetch_add(1, Ordering::Relaxed);
            while !abort.is_aborted() {
                std::thread::yield_now();
            }
            job_exited.fetch_add(1, Ordering::Relaxed);
        });
        drop(handle);
        // Drop must have blocked until the run quiesced: every worker
        // that entered the job has also left it.
        assert_eq!(
            entered.load(Ordering::Relaxed),
            exited.load(Ordering::Relaxed)
        );
        assert_eq!(pool.counters().cancelled, 1);
        pool.run(|_, _| {}).unwrap();
    }

    #[test]
    fn submitted_runs_execute_in_order_with_blocking_runs() {
        let pool = Arc::new(WorkerPool::new(3));
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        let h1 = pool.submit(RunControl::new(), move |id, _| {
            if id == 0 {
                l1.lock().unwrap().push(1);
            }
        });
        h1.wait().unwrap();
        pool.run(|id, _| {
            if id == 0 {
                log.lock().unwrap().push(2);
            }
        })
        .unwrap();
        let l3 = Arc::clone(&log);
        let h3 = pool.submit(RunControl::new(), move |id, _| {
            if id == 0 {
                l3.lock().unwrap().push(3);
            }
        });
        h3.wait().unwrap();
        assert_eq!(*log.lock().unwrap(), vec![1, 2, 3]);
        assert_eq!(pool.counters().runs, 3);
    }

    /// Regression guard for `RunHandle::wait_timeout`: after any condvar
    /// wakeup the loop must re-wait with the *remaining* budget, never
    /// the full one, so the total wait is bounded by the budget plus
    /// scheduling slack — not by `budget × wakeups`.
    #[test]
    fn wait_timeout_total_wait_is_bounded() {
        let pool = Arc::new(WorkerPool::new(2));
        let handle = pool.submit(RunControl::new(), |_, abort| {
            while !abort.is_aborted() {
                std::thread::yield_now();
            }
        });
        let budget = Duration::from_millis(80);
        let start = Instant::now();
        // Repeated expiring waits on the same never-finishing handle:
        // each one must consume (roughly) its own budget and no more.
        for _ in 0..3 {
            assert_eq!(handle.wait_timeout(budget), None);
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= budget, "three waits cannot beat one budget");
        assert!(
            elapsed < Duration::from_secs(20),
            "timeouts must expire near their budget, took {elapsed:?}"
        );
        handle.cancel();
        assert_eq!(handle.wait(), Err(RunError::Cancelled));
    }

    /// The watchdog tracks any number of concurrent watches (one per
    /// streamed row with a deadline): the earliest trips first, disarmed
    /// watches never trip, and later watches still fire.
    #[test]
    fn watchdog_handles_concurrent_watches() {
        let pool = WorkerPool::new(2);
        let early = Arc::new(AbortSignal::default());
        let late = Arc::new(AbortSignal::default());
        let disarmed = Arc::new(AbortSignal::default());
        let now = Instant::now();
        let g_early = pool.watchdog_arm(now + Duration::from_millis(30), &early);
        let g_late = pool.watchdog_arm(now + Duration::from_millis(120), &late);
        let g_disarmed = pool.watchdog_arm(now + Duration::from_millis(60), &disarmed);
        assert!(g_early.is_some() && g_late.is_some() && g_disarmed.is_some());
        drop(g_disarmed); // completed before its deadline
        let deadline = Instant::now() + Duration::from_secs(20);
        while early.reason().is_none() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(early.reason(), Some(AbortReason::DeadlineExceeded));
        assert_eq!(disarmed.reason(), None, "disarmed watch must not trip");
        while late.reason().is_none() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(late.reason(), Some(AbortReason::DeadlineExceeded));
        assert_eq!(disarmed.reason(), None);
        drop(g_early);
        drop(g_late);
    }

    #[test]
    fn counters_track_panics() {
        quiet_expected_panics();
        let pool = WorkerPool::new(2);
        let _ = pool.run(|_, _| panic!("deliberate counter panic"));
        pool.run(|_, _| {}).unwrap();
        let c = pool.counters();
        assert_eq!(c.runs, 2);
        assert_eq!(c.panicked, 1);
        assert_eq!(c.cancelled, 0);
        assert_eq!(c.deadline_exceeded, 0);
    }
}
