//! A persistent worker pool: threads are spawned once and reused across
//! `run()` calls.
//!
//! The paper's Phase 2 pipeline assumes *resident* execution units — GPU
//! blocks that are already scheduled when chunks start flowing. The seed
//! CPU mapping instead paid a full `std::thread::scope` spawn/join plus a
//! bounded-channel handshake on every call, which dominates small and
//! medium runs and caps steady-state throughput. This pool keeps the
//! workers parked on a condvar between calls:
//!
//! - [`WorkerPool::new`] spawns `width - 1` OS threads (the thread that
//!   calls [`WorkerPool::run`] participates as worker 0, so `width == 1`
//!   spawns nothing and runs jobs inline). Spawn failures degrade
//!   gracefully: the pool keeps the workers that did spawn, [`width`]
//!   shrinks accordingly, and the missing workers are retried lazily on
//!   every later submission.
//! - [`WorkerPool::run`] publishes one type-erased job, wakes the workers,
//!   executes the job on the calling thread too, and blocks until every
//!   worker has finished. Job submission is serialized internally, so a
//!   pool shared by several runners is safe (calls queue up).
//! - Work distribution inside a job is the callers' business; the runner
//!   uses an atomic ticket counter over chunk indices, which preserves the
//!   in-order claiming the decoupled look-back progress argument needs
//!   (a chunk is only claimed after every earlier chunk has been claimed).
//!
//! # Failure model
//!
//! Every job invocation — on the spawned workers *and* on the calling
//! thread — runs under `catch_unwind`. The first panic is recorded, the
//! per-run [`AbortSignal`] (passed to every job invocation) is tripped so
//! cooperative loops and spin waits can bail out, and [`WorkerPool::run`]
//! returns `Err(`[`WorkerPanic`]`)` once every worker has quiesced. A
//! worker thread never dies from a job panic; the one exception is the
//! [`WorkerExit`] sentinel payload (used by fault injection to simulate
//! thread death), after which the dead worker is respawned lazily on the
//! next submission. The pool stays fully reusable after any failure.
//!
//! [`width`]: WorkerPool::width
//!
//! # Safety
//!
//! `run` erases the job closure's lifetime to park it in shared state the
//! worker threads can reach. This is sound because of an unwind-ordering
//! invariant: **no exit path of `run` — including the caller's own closure
//! invocation panicking — returns or resumes an unwind before every clone
//! of the erased closure has been dropped.** Concretely:
//!
//! - each worker drops its clone *before* reporting completion, and the
//!   decrement that reports completion sits in a drop guard, so it happens
//!   even if the panic-recording machinery itself unwinds;
//! - the calling thread invokes its clone under `catch_unwind`, and on a
//!   caller-side panic it trips the abort signal and still *waits for
//!   `running` to reach zero* before converting the panic into an error —
//!   the caller's stack frame (which the closure borrows) cannot be torn
//!   down while any worker may still hold a clone;
//! - the shared job slot is cleared under the lock before `run` returns.
//!
//! Together these guarantee the closure (and everything it borrows from
//! the caller's stack) never outlives the `run` call, on the success path
//! and on every failure path.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Locks a mutex, recovering from poisoning.
///
/// With every job invocation wrapped in `catch_unwind`, a poisoned pool
/// mutex can only mean a panic in the tiny bookkeeping sections below —
/// whose state is valid at every intermediate point — so recovering the
/// guard is always sound and keeps one panic from masquerading as a
/// second, unrelated one.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Resolves a configured thread count: `0` means one worker per available
/// CPU (falling back to 4 when the CPU count is unknown).
///
/// Shared by [`crate::ParallelRunner`] and [`crate::BatchRunner`] so the
/// two fallbacks cannot drift.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        requested
    }
}

/// Per-run cooperative cancellation flag, passed to every job invocation.
///
/// The pool trips it when any worker panics; jobs may also trip it
/// themselves (e.g. the runner's finiteness check). Ticket loops and spin
/// waits are expected to poll [`is_aborted`](Self::is_aborted) and bail
/// out promptly — that is what turns a dead worker into a clean error
/// instead of a hang in the decoupled look-back pipeline.
#[derive(Debug, Default)]
pub struct AbortSignal(AtomicBool);

impl AbortSignal {
    /// Whether this run has been aborted (a single relaxed load — cheap
    /// enough for per-chunk and per-spin polling).
    #[inline]
    pub fn is_aborted(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Trips the abort flag; every cooperating loop in the current run
    /// will bail out at its next poll.
    pub fn trigger(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.0.store(false, Ordering::Relaxed);
    }
}

/// The first panic captured during a [`WorkerPool::run`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Id of the worker whose job invocation panicked (`0` is the calling
    /// thread).
    pub worker: usize,
    /// The panic payload, stringified.
    pub payload: String,
}

impl WorkerPanic {
    pub(crate) fn from_payload(worker: usize, payload: &(dyn Any + Send)) -> Self {
        let payload = if payload.is::<WorkerExit>() {
            "worker exited (injected thread death)".to_string()
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        WorkerPanic { worker, payload }
    }

    /// Converts into the engine-level error the runners surface.
    pub fn into_engine_error(self) -> plr_core::error::EngineError {
        plr_core::error::EngineError::WorkerPanicked {
            worker: self.worker,
            payload: self.payload,
        }
    }
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker {} panicked: {}", self.worker, self.payload)
    }
}

impl std::error::Error for WorkerPanic {}

/// Sentinel panic payload that makes a pool worker exit its loop after
/// reporting, simulating thread death (the execution-unit loss the
/// decoupled look-back liveness argument must survive).
///
/// Used by the `fault-inject` harness via `std::panic::panic_any`; the
/// dead worker is respawned lazily on the pool's next submission.
#[derive(Debug)]
pub struct WorkerExit;

/// The type-erased job executed by every worker; the arguments are the
/// worker id in `0..width` and the run's abort signal.
type Job = BorrowedJob<'static>;

/// [`Job`] before its lifetime is erased in [`WorkerPool::run`].
type BorrowedJob<'a> = Arc<dyn Fn(usize, &AbortSignal) + Send + Sync + 'a>;

struct PoolState {
    /// The current job, present only while a generation is in flight.
    job: Option<Job>,
    /// Bumped once per submitted job so a worker never runs one twice.
    generation: u64,
    /// Spawned workers still executing the current job.
    running: usize,
    /// Spawned workers currently inside their loop (dead ones excluded).
    alive: usize,
    /// Worker ids that exited their loop (via [`WorkerExit`]); joined and
    /// respawned on the next submission.
    dead: Vec<usize>,
    /// First panic captured in the current generation.
    panic: Option<WorkerPanic>,
    /// Set by `Drop` to retire the workers.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signals workers that a new job (or shutdown) is available.
    work_ready: Condvar,
    /// Signals the submitter that `running` reached zero.
    work_done: Condvar,
    /// Per-run cooperative cancellation flag (reset at each submission).
    abort: AbortSignal,
    /// Cumulative count of workers respawned after death or a failed
    /// earlier spawn; see [`WorkerPool::recovered_workers`].
    recovered: AtomicU64,
}

impl Shared {
    /// Records the first panic of the current generation and trips the
    /// abort signal so the surviving workers bail out of their loops.
    fn record_panic(&self, worker: usize, payload: &(dyn Any + Send)) {
        self.abort.trigger();
        let mut state = lock_recover(&self.state);
        if state.panic.is_none() {
            state.panic = Some(WorkerPanic::from_payload(worker, payload));
        }
    }
}

/// Per-worker slots; index `i` holds the handle for worker id `i + 1`
/// (`None` while that worker could not be spawned). Doubles as the
/// submission lock: holding it serializes `run` calls.
struct Workers {
    handles: Vec<Option<JoinHandle<()>>>,
}

/// A fixed-width pool of persistent worker threads (see the module docs).
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Mutex<Workers>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("width", &self.width())
            .finish()
    }
}

fn spawn_worker(shared: &Arc<Shared>, id: usize) -> std::io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("plr-worker-{id}"))
        .spawn(move || worker_loop(&shared, id))
}

impl WorkerPool {
    /// Creates a pool of total width `width` (the calling thread counts as
    /// one worker, so `width - 1` threads are spawned).
    ///
    /// Thread-spawn failures are not fatal: the pool keeps whatever did
    /// spawn (worst case only the calling thread), [`width`](Self::width)
    /// reports the effective count, and the missing workers are retried on
    /// every later [`run`](Self::run) submission.
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                generation: 0,
                running: 0,
                alive: 0,
                dead: Vec::new(),
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            abort: AbortSignal::default(),
            recovered: AtomicU64::new(0),
        });
        let handles: Vec<Option<JoinHandle<()>>> = (1..width)
            .map(|id| spawn_worker(&shared, id).ok())
            .collect();
        lock_recover(&shared.state).alive = handles.iter().flatten().count();
        WorkerPool {
            shared,
            workers: Mutex::new(Workers { handles }),
        }
    }

    /// Effective worker count, including the thread that calls
    /// [`run`](Self::run) (live spawned workers plus one). Shrinks when a
    /// spawn failed or a worker died, grows back when a later submission
    /// respawns it.
    pub fn width(&self) -> usize {
        lock_recover(&self.shared.state).alive + 1
    }

    /// Cumulative number of workers revived by lazy respawning — dead
    /// workers joined and replaced, or initially-failed spawns that later
    /// succeeded.
    pub fn recovered_workers(&self) -> u64 {
        self.shared.recovered.load(Ordering::Relaxed)
    }

    /// Reaps dead workers and retries every missing slot; called at each
    /// submission with the submission lock held.
    fn heal(&self, workers: &mut Workers) {
        let dead = {
            let mut state = lock_recover(&self.shared.state);
            std::mem::take(&mut state.dead)
        };
        for id in dead {
            // The worker marked itself dead as its final locked action, so
            // the join only waits out thread teardown.
            if let Some(handle) = workers.handles[id - 1].take() {
                let _ = handle.join();
            }
        }
        for (i, slot) in workers.handles.iter_mut().enumerate() {
            if slot.is_none() {
                if let Ok(handle) = spawn_worker(&self.shared, i + 1) {
                    *slot = Some(handle);
                    lock_recover(&self.shared.state).alive += 1;
                    self.shared.recovered.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Runs `job(worker_id, abort)` on every worker — ids `1..width` on
    /// the pool threads, id `0` on the calling thread — returning once all
    /// have finished.
    ///
    /// # Errors
    ///
    /// Returns the first [`WorkerPanic`] when any invocation (including
    /// the calling thread's) panicked. The run's [`AbortSignal`] is
    /// tripped as soon as the panic is caught so cooperative loops bail
    /// out; `run` still waits for every worker to finish before returning
    /// (see the module-level safety discussion), and the pool remains
    /// reusable afterwards.
    pub fn run<F>(&self, job: F) -> Result<(), WorkerPanic>
    where
        F: Fn(usize, &AbortSignal) + Send + Sync,
    {
        let mut workers = lock_recover(&self.workers);
        self.heal(&mut workers);
        let live = lock_recover(&self.shared.state).alive;
        self.shared.abort.reset();
        if live == 0 {
            // No spawned workers: run inline. Panics still become errors
            // so callers see one failure surface regardless of width.
            return match catch_unwind(AssertUnwindSafe(|| job(0, &self.shared.abort))) {
                Ok(()) => Ok(()),
                Err(payload) => Err(WorkerPanic::from_payload(0, payload.as_ref())),
            };
        }
        // SAFETY: see the module docs — every clone of the erased Arc is
        // dropped before this function returns on every exit path
        // (including panics), so the closure's borrows stay within this
        // frame.
        let erased: BorrowedJob<'_> = Arc::new(job);
        let erased: Job = unsafe { std::mem::transmute(erased) };
        {
            let mut state = lock_recover(&self.shared.state);
            debug_assert!(state.job.is_none() && state.running == 0);
            state.job = Some(Arc::clone(&erased));
            state.generation += 1;
            state.running = live;
            state.panic = None;
            self.shared.work_ready.notify_all();
        }
        let caller = catch_unwind(AssertUnwindSafe(|| erased(0, &self.shared.abort)));
        if caller.is_err() {
            // Workers may be spinning on carries this thread will never
            // publish; make them bail before we wait on them.
            self.shared.abort.trigger();
        }
        drop(erased);
        let mut state = lock_recover(&self.shared.state);
        while state.running > 0 {
            state = self
                .shared
                .work_done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.job = None;
        let worker_panic = state.panic.take();
        drop(state);
        // All clones are dead; only now is it safe to surface any panic.
        match caller {
            Err(payload) => Err(WorkerPanic::from_payload(0, payload.as_ref())),
            Ok(()) => match worker_panic {
                Some(p) => Err(p),
                None => Ok(()),
            },
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = lock_recover(&self.shared.state);
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        let mut workers = lock_recover(&self.workers);
        for handle in workers.handles.iter_mut().filter_map(Option::take) {
            let _ = handle.join();
        }
    }
}

/// Drop guard that reports one worker's completion: decrements `running`
/// (waking the submitter at zero) even if the code between its creation
/// and its drop unwinds, and — when the worker is exiting — retires it in
/// the same critical section, so a submitter can never observe the
/// decrement without the death.
struct CompletionGuard<'a> {
    shared: &'a Shared,
    id: usize,
    exiting: bool,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        let mut state = lock_recover(&self.shared.state);
        state.running -= 1;
        if self.exiting {
            state.alive -= 1;
            state.dead.push(self.id);
        }
        if state.running == 0 {
            self.shared.work_done.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared, id: usize) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut state = lock_recover(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation != seen_generation {
                    if let Some(job) = &state.job {
                        seen_generation = state.generation;
                        break Arc::clone(job);
                    }
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let mut guard = CompletionGuard {
            shared,
            id,
            exiting: false,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| job(id, &shared.abort)));
        // The clone must die before completion is reported: `run` treats
        // `running == 0` as "no live borrows of the caller's stack".
        drop(job);
        let exiting = match outcome {
            Ok(()) => false,
            Err(payload) => {
                // Record before the guard's decrement so the submitter
                // sees the panic the moment `running` hits zero.
                shared.record_panic(id, payload.as_ref());
                payload.is::<WorkerExit>()
            }
        };
        guard.exiting = exiting;
        drop(guard);
        if exiting {
            return;
        }
    }
}

/// A `Send + Sync` wrapper for a raw base pointer, so pool jobs can carve
/// disjoint `&mut` chunks out of one buffer by ticket index.
///
/// The field is private on purpose: closures must capture the wrapper
/// itself (not the raw pointer, which edition-2021 disjoint capture would
/// otherwise grab field-by-field, losing the `Send + Sync` impls).
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    pub(crate) fn ptr(self) -> *mut T {
        self.0
    }
}

// SAFETY: the wrapper only moves the pointer between threads; callers are
// responsible for deriving disjoint slices from it (the ticket counter
// guarantees each chunk index is claimed exactly once).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// An atomic take-a-number dispenser over `0..limit`; claims are strictly
/// increasing, which is what keeps the look-back pipeline deadlock-free.
pub(crate) struct Tickets {
    next: AtomicUsize,
    limit: usize,
}

impl Tickets {
    pub(crate) fn new(limit: usize) -> Self {
        Tickets {
            next: AtomicUsize::new(0),
            limit,
        }
    }

    /// Claims the next index, or `None` when all are taken.
    pub(crate) fn claim(&self) -> Option<usize> {
        let t = self.next.fetch_add(1, Ordering::Relaxed);
        (t < self.limit).then_some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Silences the default panic-hook output for the injected panics
    /// these tests provoke on purpose (real failures still print).
    fn quiet_expected_panics() {
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let payload = info.payload();
                let s = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                    .unwrap_or("");
                if !s.contains("deliberate") && !payload.is::<WorkerExit>() {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn resolve_threads_passes_nonzero_through() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn all_workers_run_the_job_once() {
        let pool = WorkerPool::new(4);
        let hits = AtomicU64::new(0);
        let ids = Mutex::new(Vec::new());
        pool.run(|id, _abort| {
            hits.fetch_add(1, Ordering::Relaxed);
            ids.lock().unwrap().push(id);
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        let mut ids = ids.into_inner().unwrap();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn repeated_runs_reuse_the_same_threads() {
        let pool = WorkerPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(|_, _| {
                total.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn width_one_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.width(), 1);
        let mut hit = false;
        let hit_ref = std::sync::Mutex::new(&mut hit);
        pool.run(|id, _abort| {
            assert_eq!(id, 0);
            **hit_ref.lock().unwrap() = true;
        })
        .unwrap();
        assert!(hit);
    }

    #[test]
    fn jobs_may_borrow_the_callers_stack() {
        let pool = WorkerPool::new(4);
        let mut data = vec![0u64; 1024];
        let base = SendPtr::new(data.as_mut_ptr());
        let tickets = Tickets::new(16);
        pool.run(|_, _| {
            while let Some(t) = tickets.claim() {
                // SAFETY: tickets are unique, so the 64-element chunks are
                // disjoint.
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(t * 64), 64) };
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (t * 64 + i) as u64;
                }
            }
        })
        .unwrap();
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn tickets_are_exhaustive_and_unique() {
        let pool = WorkerPool::new(8);
        let tickets = Tickets::new(1000);
        let seen: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(|_, _| {
            while let Some(t) = tickets.claim() {
                seen[t].fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap();
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dropping_the_pool_joins_cleanly() {
        let pool = WorkerPool::new(4);
        pool.run(|_, _| {}).unwrap();
        drop(pool);
    }

    #[test]
    fn worker_panic_returns_err_and_pool_survives() {
        quiet_expected_panics();
        let pool = WorkerPool::new(4);
        for round in 0..3 {
            let tickets = Tickets::new(64);
            let err = pool
                .run(|_, _| {
                    while let Some(t) = tickets.claim() {
                        if t == 13 {
                            panic!("deliberate pool test panic {round}");
                        }
                    }
                })
                .unwrap_err();
            assert!(err.payload.contains("deliberate"), "{err}");
            // A fault-free run on the same pool must still work.
            let hits = AtomicU64::new(0);
            pool.run(|_, _| {
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
            assert_eq!(hits.load(Ordering::Relaxed), 4);
        }
    }

    #[test]
    fn caller_panic_waits_for_workers_then_errors() {
        quiet_expected_panics();
        let pool = WorkerPool::new(4);
        // The job borrows this stack buffer; worker 0 (the caller) panics
        // while spawned workers are still writing through the pointer. The
        // unwind-ordering invariant says `run` must not return before they
        // finish — otherwise these writes would be use-after-free.
        let mut data = vec![0u64; 4096];
        let base = SendPtr::new(data.as_mut_ptr());
        let tickets = Tickets::new(64);
        let err = pool
            .run(|id, _abort| {
                if id == 0 {
                    panic!("deliberate caller panic");
                }
                while let Some(t) = tickets.claim() {
                    // SAFETY: unique tickets, disjoint 64-element chunks.
                    let chunk =
                        unsafe { std::slice::from_raw_parts_mut(base.ptr().add(t * 64), 64) };
                    for v in chunk.iter_mut() {
                        *v = 7;
                    }
                    std::thread::yield_now();
                }
            })
            .unwrap_err();
        assert_eq!(err.worker, 0);
        assert!(err.payload.contains("deliberate caller panic"));
        // Every chunk was either fully written or untouched — and the
        // buffer is still valid to read, which is the point.
        assert!(data.chunks(64).all(|c| c.iter().all(|&v| v == 7 || v == 0)));
        // The pool is reusable after a caller-side panic.
        pool.run(|_, _| {}).unwrap();
    }

    #[test]
    fn inline_pool_converts_panics_to_errors() {
        quiet_expected_panics();
        let pool = WorkerPool::new(1);
        let err = pool
            .run(|_, _| panic!("deliberate inline panic"))
            .unwrap_err();
        assert_eq!(err.worker, 0);
        assert!(err.payload.contains("deliberate inline panic"));
        pool.run(|_, _| {}).unwrap();
    }

    #[test]
    fn panic_trips_the_abort_signal_for_other_workers() {
        quiet_expected_panics();
        let pool = WorkerPool::new(4);
        let bailed = AtomicU64::new(0);
        let err = pool
            .run(|id, abort| {
                if id == 1 {
                    panic!("deliberate abort-signal panic");
                }
                // Everyone else waits for the abort instead of spinning
                // forever — the cooperative protocol under test.
                while !abort.is_aborted() {
                    std::thread::yield_now();
                }
                bailed.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        assert!(err.payload.contains("abort-signal"));
        assert_eq!(bailed.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn worker_exit_is_respawned_on_next_submission() {
        quiet_expected_panics();
        let pool = WorkerPool::new(4);
        assert_eq!(pool.width(), 4);
        let err = pool
            .run(|id, _abort| {
                if id == 2 {
                    std::panic::panic_any(WorkerExit);
                }
            })
            .unwrap_err();
        assert_eq!(err.worker, 2);
        // The worker is gone until the next submission heals the pool.
        assert_eq!(pool.width(), 3);
        let hits = AtomicU64::new(0);
        pool.run(|_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        assert_eq!(pool.width(), 4);
        assert_eq!(pool.recovered_workers(), 1);
    }

    #[test]
    fn first_panic_wins() {
        quiet_expected_panics();
        let pool = WorkerPool::new(4);
        let err = pool
            .run(|id, _abort| {
                if id != 0 {
                    panic!("deliberate panic from worker {id}");
                }
            })
            .unwrap_err();
        assert_ne!(err.worker, 0);
        assert!(err.payload.contains("deliberate panic from worker"));
        pool.run(|_, _| {}).unwrap();
    }
}
