//! A persistent worker pool: threads are spawned once and reused across
//! `run()` calls.
//!
//! The paper's Phase 2 pipeline assumes *resident* execution units — GPU
//! blocks that are already scheduled when chunks start flowing. The seed
//! CPU mapping instead paid a full `std::thread::scope` spawn/join plus a
//! bounded-channel handshake on every call, which dominates small and
//! medium runs and caps steady-state throughput. This pool keeps the
//! workers parked on a condvar between calls:
//!
//! - [`WorkerPool::new`] spawns `width - 1` OS threads (the thread that
//!   calls [`WorkerPool::run`] participates as worker 0, so `width == 1`
//!   spawns nothing and runs jobs inline with zero synchronization).
//! - [`WorkerPool::run`] publishes one type-erased job, wakes the workers,
//!   executes the job on the calling thread too, and blocks until every
//!   worker has finished. Job submission is serialized internally, so a
//!   pool shared by several runners is safe (calls queue up).
//! - Work distribution inside a job is the callers' business; the runner
//!   uses an atomic ticket counter over chunk indices, which preserves the
//!   in-order claiming the decoupled look-back progress argument needs
//!   (a chunk is only claimed after every earlier chunk has been claimed).
//!
//! # Safety
//!
//! `run` erases the job closure's lifetime to park it in shared state the
//! worker threads can reach. This is sound because `run` does not return
//! until every clone of the erased closure has been dropped: the workers
//! drop theirs before reporting completion, and the shared slot is cleared
//! under the lock before `run` returns — so the closure (and everything it
//! borrows from the caller's stack) never outlives the call.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Resolves a configured thread count: `0` means one worker per available
/// CPU (falling back to 4 when the CPU count is unknown).
///
/// Shared by [`crate::ParallelRunner`] and [`crate::BatchRunner`] so the
/// two fallbacks cannot drift.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        requested
    }
}

/// The type-erased job executed by every worker; the argument is the
/// worker id in `0..width`.
type Job = Arc<dyn Fn(usize) + Send + Sync + 'static>;

struct PoolState {
    /// The current job, present only while a generation is in flight.
    job: Option<Job>,
    /// Bumped once per submitted job so a worker never runs one twice.
    generation: u64,
    /// Spawned workers still executing the current job.
    running: usize,
    /// Set by `Drop` to retire the workers.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signals workers that a new job (or shutdown) is available.
    work_ready: Condvar,
    /// Signals the submitter that `running` reached zero.
    work_done: Condvar,
}

/// A fixed-width pool of persistent worker threads (see the module docs).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes job submission so concurrent `run` calls cannot overlap.
    submit: Mutex<()>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("width", &self.width())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool of total width `width` (the calling thread counts as
    /// one worker, so `width - 1` threads are spawned).
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                generation: 0,
                running: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (1..width)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("plr-worker-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawning pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            submit: Mutex::new(()),
        }
    }

    /// Total worker count including the thread that calls [`run`](Self::run).
    pub fn width(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `job(worker_id)` on every worker — ids `1..width` on the pool
    /// threads, id `0` on the calling thread — returning once all have
    /// finished.
    pub fn run<F>(&self, job: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if self.handles.is_empty() {
            job(0);
            return;
        }
        let _submission = self.submit.lock().unwrap();
        // SAFETY: see the module docs — every clone of the erased Arc is
        // dropped before this function returns, so the closure's borrows
        // stay within this frame.
        let erased: Arc<dyn Fn(usize) + Send + Sync + '_> = Arc::new(job);
        let erased: Job = unsafe { std::mem::transmute(erased) };
        {
            let mut state = self.shared.state.lock().unwrap();
            debug_assert!(state.job.is_none() && state.running == 0);
            state.job = Some(Arc::clone(&erased));
            state.generation += 1;
            state.running = self.handles.len();
            self.shared.work_ready.notify_all();
        }
        erased(0);
        drop(erased);
        let mut state = self.shared.state.lock().unwrap();
        while state.running > 0 {
            state = self.shared.work_done.wait(state).unwrap();
        }
        state.job = None;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, id: usize) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation != seen_generation {
                    if let Some(job) = &state.job {
                        seen_generation = state.generation;
                        break Arc::clone(job);
                    }
                }
                state = shared.work_ready.wait(state).unwrap();
            }
        };
        job(id);
        // The clone must die before completion is reported: `run` treats
        // `running == 0` as "no live borrows of the caller's stack".
        drop(job);
        let mut state = shared.state.lock().unwrap();
        state.running -= 1;
        if state.running == 0 {
            shared.work_done.notify_all();
        }
    }
}

/// A `Send + Sync` wrapper for a raw base pointer, so pool jobs can carve
/// disjoint `&mut` chunks out of one buffer by ticket index.
///
/// The field is private on purpose: closures must capture the wrapper
/// itself (not the raw pointer, which edition-2021 disjoint capture would
/// otherwise grab field-by-field, losing the `Send + Sync` impls).
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    pub(crate) fn ptr(self) -> *mut T {
        self.0
    }
}

// SAFETY: the wrapper only moves the pointer between threads; callers are
// responsible for deriving disjoint slices from it (the ticket counter
// guarantees each chunk index is claimed exactly once).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// An atomic take-a-number dispenser over `0..limit`; claims are strictly
/// increasing, which is what keeps the look-back pipeline deadlock-free.
pub(crate) struct Tickets {
    next: AtomicUsize,
    limit: usize,
}

impl Tickets {
    pub(crate) fn new(limit: usize) -> Self {
        Tickets {
            next: AtomicUsize::new(0),
            limit,
        }
    }

    /// Claims the next index, or `None` when all are taken.
    pub(crate) fn claim(&self) -> Option<usize> {
        let t = self.next.fetch_add(1, Ordering::Relaxed);
        (t < self.limit).then_some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn resolve_threads_passes_nonzero_through() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn all_workers_run_the_job_once() {
        let pool = WorkerPool::new(4);
        let hits = AtomicU64::new(0);
        let ids = Mutex::new(Vec::new());
        pool.run(|id| {
            hits.fetch_add(1, Ordering::Relaxed);
            ids.lock().unwrap().push(id);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        let mut ids = ids.into_inner().unwrap();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn repeated_runs_reuse_the_same_threads() {
        let pool = WorkerPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn width_one_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.width(), 1);
        let mut hit = false;
        let hit_ref = std::sync::Mutex::new(&mut hit);
        pool.run(|id| {
            assert_eq!(id, 0);
            **hit_ref.lock().unwrap() = true;
        });
        assert!(hit);
    }

    #[test]
    fn jobs_may_borrow_the_callers_stack() {
        let pool = WorkerPool::new(4);
        let mut data = vec![0u64; 1024];
        let base = SendPtr::new(data.as_mut_ptr());
        let tickets = Tickets::new(16);
        pool.run(|_| {
            while let Some(t) = tickets.claim() {
                // SAFETY: tickets are unique, so the 64-element chunks are
                // disjoint.
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(t * 64), 64) };
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (t * 64 + i) as u64;
                }
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn tickets_are_exhaustive_and_unique() {
        let pool = WorkerPool::new(8);
        let tickets = Tickets::new(1000);
        let seen: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(|_| {
            while let Some(t) = tickets.claim() {
                seen[t].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dropping_the_pool_joins_cleanly() {
        let pool = WorkerPool::new(4);
        pool.run(|_| {});
        drop(pool);
    }
}
