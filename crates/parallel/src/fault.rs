//! Deterministic fault injection for the parallel execution layer
//! (compiled only with the `fault-inject` cargo feature).
//!
//! The decoupled look-back liveness argument rests on every execution
//! unit eventually publishing its carries; this harness lets tests kill
//! any stage of the pipeline on purpose — a specific chunk, a specific
//! worker, or the K-th consultation — and assert that the pool converts
//! the death into [`EngineError::WorkerPanicked`] instead of hanging, and
//! that it stays reusable afterwards.
//!
//! A process-global, one-shot [`FaultPlan`] is armed with [`arm`] and
//! consulted by the instrumented sites in the runner and batch executor
//! via [`check`]. When no plan is armed, `check` is a single mutex lock
//! and an early return — inert by construction (the tier-1 proptest
//! suites run under this feature in CI to prove it). The plan disarms
//! itself the moment it fires, so the very next run on the same pool is
//! fault-free.
//!
//! [`EngineError::WorkerPanicked`]: plr_core::error::EngineError::WorkerPanicked

use crate::pool::{lock_recover, AbortSignal, WorkerExit};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Which instrumented pipeline stage a plan targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Just before a chunk's (or batch row's) local solve.
    Solve,
    /// Just before a chunk's look-back resolution — the pipeline
    /// strategy's variable look-back, or the two-pass strategy's
    /// sequential carry chain (consulted with worker id 0 there).
    Lookback,
    /// At the start of [`RunHandle::wait`] / [`RunHandle::wait_timeout`]
    /// and their [`RowHandle`] counterparts — the *observer* side of a
    /// non-blocking submission (consulted with worker id 0 and no abort
    /// signal: a stalled waiter must not be rescued by the run's own
    /// cancellation; `chunk` is 0 for run handles, the row index for row
    /// handles).
    ///
    /// [`RunHandle::wait`]: crate::RunHandle::wait
    /// [`RunHandle::wait_timeout`]: crate::RunHandle::wait_timeout
    /// [`RowHandle`]: crate::RowHandle
    HandleWait,
    /// At the top of each per-row dispatch: the long-rows path of
    /// [`BatchRunner::run_rows`] (cached intra-row runner; worker id 0,
    /// row index as `chunk`) and each popped row of a [`RowStream`]
    /// (solving worker's id, submission index as `chunk`, the *per-row*
    /// abort signal — so a Delay here ends early when that one row is
    /// cancelled or deadline-tripped, not only when the stream dies).
    ///
    /// [`BatchRunner::run_rows`]: crate::BatchRunner::run_rows
    /// [`RowStream`]: crate::RowStream
    Row,
}

/// What happens when a plan fires.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// Panic with a recognizable message; the pool catches it and the run
    /// returns [`EngineError::WorkerPanicked`].
    ///
    /// [`EngineError::WorkerPanicked`]: plr_core::error::EngineError::WorkerPanicked
    Panic,
    /// Panic with the [`WorkerExit`] sentinel: the worker thread leaves
    /// its loop entirely (simulated thread death), and the pool respawns
    /// it on the next submission.
    ExitWorker,
    /// Sleep instead of failing — stalls one pipeline stage so tests can
    /// drive successors into their spin-wait paths, or wedge a run long
    /// enough for cancellation/deadline machinery to fire.
    ///
    /// The sleep is abort-aware: when the instrumented site passes the
    /// run's [`AbortSignal`] to [`check`], the stall ends early (within a
    /// few milliseconds) once the run is aborted — so a delay-wedged
    /// worker still honors the pool's quiesce-before-return invariant
    /// instead of pinning the run for the full planned duration.
    Delay(Duration),
}

/// A one-shot fault: *where* ([`FaultSite`]) plus optional *when* filters.
/// Filters compose conjunctively; `None` means "any". The plan fires the
/// first time every filter matches, then disarms itself.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The instrumented stage to fire at.
    pub site: FaultSite,
    /// Fire only for this worker id (`0` is the calling thread).
    pub worker: Option<usize>,
    /// Fire only for this chunk index (row index on the batch path).
    pub chunk: Option<usize>,
    /// Fire only on the K-th (1-based) consultation that passes the other
    /// filters — "call K" targeting for sites a worker hits repeatedly.
    pub nth_call: Option<u64>,
    /// What to do when the plan fires.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// A panic at `site` on chunk `chunk`, any worker, first consultation.
    pub fn panic_at_chunk(site: FaultSite, chunk: usize) -> Self {
        FaultPlan {
            site,
            worker: None,
            chunk: Some(chunk),
            nth_call: None,
            kind: FaultKind::Panic,
        }
    }

    /// A panic at `site` the first time worker `worker` consults it.
    pub fn panic_at_worker(site: FaultSite, worker: usize) -> Self {
        FaultPlan {
            site,
            worker: Some(worker),
            chunk: None,
            nth_call: None,
            kind: FaultKind::Panic,
        }
    }

    /// A panic at `site` on the K-th (1-based) consultation by any worker.
    pub fn panic_at_call(site: FaultSite, k: u64) -> Self {
        FaultPlan {
            site,
            worker: None,
            chunk: None,
            nth_call: Some(k),
            kind: FaultKind::Panic,
        }
    }

    /// Simulated thread death at `site` on chunk `chunk`.
    pub fn exit_at_chunk(site: FaultSite, chunk: usize) -> Self {
        FaultPlan {
            kind: FaultKind::ExitWorker,
            ..Self::panic_at_chunk(site, chunk)
        }
    }

    /// A stall of `delay` at `site` on chunk `chunk` (spin-path coverage).
    pub fn delay_at_chunk(site: FaultSite, chunk: usize, delay: Duration) -> Self {
        FaultPlan {
            kind: FaultKind::Delay(delay),
            ..Self::panic_at_chunk(site, chunk)
        }
    }
}

struct Armed {
    plan: FaultPlan,
    /// Consultations that passed the worker/chunk filters so far.
    matching_calls: u64,
}

static PLAN: Mutex<Option<Armed>> = Mutex::new(None);

/// Arms `plan` process-wide, replacing any previously armed plan. Tests
/// sharing a process must serialize around arming (the plan is global).
pub fn arm(plan: FaultPlan) {
    *lock_recover(&PLAN) = Some(Armed {
        plan,
        matching_calls: 0,
    });
}

/// Disarms any armed plan (idempotent). Fired plans disarm themselves.
pub fn disarm() {
    *lock_recover(&PLAN) = None;
}

/// Whether a plan is currently armed (i.e. has not fired yet).
pub fn is_armed() -> bool {
    lock_recover(&PLAN).is_some()
}

/// Consulted by the instrumented sites; fires (and disarms) the armed
/// plan when every filter matches, otherwise returns immediately.
///
/// `abort` is the consulting run's abort signal, when the site has one:
/// a firing [`FaultKind::Delay`] polls it so an injected stall ends
/// early once the run is cancelled, deadline-tripped, or panicking
/// elsewhere. Pass `None` at sites outside any run (e.g. handle waits).
///
/// # Panics
///
/// On purpose, when a [`FaultKind::Panic`] or [`FaultKind::ExitWorker`]
/// plan fires — that is the injected fault.
pub fn check(site: FaultSite, worker: usize, chunk: usize, abort: Option<&AbortSignal>) {
    let kind = {
        let mut guard = lock_recover(&PLAN);
        let Some(armed) = guard.as_mut() else { return };
        if armed.plan.site != site {
            return;
        }
        if armed.plan.worker.is_some_and(|w| w != worker) {
            return;
        }
        if armed.plan.chunk.is_some_and(|c| c != chunk) {
            return;
        }
        armed.matching_calls += 1;
        if armed
            .plan
            .nth_call
            .is_some_and(|k| armed.matching_calls < k)
        {
            return;
        }
        // One-shot: disarm before firing so the pool's recovery path (and
        // any rerun) sees an inert harness.
        guard.take().expect("armed above").plan.kind
    };
    match kind {
        FaultKind::Panic => {
            panic!("injected fault at {site:?} (worker {worker}, chunk {chunk})")
        }
        FaultKind::ExitWorker => std::panic::panic_any(WorkerExit),
        FaultKind::Delay(d) => {
            // Sleep in short slices so an aborted run reclaims the wedged
            // worker promptly (see `FaultKind::Delay`).
            const SLICE: Duration = Duration::from_millis(2);
            let until = Instant::now() + d;
            loop {
                if abort.is_some_and(AbortSignal::is_aborted) {
                    return;
                }
                let now = Instant::now();
                if now >= until {
                    return;
                }
                std::thread::sleep(SLICE.min(until - now));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The plan is process-global; tests touching it must not interleave.
    static SERIAL: Mutex<()> = Mutex::new(());

    // Unit tests for the matching logic run the real `check` but with
    // Delay plans (zero duration), so nothing panics and the global plan
    // contention stays trivial.
    fn delay_plan(site: FaultSite) -> FaultPlan {
        FaultPlan {
            site,
            worker: None,
            chunk: None,
            nth_call: None,
            kind: FaultKind::Delay(Duration::ZERO),
        }
    }

    #[test]
    fn plans_are_one_shot_and_filtered() {
        let _serial = lock_recover(&SERIAL);
        arm(FaultPlan {
            worker: Some(2),
            chunk: Some(5),
            ..delay_plan(FaultSite::Solve)
        });
        check(FaultSite::Lookback, 2, 5, None); // wrong site
        assert!(is_armed());
        check(FaultSite::Solve, 1, 5, None); // wrong worker
        assert!(is_armed());
        check(FaultSite::Solve, 2, 4, None); // wrong chunk
        assert!(is_armed());
        check(FaultSite::Solve, 2, 5, None); // fires
        assert!(!is_armed());
        check(FaultSite::Solve, 2, 5, None); // inert after firing
        disarm();
    }

    #[test]
    fn nth_call_counts_only_matching_consultations() {
        let _serial = lock_recover(&SERIAL);
        arm(FaultPlan {
            worker: Some(1),
            nth_call: Some(3),
            ..delay_plan(FaultSite::Lookback)
        });
        for _ in 0..10 {
            check(FaultSite::Lookback, 0, 0, None); // filtered out, not counted
        }
        assert!(is_armed());
        check(FaultSite::Lookback, 1, 0, None);
        check(FaultSite::Lookback, 1, 1, None);
        assert!(is_armed(), "two matching calls must not fire a k=3 plan");
        check(FaultSite::Lookback, 1, 2, None);
        assert!(!is_armed());
        disarm();
    }

    #[test]
    fn delay_bails_out_when_the_run_is_already_aborted() {
        let _serial = lock_recover(&SERIAL);
        arm(FaultPlan {
            kind: FaultKind::Delay(Duration::from_secs(120)),
            ..delay_plan(FaultSite::Solve)
        });
        let abort = AbortSignal::default();
        abort.trigger();
        let start = Instant::now();
        check(FaultSite::Solve, 0, 0, Some(&abort));
        // A two-minute stall on an aborted run must return in one slice.
        assert!(start.elapsed() < Duration::from_secs(10));
        assert!(!is_armed());
        disarm();
    }
}
