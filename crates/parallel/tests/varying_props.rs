//! Differential gauntlet for the time-varying matrix-carry lowering.
//!
//! The contract: every executor of a [`VaryingSignature`] — the serial
//! reference evaluator, both [`VaryingEngine`] carry strategies, both
//! [`VaryingRunner`] strategies, the whole-row batch path, and the
//! streaming layer — computes the *same recurrence*. For integer
//! elements the arithmetic is wrapping and therefore exactly
//! reassociable: every executor must agree **bit-exactly** across
//! orders, chunk sizes, and thread counts. For floats the chunked
//! executors reassociate, so agreement is elementwise within a few ULPs
//! for contractive coefficient gates (the Mamba/selective-scan regime,
//! where boundary rounding decays geometrically) and within a relative
//! bound for wider gates.
//!
//! Also holds the stats surface to its contract: varying runs report
//! [`PlanKind::MatrixCarry`], never touch the constant-coefficient
//! correction-plan cache, and summarize their kernels as
//! [`KernelKind::Mixed`] exactly when constant-row kernel chunks and
//! varying scalar chunks coexist in one run.

use plr_core::engine::{CarryPropagation, EngineConfig, LocalSolve};
use plr_core::kernel::KernelKind;
use plr_core::plan::{self, PlanKind};
use plr_core::varying::{reference, VaryingEngine, VaryingSignature};
use plr_core::{set_kernel_override, Element, KernelTier};
use plr_parallel::runner::{RunnerConfig, Strategy};
use plr_parallel::VaryingRunner;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that flip process-global state (the kernel-tier
/// override, the plan-cache switch) against each other.
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn lock_global() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Deterministic xorshift stream, so every executor sees the same
/// coefficients without an RNG dependency.
fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

fn int_coeffs(n: usize, k: usize, seed: u64) -> Vec<i64> {
    let mut rng = xorshift(seed);
    (0..n * k).map(|_| (rng() % 5) as i64 - 2).collect()
}

fn int_input(n: usize) -> Vec<i64> {
    (0..n).map(|i| (i % 23) as i64 - 11).collect()
}

/// Contractive gates in `[0.1, 0.5]`: the selective-scan regime where
/// chunk-boundary rounding differences decay geometrically.
fn contractive_gates(n: usize, k: usize, seed: u64) -> Vec<f64> {
    let mut rng = xorshift(seed);
    (0..n * k)
        .map(|_| 0.1 + 0.4 * ((rng() >> 11) as f64 / (1u64 << 53) as f64) / k as f64)
        .collect()
}

/// Wider gates in `[-0.9, 0.9]`: still stable, but rounding differences
/// can linger, so these legs assert a relative bound instead of ULPs.
fn wide_gates(n: usize, k: usize, seed: u64) -> Vec<f64> {
    let mut rng = xorshift(seed);
    (0..n * k)
        .map(|_| (1.8 * ((rng() >> 11) as f64 / (1u64 << 53) as f64) - 0.9) / k as f64)
        .collect()
}

fn float_input(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 13) as f64) * 0.25 - 1.5).collect()
}

/// Monotone total-order key for ULP distance; `-0.0` and `0.0` count as
/// equal (same idiom as the plan-layer gauntlet).
fn ulps64(a: f64, b: f64) -> i64 {
    let key = |x: f64| -> i128 {
        let bits = x.to_bits() as i64;
        if bits >= 0 {
            bits as i128
        } else {
            (i64::MIN as i128) - (bits as i128)
        }
    };
    (key(a) - key(b)).unsigned_abs().min(i64::MAX as u128) as i64
}

fn runner_with<T: Element>(
    sig: &VaryingSignature<T>,
    chunk: usize,
    threads: usize,
    strategy: Strategy,
) -> VaryingRunner<T> {
    VaryingRunner::with_config(
        sig.clone(),
        RunnerConfig {
            chunk_size: chunk,
            threads,
            strategy,
            ..Default::default()
        },
    )
    .unwrap()
}

fn engine_with<T: Element>(
    sig: &VaryingSignature<T>,
    chunk: usize,
    carry: CarryPropagation,
) -> VaryingEngine<T> {
    VaryingEngine::with_config(
        sig.clone(),
        EngineConfig {
            chunk_size: chunk,
            local_solve: LocalSolve::Serial,
            carry_propagation: carry,
            flush_denormals: false,
        },
    )
    .unwrap()
}

/// Every executor output for one signature/geometry, labeled.
fn all_executor_outputs<T: Element>(
    sig: &VaryingSignature<T>,
    input: &[T],
    chunk: usize,
    threads: usize,
) -> Vec<(String, Vec<T>)> {
    let mut outs = Vec::new();
    for carry in [CarryPropagation::Sequential, CarryPropagation::Decoupled] {
        let engine = engine_with(sig, chunk, carry);
        outs.push((format!("engine/{carry:?}"), engine.run(input).unwrap()));
    }
    for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
        let runner = runner_with(sig, chunk, threads, strategy);
        outs.push((format!("runner/{strategy:?}"), runner.run(input).unwrap()));
    }
    // Batch and stream entry points, one row each (they share RowTask).
    let runner = runner_with(sig, chunk, threads, Strategy::LookbackPipeline);
    let mut rows = input.to_vec();
    runner.run_rows(&mut rows, input.len().max(1)).unwrap();
    outs.push(("batch/run_rows".into(), rows));
    let stream = runner.stream();
    let handle = stream.push_row(input.to_vec());
    let (streamed, outcome) = handle.join();
    outcome.unwrap();
    outs.push(("stream".into(), streamed));
    outs
}

/// Integers: all six executor paths bit-exact against the naive
/// reference, across orders 1–4, ragged chunk geometries, and thread
/// counts.
#[test]
fn int_executors_bit_exact_across_orders_chunks_threads() {
    let n = 1537;
    let input = int_input(n);
    for k in 1..=4usize {
        let sig = VaryingSignature::new(k, int_coeffs(n, k, 0x5eed + k as u64)).unwrap();
        let expect = reference(&sig, &input).unwrap();
        for chunk in [8usize, 64, 711] {
            if chunk < k {
                continue;
            }
            for threads in [1usize, 2, 4] {
                for (label, got) in all_executor_outputs(&sig, &input, chunk, threads) {
                    assert_eq!(
                        got, expect,
                        "{label} diverged: k={k} chunk={chunk} threads={threads}"
                    );
                }
            }
        }
    }
}

/// Integers with offsets (the affine/homogeneous carry block): still
/// bit-exact everywhere.
#[test]
fn int_offsets_bit_exact() {
    let n = 997;
    let input = int_input(n);
    let mut rng = xorshift(0x0ff5e7);
    let offsets: Vec<i64> = (0..n).map(|_| (rng() % 7) as i64 - 3).collect();
    for k in [1usize, 2, 3] {
        let sig = VaryingSignature::new(k, int_coeffs(n, k, 77 + k as u64))
            .unwrap()
            .with_offsets(offsets.clone())
            .unwrap();
        let expect = reference(&sig, &input).unwrap();
        for (label, got) in all_executor_outputs(&sig, &input, 100, 4) {
            assert_eq!(got, expect, "{label} diverged with offsets, k={k}");
        }
    }
}

/// Positive inputs: with positive contractive gates every partial sum is
/// positive, so no cancellation inflates ULP distances.
fn positive_input(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 13) as f64) * 0.1 + 0.5).collect()
}

/// Contractive float gates, cancellation-free inputs: every executor
/// elementwise within 4 ULP of the serial reference, across orders and
/// geometries. (Signed inputs — where cancellation near zero makes ULP
/// distance meaningless — are covered by the relative-bound leg below.)
#[test]
fn contractive_floats_within_ulps_of_reference() {
    let n = 6000;
    let input = positive_input(n);
    for k in 1..=4usize {
        let sig = VaryingSignature::new(k, contractive_gates(n, k, 0xf10a + k as u64)).unwrap();
        let expect = reference(&sig, &input).unwrap();
        for chunk in [64usize, 513] {
            for threads in [1usize, 4] {
                for (label, got) in all_executor_outputs(&sig, &input, chunk, threads) {
                    for (i, (&g, &e)) in got.iter().zip(&expect).enumerate() {
                        let d = ulps64(g, e);
                        assert!(
                            d <= 4,
                            "{label}: k={k} chunk={chunk} threads={threads} i={i}: \
                             {g} vs {e} ({d} ULPs)"
                        );
                    }
                }
            }
        }
    }
}

/// Wider (but stable) float gates: executors agree with the reference
/// within a relative bound — reassociation error may exceed a few ULPs
/// here, but must stay far below any meaningful divergence.
#[test]
fn wide_gate_floats_within_relative_bound() {
    let n = 8000;
    let input = float_input(n);
    for k in [1usize, 2] {
        let sig = VaryingSignature::new(k, wide_gates(n, k, 0x3b9a + k as u64)).unwrap();
        let expect = reference(&sig, &input).unwrap();
        for (label, got) in all_executor_outputs(&sig, &input, 257, 4) {
            for (i, (&g, &e)) in got.iter().zip(&expect).enumerate() {
                assert!(
                    (g - e).abs() <= 1e-9 * e.abs().max(1.0),
                    "{label}: k={k} i={i}: {g} vs {e}"
                );
            }
        }
    }
}

/// Satellite contract: a run whose chunks mix constant-coefficient
/// stretches (dispatched to the selected constant kernel) with
/// genuinely varying stretches (scalar matrix-carry loop) must summarize
/// its kernel as [`KernelKind::Mixed`]; an all-varying run reports
/// [`KernelKind::Scalar`]. The kernel override is pinned so the
/// `PLR_KERNEL=scalar` CI leg (which makes constant chunks scalar too,
/// collapsing the mix) cannot change what this test observes.
#[test]
fn mixed_constant_and_varying_chunks_report_mixed_kernel() {
    let _g = lock_global();
    set_kernel_override(Some(KernelTier::Blocked));
    let n = 4096;
    let chunk = 256;
    // First half constant gain 0.5 (chunk-aligned → constant chunks with
    // a real kernel), second half varying.
    let mut rng = xorshift(0x51ead);
    let coeffs: Vec<f64> = (0..n)
        .map(|i| {
            if i < n / 2 {
                0.5
            } else {
                0.1 + 0.3 * ((rng() >> 11) as f64 / (1u64 << 53) as f64)
            }
        })
        .collect();
    let sig = VaryingSignature::first_order(coeffs).unwrap();
    let input = float_input(n);
    let expect = reference(&sig, &input).unwrap();
    let runner = runner_with(&sig, chunk, 2, Strategy::TwoPass);
    let mut data = input.clone();
    let stats = runner.run_in_place(&mut data).unwrap();
    set_kernel_override(None);
    for (i, (&g, &e)) in data.iter().zip(&expect).enumerate() {
        assert!(
            (g - e).abs() <= 1e-9 * e.abs().max(1.0),
            "i={i}: {g} vs {e}"
        );
    }
    assert_eq!(
        stats.kernel,
        KernelKind::Mixed,
        "half-constant/half-varying run must report Mixed"
    );

    // All-varying: every chunk is the scalar matrix-carry loop.
    let all_varying = VaryingSignature::first_order(contractive_gates(n, 1, 0xa11)).unwrap();
    let runner = runner_with(&all_varying, chunk, 2, Strategy::TwoPass);
    let mut data = float_input(n);
    let stats = runner.run_in_place(&mut data).unwrap();
    assert_eq!(stats.kernel, KernelKind::Scalar);
}

/// Satellite contract: varying signatures never touch the constant
/// correction-plan cache — no entry is inserted, no hit or miss is
/// reported, and a constant-signature probe afterwards still sees a
/// cold cache.
#[test]
fn varying_runs_bypass_the_constant_plan_cache() {
    let _g = lock_global();
    plan::set_cache_enabled(Some(true));
    plan::clear_cache();
    assert_eq!(plan::cache_len(), 0);

    let n = 3000;
    let sig = VaryingSignature::new(2, int_coeffs(n, 2, 0xcac4e)).unwrap();
    let input = int_input(n);
    for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
        let runner = runner_with(&sig, 128, 2, strategy);
        let mut data = input.clone();
        let stats = runner.run_in_place(&mut data).unwrap();
        assert_eq!(stats.plan_kind, PlanKind::MatrixCarry, "{strategy:?}");
        assert_eq!(stats.plan_cache_hits, 0, "{strategy:?}");
        assert_eq!(stats.plan_cache_misses, 0, "{strategy:?}");
    }
    // Batch + stream entry points are cache-silent too.
    let runner = runner_with(&sig, 128, 2, Strategy::LookbackPipeline);
    let mut rows = input.clone();
    let stats = runner.run_rows(&mut rows, n).unwrap();
    assert_eq!(stats.plan_cache_hits + stats.plan_cache_misses, 0);
    let stream = runner.stream();
    let (_, outcome) = stream.push_row(input.clone()).join();
    outcome.unwrap();

    assert_eq!(
        plan::cache_len(),
        0,
        "varying executors must not populate the constant plan cache"
    );

    // A constant-signature probe immediately afterwards must still be a
    // cold miss — nothing aliased its key.
    let constant: plr_core::Signature<i64> = "1:2,-1".parse().unwrap();
    let probe = plr_parallel::ParallelRunner::with_config(
        constant,
        RunnerConfig {
            chunk_size: 731,
            threads: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let mut data = int_input(2000);
    let stats = probe.run_in_place(&mut data).unwrap();
    plan::set_cache_enabled(None);
    assert_eq!(stats.plan_cache_misses, 1, "probe must miss a cold cache");
    assert_eq!(stats.plan_cache_hits, 0);
}

/// Lookback fusion accounting: on integers, fused chunks are counted and
/// the output stays bit-exact; a one-thread run fuses every chunk.
#[test]
fn lookback_fusion_counts_and_stays_exact() {
    let n = 4096;
    let sig = VaryingSignature::first_order(int_coeffs(n, 1, 0xf05e)).unwrap();
    let input = int_input(n);
    let expect = reference(&sig, &input).unwrap();
    let one = runner_with(&sig, 256, 1, Strategy::LookbackPipeline);
    let mut data = input.clone();
    let stats = one.run_in_place(&mut data).unwrap();
    assert_eq!(data, expect);
    assert_eq!(
        stats.fused_chunks, stats.chunks,
        "a single worker claims chunks in order, so every chunk fuses"
    );
    let four = runner_with(&sig, 256, 4, Strategy::LookbackPipeline);
    let mut data = input.clone();
    let stats = four.run_in_place(&mut data).unwrap();
    assert_eq!(data, expect);
    assert!(stats.fused_chunks >= 1, "chunk 0 always fuses");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized differential sweep: arbitrary small-coefficient varying
    /// signatures, arbitrary inputs, random geometry — all six executor
    /// paths bit-exact against the reference. (The vendored proptest stub
    /// has no flat-map, so dependent shapes derive from a drawn seed.)
    #[test]
    fn random_varying_signatures_bit_exact(
        k in 1usize..=4,
        n in 1usize..600,
        seed in 1u64..u64::MAX,
        chunk_sel in 0usize..3,
        threads in 1usize..=4,
    ) {
        let sig = VaryingSignature::new(k, int_coeffs(n, k, seed)).unwrap();
        let mut rng = xorshift(seed ^ 0x5555_5555);
        let data: Vec<i64> = (0..n).map(|_| (rng() % 41) as i64 - 20).collect();
        let expect = reference(&sig, &data).unwrap();
        let chunk = [k.max(4), k.max(37), k.max(n)][chunk_sel];
        for (label, got) in all_executor_outputs(&sig, &data, chunk, threads) {
            prop_assert_eq!(
                &got, &expect,
                "{} diverged: k={} n={} chunk={} threads={}", label, k, n, chunk, threads
            );
        }
    }
}

/// Fault-injection legs (CI's `varying` job runs this file with
/// `--features fault-inject`): an injected worker fault in a varying run
/// must surface as `WorkerPanicked` — never a hang — and the same runner
/// (same pool) must complete a fault-free, bit-exact rerun.
#[cfg(feature = "fault-inject")]
mod fault_legs {
    use super::*;
    use plr_core::error::EngineError;
    use plr_parallel::fault::{self, FaultPlan, FaultSite};
    use std::time::Duration;

    /// Silences the default panic-hook output for panics this module
    /// injects on purpose; everything else still prints.
    fn quiet_injected_panics() {
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let payload = info.payload();
                let s = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                    .unwrap_or("");
                if !s.contains("injected fault") && !payload.is::<plr_parallel::pool::WorkerExit>()
                {
                    default(info);
                }
            }));
        });
    }

    /// Runs `f` on a helper thread, panicking if it does not finish in
    /// `secs` — a hang becomes a test failure, not a stuck CI job.
    fn watchdog<R: Send + 'static>(secs: u64, f: impl FnOnce() -> R + Send + 'static) -> R {
        let (tx, rx) = std::sync::mpsc::channel();
        let worker = std::thread::spawn(move || {
            let _ = tx.send(f());
        });
        match rx.recv_timeout(Duration::from_secs(secs)) {
            Ok(r) => {
                let _ = worker.join();
                r
            }
            Err(_) => panic!("watchdog: faulted varying run did not return within {secs}s"),
        }
    }

    const N: usize = 8192;
    const CHUNK: usize = 256;

    fn assert_fault_contract(strategy: Strategy, plan: FaultPlan) {
        let _g = lock_global();
        quiet_injected_panics();
        let sig = VaryingSignature::new(2, int_coeffs(N, 2, 0xfa117)).unwrap();
        let data = int_input(N);
        let expect = reference(&sig, &data).unwrap();
        let runner = runner_with(&sig, CHUNK, 4, strategy);

        // Warm the pool so the fault hits resident, parked workers.
        assert_eq!(runner.run(&data).unwrap(), expect, "warm-up must validate");

        fault::arm(plan.clone());
        let (runner, faulted) = watchdog(60, move || {
            let r = runner.run(&data);
            (runner, r)
        });
        let fired = !fault::is_armed();
        fault::disarm();
        assert!(fired, "plan never fired: {plan:?}");
        match faulted {
            Err(EngineError::WorkerPanicked { .. }) => {}
            other => panic!("expected WorkerPanicked, got {other:?} for {plan:?}"),
        }

        // Same pool, fault-free rerun: bit-exact recovery.
        let data = int_input(N);
        let got = watchdog(60, move || runner.run(&data).unwrap());
        assert_eq!(
            got, expect,
            "rerun after fault must validate ({strategy:?})"
        );
    }

    #[test]
    fn solve_fault_errors_and_recovers_lookback() {
        assert_fault_contract(
            Strategy::LookbackPipeline,
            FaultPlan::panic_at_chunk(FaultSite::Solve, (N / CHUNK) / 2),
        );
    }

    #[test]
    fn solve_fault_errors_and_recovers_two_pass() {
        assert_fault_contract(
            Strategy::TwoPass,
            FaultPlan::panic_at_chunk(FaultSite::Solve, (N / CHUNK) / 2),
        );
    }

    /// The look-back site is only consulted unconditionally by the
    /// two-pass chain (lookback-pipeline chunks skip it when they fuse,
    /// which integers do opportunistically), so the chain leg pins it.
    #[test]
    fn chain_fault_errors_and_recovers() {
        assert_fault_contract(
            Strategy::TwoPass,
            FaultPlan::panic_at_chunk(FaultSite::Lookback, (N / CHUNK) / 2),
        );
    }

    /// Streamed varying rows: a row-site fault resolves only that row's
    /// handle to an error; later rows on the same stream still solve.
    #[test]
    fn stream_row_fault_is_isolated() {
        let _g = lock_global();
        quiet_injected_panics();
        let n = 600;
        let sig = VaryingSignature::first_order(int_coeffs(n, 1, 0x57f)).unwrap();
        let input = int_input(n);
        let expect = reference(&sig, &input).unwrap();
        let runner = runner_with(&sig, 64, 2, Strategy::LookbackPipeline);
        let stream = runner.stream();
        fault::arm(FaultPlan::panic_at_chunk(FaultSite::Row, 0));
        let bad = stream.push_row(input.clone());
        let (_, outcome) = bad.join();
        fault::disarm();
        match outcome {
            Err(EngineError::WorkerPanicked { .. }) => {}
            other => panic!("expected WorkerPanicked for the faulted row, got {other:?}"),
        }
        let good = stream.push_row(input.clone());
        let (got, outcome) = good.join();
        outcome.unwrap();
        assert_eq!(got, expect, "rows after the faulted one must still solve");
    }
}
