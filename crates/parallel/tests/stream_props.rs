//! Differential and stress properties for the streaming submission layer.
//!
//! The contract under test: pushing rows one at a time through
//! [`RowStream`] — under any backpressure window, worker count, and
//! interleaving of `push_row` / `wait` / `wait_timeout` / `on_complete`
//! — produces results **bit-exact** with the serial reference and with
//! blocking [`BatchRunner::run_rows`] on the same data, and the handle /
//! waker machinery never deadlocks, double-wakes, or busy-polls.

use plr_core::serial;
use plr_core::signature::Signature;
use plr_core::validate::validate;
use plr_parallel::{block_on, BatchRunner, RowHandle, RunControl, RunFuture, WorkerPool};
use proptest::prelude::*;
use std::future::{Future, IntoFuture};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

/// Worker count for the suite: the `PLR_THREADS` CI matrix leg when set
/// (1/2/4 in the workflow), otherwise 4.
fn env_threads() -> usize {
    std::env::var("PLR_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

/// Runs `f` on a helper thread, panicking if it does not finish within
/// `secs` — turns "the stream hangs" into a test failure, not a stuck CI
/// job.
fn watchdog<R: Send + 'static>(secs: u64, f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(r) => {
            let _ = worker.join();
            r
        }
        Err(_) => panic!("watchdog: streaming test did not return within {secs}s (hang)"),
    }
}

/// Integer signatures of order 1–4 with a 1–2 tap FIR part (same family
/// as the fault suite: wrapping-exact, so every comparison is bit-exact).
fn signature() -> impl Strategy<Value = Signature<i64>> {
    let nonzero = prop_oneof![-2i64..=-1, 1i64..=2];
    (
        proptest::collection::vec(-2i64..=2, 0..2),
        nonzero.clone(),
        proptest::collection::vec(-2i64..=2, 0..4),
        nonzero,
    )
        .prop_map(|(mut ff, ff_last, mut fb, fb_last)| {
            ff.push(ff_last);
            fb.push(fb_last);
            Signature::new(ff, fb).expect("nonzero trailing coefficients")
        })
}

fn rows_i64(rows: usize, width: usize, seed: u64) -> Vec<Vec<i64>> {
    (0..rows)
        .map(|r| {
            (0..width)
                .map(|i| (((r as u64) * 37 + (i as u64) * 11 + seed) % 23) as i64 - 11)
                .collect()
        })
        .collect()
}

/// Drives one stream case: pushes every row with a seed-chosen
/// observation pattern (wait now / poll / register a waker / leave
/// unpolled), closes, joins in seed-chosen order, and returns the solved
/// rows by index plus the aggregate stats.
fn drive_stream(
    runner: &BatchRunner<i64>,
    inputs: &[Vec<i64>],
    window: usize,
    interleave: u64,
) -> (Vec<Vec<i64>>, plr_parallel::RunStats) {
    let stream = runner.stream_with_window(window);
    let mut handles: Vec<RowHandle<i64>> = Vec::with_capacity(inputs.len());
    for (i, row) in inputs.iter().enumerate() {
        let handle = stream.push_row(row.clone());
        match (interleave >> (2 * (i % 32))) & 3 {
            // Block for this row right away (producer/consumer lockstep).
            0 => {
                handle.wait().expect("streamed row must solve");
            }
            // Non-blocking poll (may or may not be finished — both fine).
            1 => {
                let _ = handle.wait_timeout(Duration::ZERO);
            }
            // Register a waker mid-run; replaced by the join's wait later.
            2 => handle.on_complete(|| {}),
            // Leave it entirely unobserved until the final join.
            _ => {}
        }
        handles.push(handle);
    }
    stream.close();
    // Join out of push order half the time: completion must be
    // per-handle, not positional.
    let mut order: Vec<usize> = (0..handles.len()).collect();
    if interleave & 1 == 1 {
        order.reverse();
    }
    let mut outputs: Vec<Vec<i64>> = vec![Vec::new(); handles.len()];
    let mut handles: Vec<Option<RowHandle<i64>>> = handles.into_iter().map(Some).collect();
    for idx in order {
        let handle = handles[idx].take().expect("joined once");
        let (data, result) = handle.join();
        result.expect("streamed row must solve");
        outputs[idx] = data;
    }
    let stats = stream.finish().expect("no row failed");
    (outputs, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core differential property: streamed results are bit-exact vs
    /// the serial reference AND vs blocking `run_rows` on the same data,
    /// across signatures, geometries, windows, thread counts, and
    /// push/wait interleavings.
    #[test]
    fn stream_matches_blocking_and_serial(
        sig in signature(),
        rows in 1usize..13,
        width in 1usize..200,
        window in 1usize..6,
        threads in 1usize..5,
        interleave in 0u64..u64::MAX,
    ) {
        let inputs = rows_i64(rows, width, interleave);
        let expect: Vec<Vec<i64>> = inputs.iter().map(|r| serial::run(&sig, r)).collect();

        let (blocking, streamed, stats) = {
            let sig = sig.clone();
            let inputs = inputs.clone();
            watchdog(120, move || {
                let runner = BatchRunner::new(sig, threads);
                // Blocking reference on the same runner (and pool).
                let mut blocking: Vec<i64> = inputs.concat();
                runner.run_rows(&mut blocking, width).expect("blocking run");
                let (streamed, stats) = drive_stream(&runner, &inputs, window, interleave);
                (blocking, streamed, stats)
            })
        };

        let expect_flat: Vec<i64> = expect.concat();
        prop_assert_eq!(&blocking, &expect_flat, "blocking run_rows vs serial");
        let streamed_flat: Vec<i64> = streamed.concat();
        prop_assert_eq!(&streamed_flat, &expect_flat, "streamed vs serial");
        prop_assert_eq!(&streamed_flat, &blocking, "streamed vs blocking");
        prop_assert_eq!(stats.rows, rows as u64);
        prop_assert_eq!(stats.chunks, rows as u64);
    }

    /// Floats: streamed rows are within tolerance of the serial
    /// reference, and — when `rows >= threads`, so blocking `run_rows`
    /// takes the whole-rows path built on the *same* `RowTask` kernel —
    /// bitwise identical to it (reassociation differences there would be
    /// a bug; the few-long-rows path legitimately reassociates via
    /// chunked look-back, so it is only compared within tolerance).
    #[test]
    fn stream_f64_bitwise_matches_blocking(
        rows in 1usize..10,
        width in 1usize..150,
        window in 1usize..5,
        threads in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let sig: Signature<f64> = "0.81,-1.62,0.81:1.6,-0.64".parse().unwrap();
        let inputs: Vec<Vec<f64>> = (0..rows)
            .map(|r| {
                (0..width)
                    .map(|i| (((r as u64) * 31 + (i as u64) * 7 + seed) % 17) as f64 * 0.3 - 2.0)
                    .collect()
            })
            .collect();

        let (blocking, streamed) = {
            let sig = sig.clone();
            let inputs = inputs.clone();
            watchdog(120, move || {
                let runner = BatchRunner::new(sig, threads);
                let mut blocking: Vec<f64> = inputs.concat();
                runner.run_rows(&mut blocking, width).expect("blocking run");
                let stream = runner.stream_with_window(window);
                let handles: Vec<RowHandle<f64>> =
                    inputs.iter().map(|row| stream.push_row(row.clone())).collect();
                let mut streamed = Vec::new();
                for handle in handles {
                    let (data, result) = handle.join();
                    result.expect("streamed row must solve");
                    streamed.extend(data);
                }
                stream.finish().expect("no row failed");
                (blocking, streamed)
            })
        };

        let expect: Vec<f64> = inputs.iter().flat_map(|r| serial::run(&sig, r)).collect();
        validate(&expect, &streamed, 1e-9).map_err(|e| {
            TestCaseError::fail(format!("streamed vs serial out of tolerance: {e}"))
        })?;
        prop_assert_eq!(blocking.len(), streamed.len());
        if rows >= threads {
            // Whole-rows path: literally the same per-row kernel.
            for (i, (b, s)) in blocking.iter().zip(&streamed).enumerate() {
                prop_assert_eq!(
                    b.to_bits(),
                    s.to_bits(),
                    "bitwise divergence from blocking at {}", i
                );
            }
        } else {
            // Few-long-rows path reassociates; tolerance only.
            validate(&blocking, &streamed, 1e-9).map_err(|e| {
                TestCaseError::fail(format!("streamed vs blocking out of tolerance: {e}"))
            })?;
        }
    }
}

// ---------------------------------------------------------------------
// Waker-race stress (extends the PR 4 handle contract to rows).
// ---------------------------------------------------------------------

/// Registering `on_complete` after the row already completed fires the
/// callback immediately — once per registration, never zero, never twice.
#[test]
fn stream_on_complete_after_completion_fires_immediately() {
    let sig: Signature<i64> = "1:1".parse().unwrap();
    let runner = BatchRunner::new(sig, 2);
    let stream = runner.stream();
    let handle = stream.push_row(vec![1; 64]);
    handle.wait().unwrap();
    let fired = Arc::new(AtomicUsize::new(0));
    for expected in 1..=3 {
        let counter = Arc::clone(&fired);
        handle.on_complete(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), expected, "immediate fire");
    }
    stream.finish().unwrap();
}

/// Racing `on_complete` registrations from many threads against the
/// row's completion: no deadlock, and no callback ever fires twice (a
/// replaced waker is dropped, a fired one is consumed).
#[test]
fn stream_waker_registration_races_never_double_wake() {
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let runner = BatchRunner::new(sig, 4);
    watchdog(60, move || {
        for round in 0..20 {
            let stream = runner.stream();
            // A big row so some registrations land mid-run, and with the
            // round parity sometimes a finished one, so both sides of the
            // immediate-fire race get exercised.
            let width = if round % 2 == 0 { 200_000 } else { 16 };
            let handle = Arc::new(stream.push_row(vec![1; width]));
            let fires: Vec<Arc<AtomicUsize>> =
                (0..8).map(|_| Arc::new(AtomicUsize::new(0))).collect();
            let racers: Vec<_> = fires
                .iter()
                .map(|fire| {
                    let handle = Arc::clone(&handle);
                    let fire = Arc::clone(fire);
                    std::thread::spawn(move || {
                        handle.on_complete(move || {
                            fire.fetch_add(1, Ordering::SeqCst);
                        });
                    })
                })
                .collect();
            for racer in racers {
                racer.join().unwrap();
            }
            handle.wait().unwrap();
            stream.finish().unwrap();
            let total: usize = fires.iter().map(|f| f.load(Ordering::SeqCst)).sum();
            for (i, fire) in fires.iter().enumerate() {
                assert!(
                    fire.load(Ordering::SeqCst) <= 1,
                    "registration {i} fired twice (round {round})"
                );
            }
            assert!(
                (1..=8).contains(&total),
                "at least the surviving registration must fire, got {total}"
            );
        }
    });
}

/// Dropping unpolled `RowHandle`s mid-run cancels their rows without
/// wedging the stream, the pool, or later streams.
#[test]
fn stream_dropped_unpolled_handles_quiesce() {
    let sig: Signature<i64> = "1:1".parse().unwrap();
    let runner = BatchRunner::new(sig.clone(), 4);
    let elapsed = watchdog(60, move || {
        let start = Instant::now();
        {
            let stream = runner.stream_with_window(4);
            for _ in 0..32 {
                // Dropped immediately: each row is either solved already
                // or cancelled by the drop; none may block the producer.
                drop(stream.push_row(vec![1; 10_000]));
            }
            // Stream dropped here with rows still in flight.
        }
        // The same runner (same pool) must stream and block cleanly after.
        let stream = runner.stream();
        let h = stream.push_row(vec![1, 1, 1]);
        let (data, result) = h.join();
        result.expect("post-drop stream must work");
        assert_eq!(data, vec![1, 2, 3]);
        stream.finish().unwrap();
        let mut block = vec![1i64; 64];
        runner
            .run_rows(&mut block, 8)
            .expect("blocking path after streams");
        start.elapsed()
    });
    assert!(
        elapsed < Duration::from_secs(30),
        "drop-cancel must quiesce promptly, took {elapsed:?}"
    );
}

/// Counts how often an inner future is polled.
struct CountPolls<F> {
    inner: F,
    polls: Arc<AtomicUsize>,
}

impl<F: Future + Unpin> Future for CountPolls<F> {
    type Output = F::Output;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<F::Output> {
        self.polls.fetch_add(1, Ordering::SeqCst);
        Pin::new(&mut self.inner).poll(cx)
    }
}

/// The `Future` adapter resolves through the waker, not by spinning: a
/// run that takes ~150ms completes with a handful of polls, not
/// thousands.
#[test]
fn stream_run_future_does_not_busy_poll() {
    let pool = Arc::new(WorkerPool::new(2));
    let gate = Arc::new(AtomicBool::new(false));
    let handle = {
        let gate = Arc::clone(&gate);
        pool.submit(RunControl::new(), move |_, abort| {
            while !gate.load(Ordering::SeqCst) && !abort.is_aborted() {
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };
    let releaser = {
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            gate.store(true, Ordering::SeqCst);
        })
    };
    let polls = Arc::new(AtomicUsize::new(0));
    let fut: RunFuture = handle.into_future();
    let start = Instant::now();
    watchdog(60, {
        let polls = Arc::clone(&polls);
        move || block_on(CountPolls { inner: fut, polls }).unwrap()
    });
    releaser.join().unwrap();
    assert!(
        start.elapsed() >= Duration::from_millis(100),
        "the future resolved before the gate opened?"
    );
    let polls = polls.load(Ordering::SeqCst);
    assert!(
        polls <= 4,
        "a waker-driven future needs ~2 polls for a 150ms run, got {polls}"
    );
}

/// Same property at the row level: awaiting a `RowHandle` polls a
/// bounded number of times regardless of how long the row takes.
#[test]
fn stream_row_future_does_not_busy_poll() {
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let runner = BatchRunner::new(sig.clone(), 2);
    let stream = runner.stream();
    let input: Vec<i64> = (0..500_000).map(|i| (i % 7) as i64 - 3).collect();
    let handle = stream.push_row(input.clone());
    let polls = Arc::new(AtomicUsize::new(0));
    let (got, result) = watchdog(60, {
        let polls = Arc::clone(&polls);
        move || {
            block_on(CountPolls {
                inner: handle.into_future(),
                polls,
            })
        }
    });
    result.unwrap();
    assert_eq!(got, serial::run(&sig, &input));
    let polls = polls.load(Ordering::SeqCst);
    assert!(polls <= 4, "expected ~2 polls, got {polls}");
    stream.finish().unwrap();
}

/// The env-matrix leg: the differential property at the CI-pinned worker
/// count (PLR_THREADS ∈ {1,2,4}), windows 1 and 2×threads, fixed
/// geometry — a deterministic smoke companion to the proptests above.
#[test]
fn stream_env_thread_matrix_smoke() {
    let threads = env_threads();
    let sig: Signature<i64> = "1,1:3,-3,1".parse().unwrap();
    let inputs = rows_i64(9, 173, 42);
    let expect: Vec<i64> = inputs.iter().flat_map(|r| serial::run(&sig, r)).collect();
    watchdog(120, move || {
        let runner = BatchRunner::new(sig, threads);
        for window in [1, 2 * threads.max(1)] {
            let (outputs, stats) = drive_stream(&runner, &inputs, window, 0b10_01_00_11_01);
            assert_eq!(outputs.concat(), expect, "window {window}");
            assert_eq!(stats.rows, 9);
        }
    });
}
