//! Property tests: the multithreaded runner agrees with the serial
//! reference for arbitrary signatures, chunkings, and thread counts.

use plr_core::serial;
use plr_core::signature::Signature;
use plr_parallel::{ParallelRunner, RunnerConfig, Strategy as RunStrategy};
use proptest::prelude::*;

/// Arbitrary integer signatures with FIR length 1–4 and feedback order
/// 1–4 (trailing coefficients forced nonzero so the stated order holds).
fn int_signature() -> impl Strategy<Value = Signature<i64>> {
    let coeff = -3i64..=3;
    let nonzero = prop_oneof![-3i64..=-1, 1i64..=3];
    (
        proptest::collection::vec(coeff.clone(), 0..4),
        nonzero.clone(),
        proptest::collection::vec(coeff, 0..4),
        nonzero,
    )
        .prop_map(|(mut ff, ff_last, mut fb, fb_last)| {
            ff.push(ff_last);
            fb.push(fb_last);
            Signature::new(ff, fb).expect("nonzero trailing coefficients")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_matches_serial(
        sig in int_signature(),
        input in proptest::collection::vec(-40i64..40, 0..2000),
        chunk_pow in 2usize..9,
        threads in 1usize..9,
        two_pass in proptest::bool::ANY,
    ) {
        let strategy =
            if two_pass { RunStrategy::TwoPass } else { RunStrategy::LookbackPipeline };
        let config = RunnerConfig { chunk_size: 1 << chunk_pow, threads, strategy, ..Default::default() };
        let runner = ParallelRunner::with_config(sig.clone(), config).unwrap();
        let got = runner.run(&input).unwrap();
        let expect = serial::run(&sig, &input);
        prop_assert_eq!(got, expect, "{} {:?}", &sig, config);
    }

    #[test]
    fn lookback_depth_bounded_by_pipeline(
        input in proptest::collection::vec(-10i64..10, 1000..4000),
        threads in 1usize..9,
    ) {
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let config = RunnerConfig { chunk_size: 64, threads, strategy: RunStrategy::default(), ..Default::default() };
        let runner = ParallelRunner::with_config(sig, config).unwrap();
        let mut data = input;
        let stats = runner.run_in_place(&mut data).unwrap();
        // Each chunk's look-back reaches at most as far back as the number
        // of concurrently in-flight chunks, which the pool's ticket
        // scheduling caps at the worker count (plus one for safety margin —
        // a finished chunk always publishes its globals before retiring).
        let window = threads as u64 + 1;
        let bound = (stats.chunks - 1) * window;
        prop_assert!(stats.lookback_hops <= bound,
            "hops {} for {} chunks on {} threads", stats.lookback_hops, stats.chunks, threads);
        // The deepest single look-back is bounded by the in-flight window —
        // the paper's "dynamically minimizing c" on real threads.
        prop_assert!(stats.max_lookback_depth <= window,
            "depth {} exceeds window {}", stats.max_lookback_depth, window);
    }
}
