//! Differential gauntlet for the correction-plan layer.
//!
//! The contract: every specialized correction strategy the planner can
//! pick (scalar fold, conditional add, periodic, decay-truncated) is an
//! *algebraic rewrite*, not an approximation — running any signature
//! with [`PlanMode::Auto`] must agree with the unspecialized
//! [`PlanMode::Dense`] baseline bit-exactly for integers and within a
//! few ULPs for floats (the only divergence allowed is `-0.0` vs `0.0`
//! from skipped exactly-zero factor terms), across strategies, chunk
//! sizes, thread counts, and the batch/stream entry points. The plan
//! cache must key on everything that shapes the plan — including the
//! feedforward taps, which don't affect the correction table but do pick
//! the FIR kernel.

use plr_core::plan::{self, PlanKind, PlanMode};
use plr_core::serial;
use plr_core::signature::Signature;
use plr_core::Element;
use plr_parallel::{BatchRunner, ParallelRunner, RunStats, RunnerConfig, Strategy as RunStrategy};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the tests that mutate global plan-cache state (clear,
/// enable/disable override) against each other; the differential tests
/// don't assert counters and are unaffected.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn run_with<T: Element>(
    sig: &Signature<T>,
    input: &[T],
    chunk: usize,
    threads: usize,
    strategy: RunStrategy,
    mode: PlanMode,
) -> (Vec<T>, RunStats) {
    let config = RunnerConfig {
        chunk_size: chunk,
        threads,
        strategy,
        plan: mode,
        ..Default::default()
    };
    let runner = ParallelRunner::with_config(sig.clone(), config).unwrap();
    let mut data = input.to_vec();
    let stats = runner.run_in_place(&mut data).unwrap();
    (data, stats)
}

fn input<T: Element>(n: usize) -> Vec<T> {
    (0..n)
        .map(|i| T::from_i32(((i * 29) % 19) as i32 - 9))
        .collect()
}

/// Monotone total-order key for ULP distance; maps `-0.0` and `0.0` to
/// the same point so sign-of-zero differences count as zero ULPs.
fn ulps32(a: f32, b: f32) -> i64 {
    let key = |x: f32| -> i64 {
        let bits = x.to_bits() as i32;
        if bits >= 0 {
            bits as i64
        } else {
            (i32::MIN as i64) - (bits as i64)
        }
    };
    (key(a) - key(b)).abs()
}

fn ulps64(a: f64, b: f64) -> i64 {
    let key = |x: f64| -> i128 {
        let bits = x.to_bits() as i64;
        if bits >= 0 {
            bits as i128
        } else {
            (i64::MIN as i128) - (bits as i128)
        }
    };
    (key(a) - key(b)).unsigned_abs().min(i64::MAX as u128) as i64
}

const CHUNKS: [usize; 3] = [8, 64, 1024];
const THREADS: [usize; 3] = [1, 2, 4];
const STRATEGIES: [RunStrategy; 2] = [RunStrategy::LookbackPipeline, RunStrategy::TwoPass];

/// Every integer strategy family × geometry: Auto must be bit-exact with
/// both the Dense baseline and the serial reference (integer arithmetic
/// is wrapping, so equality is exact even past overflow).
#[test]
fn int_strategies_bit_exact_vs_dense_and_serial() {
    // scalar fold, FIR'd scalar fold, conditional add (orders 2 and 3),
    // periodic, dense, and a dense-with-FIR case.
    let sigs = [
        "1:1", "4:1", "1:0,1", "2,1:0,1", "1:0,0,1", "1:-1", "1:2,-1", "2,1:1,1",
    ];
    let data = input::<i64>(6000);
    for text in sigs {
        let sig: Signature<i64> = text.parse().unwrap();
        let expect = serial::run(&sig, &data);
        for chunk in CHUNKS {
            for threads in THREADS {
                for strategy in STRATEGIES {
                    let ctx = format!("{text} chunk={chunk} threads={threads} {strategy:?}");
                    let (auto, _) = run_with(&sig, &data, chunk, threads, strategy, PlanMode::Auto);
                    let (dense, _) =
                        run_with(&sig, &data, chunk, threads, strategy, PlanMode::Dense);
                    assert_eq!(auto, dense, "auto != dense for {ctx}");
                    assert_eq!(auto, expect, "auto != serial for {ctx}");
                }
            }
        }
    }
}

/// Float strategies (including decay truncation at large chunks): Auto
/// vs Dense within a few ULPs elementwise, and both near the serial
/// reference under a loose relative bound (parallel correction
/// reassociates, so serial equality is not expected bit-for-bit).
#[test]
fn float_strategies_match_dense_within_ulps() {
    let n = 20_000;
    let chunks = [64usize, 1024, 4096];

    let f32_sigs = ["0.2:0.8", "1:0.8", "1:1.6,-0.64", "1:-0.5"];
    let data32 = input::<f32>(n);
    for text in f32_sigs {
        let sig: Signature<f32> = text.parse().unwrap();
        let expect = serial::run(&sig, &data32);
        let scale = expect.iter().fold(1.0f32, |m, &v| m.max(v.abs()));
        for chunk in chunks {
            for threads in [1usize, 4] {
                for strategy in STRATEGIES {
                    let ctx = format!("{text} chunk={chunk} threads={threads} {strategy:?}");
                    let (auto, _) =
                        run_with(&sig, &data32, chunk, threads, strategy, PlanMode::Auto);
                    let (dense, _) =
                        run_with(&sig, &data32, chunk, threads, strategy, PlanMode::Dense);
                    for i in 0..n {
                        let d = ulps32(auto[i], dense[i]);
                        assert!(d <= 4, "auto vs dense {d} ulps at {i} for {ctx}");
                        assert!(
                            (auto[i] - expect[i]).abs() <= 1e-3 * scale,
                            "auto strays from serial at {i} for {ctx}: {} vs {}",
                            auto[i],
                            expect[i]
                        );
                    }
                }
            }
        }
    }

    // f64: the 0.8-pole table only underflows near n ≈ 3540, so the
    // truncated strategy engages at the 4096 chunk and not below.
    let f64_sigs = ["0.2:0.8", "0.04:1.6,-0.64"];
    let data64 = input::<f64>(n);
    for text in f64_sigs {
        let sig: Signature<f64> = text.parse().unwrap();
        for chunk in [1024usize, 4096] {
            for strategy in STRATEGIES {
                let ctx = format!("{text} chunk={chunk} {strategy:?}");
                let (auto, _) = run_with(&sig, &data64, chunk, 2, strategy, PlanMode::Auto);
                let (dense, _) = run_with(&sig, &data64, chunk, 2, strategy, PlanMode::Dense);
                for i in 0..n {
                    let d = ulps64(auto[i], dense[i]);
                    assert!(d <= 4, "auto vs dense {d} ulps at {i} for {ctx}");
                }
            }
        }
    }
}

/// The stats surface reports which strategy actually ran.
#[test]
fn plan_kinds_and_reset_counters_surface_in_stats() {
    let data = input::<i64>(4000);
    let kind_of = |text: &str, chunk: usize| -> RunStats {
        let sig: Signature<i64> = text.parse().unwrap();
        run_with(
            &sig,
            &data,
            chunk,
            2,
            RunStrategy::LookbackPipeline,
            PlanMode::Auto,
        )
        .1
    };
    assert_eq!(kind_of("1:1", 64).plan_kind, PlanKind::ScalarFold);
    assert_eq!(kind_of("1:0,1", 64).plan_kind, PlanKind::ConditionalAdd);
    assert_eq!(kind_of("1:-1", 64).plan_kind, PlanKind::Periodic);
    assert_eq!(kind_of("1:2,-1", 64).plan_kind, PlanKind::Dense);

    // Stable IIR at a chunk past the decay depth: truncated plan, carry
    // chain resets on every full chunk, and the per-element correction
    // cost collapses relative to the dense baseline.
    let sig: Signature<f32> = "0.2:0.8".parse().unwrap();
    let data32 = input::<f32>(20_000);
    for strategy in STRATEGIES {
        let (_, auto) = run_with(&sig, &data32, 4096, 2, strategy, PlanMode::Auto);
        let (_, dense) = run_with(&sig, &data32, 4096, 2, strategy, PlanMode::Dense);
        assert_eq!(auto.plan_kind, PlanKind::Truncated, "{strategy:?}");
        assert_eq!(dense.plan_kind, PlanKind::Dense, "{strategy:?}");
        assert!(auto.carry_resets > 0, "{strategy:?} never reset the chain");
        assert_eq!(dense.carry_resets, 0, "{strategy:?} dense must not reset");
        assert!(
            auto.correction_taps * 8 <= dense.correction_taps,
            "{strategy:?}: truncated taps {} not ≪ dense taps {}",
            auto.correction_taps,
            dense.correction_taps
        );
    }
}

/// Two identical runner constructions share one cached plan.
#[test]
fn identical_configs_hit_the_plan_cache() {
    let _g = CACHE_LOCK.lock().unwrap();
    plan::set_cache_enabled(Some(true));
    plan::clear_cache();
    // Signature and chunk chosen to be unique to this test so a
    // concurrently-running differential test can't pre-populate the key.
    let sig: Signature<f32> = "0.3:0.7".parse().unwrap();
    let data = input::<f32>(3000);
    let (_, first) = run_with(
        &sig,
        &data,
        736,
        2,
        RunStrategy::LookbackPipeline,
        PlanMode::Auto,
    );
    let (_, second) = run_with(
        &sig,
        &data,
        736,
        2,
        RunStrategy::LookbackPipeline,
        PlanMode::Auto,
    );
    plan::set_cache_enabled(None);
    assert_eq!(first.plan_cache_misses, 1, "first build must miss");
    assert_eq!(first.plan_cache_hits, 0);
    assert_eq!(second.plan_cache_hits, 1, "second build must hit");
    assert_eq!(second.plan_cache_misses, 0);
}

/// With the cache disabled (the `PLR_PLAN_CACHE=0` CI leg drives the
/// same switch through the environment), every build replans — and the
/// results don't change.
#[test]
fn disabled_cache_replans_identically() {
    let _g = CACHE_LOCK.lock().unwrap();
    plan::set_cache_enabled(Some(false));
    let sig: Signature<f32> = "0.3:0.7".parse().unwrap();
    let data = input::<f32>(3000);
    let (out_a, first) = run_with(
        &sig,
        &data,
        736,
        2,
        RunStrategy::LookbackPipeline,
        PlanMode::Auto,
    );
    let (out_b, second) = run_with(
        &sig,
        &data,
        736,
        2,
        RunStrategy::LookbackPipeline,
        PlanMode::Auto,
    );
    plan::set_cache_enabled(None);
    assert_eq!(first.plan_cache_hits, 0);
    assert_eq!(first.plan_cache_misses, 1);
    assert_eq!(second.plan_cache_hits, 0, "disabled cache must never hit");
    assert_eq!(second.plan_cache_misses, 1);
    assert_eq!(out_a, out_b, "replanning must be deterministic");
}

/// The feedforward taps are part of the cache key: two signatures with
/// identical feedback (identical correction tables!) but different FIR
/// parts must not alias to one plan.
#[test]
fn cache_key_includes_feedforward() {
    let _g = CACHE_LOCK.lock().unwrap();
    plan::set_cache_enabled(Some(true));
    plan::clear_cache();
    let a: Signature<i64> = "1:2,-1".parse().unwrap();
    let b: Signature<i64> = "3:2,-1".parse().unwrap();
    let data = input::<i64>(3000);
    let (out_a, stats_a) = run_with(
        &a,
        &data,
        96,
        2,
        RunStrategy::LookbackPipeline,
        PlanMode::Auto,
    );
    let (out_b, stats_b) = run_with(
        &b,
        &data,
        96,
        2,
        RunStrategy::LookbackPipeline,
        PlanMode::Auto,
    );
    plan::set_cache_enabled(None);
    assert_eq!(stats_a.plan_cache_misses, 1);
    assert_eq!(
        stats_b.plan_cache_misses, 1,
        "same feedback, different feedforward must be a distinct plan"
    );
    assert_eq!(stats_b.plan_cache_hits, 0);
    // Behavioral backstop: if the key dropped the FIR taps, `b` would
    // run `a`'s kernel and diverge from the reference.
    assert_eq!(out_a, serial::run(&a, &data));
    assert_eq!(out_b, serial::run(&b, &data));
}

/// Batch entry points go through the same plan layer: the whole-row path
/// reports its (correction-free) plan, the long-rows path inherits the
/// chunked runner's strategy — including truncation.
#[test]
fn batch_paths_plan_and_match_serial() {
    // Whole-row dispatch: rows ≥ threads, each row solved serially.
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let runner = BatchRunner::new(sig.clone(), 4);
    let width = 512;
    let rows = 8;
    let mut data: Vec<i64> = (0..rows * width)
        .map(|i| ((i * 13) % 11) as i64 - 5)
        .collect();
    let expect: Vec<i64> = data
        .chunks(width)
        .flat_map(|row| serial::run(&sig, row))
        .collect();
    let stats = runner.run_rows(&mut data, width).unwrap();
    assert_eq!(data, expect);
    assert_eq!(stats.plan_kind, PlanKind::Unplanned);
    assert_eq!(
        stats.plan_cache_hits + stats.plan_cache_misses,
        1,
        "whole-row batch consults the plan cache exactly once"
    );

    // Long-rows dispatch: rows < threads, intra-row chunked parallelism;
    // a stable IIR must surface the truncated strategy end to end.
    let sigf: Signature<f32> = "0.2:0.8".parse().unwrap();
    let runner = BatchRunner::new(sigf.clone(), 4);
    let width = 50_000;
    let mut data: Vec<f32> = input::<f32>(2 * width);
    let expect: Vec<f32> = data
        .chunks(width)
        .flat_map(|row| serial::run(&sigf, row))
        .collect();
    let stats = runner.run_rows(&mut data, width).unwrap();
    assert_eq!(stats.plan_kind, PlanKind::Truncated);
    assert!(
        stats.carry_resets > 0,
        "long stable rows must reset carries"
    );
    let scale = expect.iter().fold(1.0f32, |m, &v| m.max(v.abs()));
    for i in 0..data.len() {
        assert!(
            (data[i] - expect[i]).abs() <= 1e-3 * scale,
            "batch long-row strays at {i}: {} vs {}",
            data[i],
            expect[i]
        );
    }
}

/// A stream consults the plan cache once for its lifetime, not per row.
#[test]
fn stream_consults_plan_cache_once() {
    let sig: Signature<i64> = "1:0,1".parse().unwrap();
    let runner = BatchRunner::new(sig.clone(), 2);
    let stream = runner.stream();
    let rows: Vec<Vec<i64>> = (0..5)
        .map(|r| {
            (0..256)
                .map(|i| ((r * 31 + i * 7) % 13) as i64 - 6)
                .collect()
        })
        .collect();
    let handles: Vec<_> = rows
        .iter()
        .map(|row| stream.push_row(row.clone()))
        .collect();
    stream.close();
    for (handle, row) in handles.into_iter().zip(&rows) {
        let (out, result) = handle.join();
        result.unwrap();
        assert_eq!(out, serial::run(&sig, row));
    }
    let stats = stream.finish().unwrap();
    assert_eq!(stats.plan_kind, PlanKind::Unplanned);
    assert_eq!(
        stats.plan_cache_hits + stats.plan_cache_misses,
        1,
        "one plan consult per stream, not per row"
    );
}

/// Arbitrary integer signatures with FIR length 1–2 and feedback order
/// 1–4 (trailing coefficients forced nonzero so the stated order holds).
fn int_signature() -> impl Strategy<Value = Signature<i64>> {
    let nonzero = prop_oneof![-2i64..=-1, 1i64..=2];
    (
        proptest::collection::vec(-2i64..=2, 0..2),
        nonzero.clone(),
        proptest::collection::vec(-2i64..=2, 0..4),
        nonzero,
    )
        .prop_map(|(mut ff, ff_last, mut fb, fb_last)| {
            ff.push(ff_last);
            fb.push(fb_last);
            Signature::new(ff, fb).expect("nonzero trailing coefficients")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the planner picks for an arbitrary integer signature, the
    /// result is bit-identical to the forced-dense baseline and the
    /// serial reference under any geometry.
    #[test]
    fn auto_matches_dense_for_arbitrary_int_signatures(
        sig in int_signature(),
        data in proptest::collection::vec(-20i64..20, 0..1500),
        chunk_pow in 2usize..8,
        threads in 1usize..5,
        two_pass in proptest::bool::ANY,
    ) {
        let strategy = if two_pass { RunStrategy::TwoPass } else { RunStrategy::LookbackPipeline };
        let chunk = (1usize << chunk_pow).max(sig.order());
        let (auto, _) = run_with(&sig, &data, chunk, threads, strategy, PlanMode::Auto);
        let (dense, _) = run_with(&sig, &data, chunk, threads, strategy, PlanMode::Dense);
        prop_assert_eq!(&auto, &dense, "auto != dense for {} chunk={}", &sig, chunk);
        prop_assert_eq!(auto, serial::run(&sig, &data), "auto != serial for {}", &sig);
    }
}
