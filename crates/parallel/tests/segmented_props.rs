//! Differential gauntlet for segmented & sparse parallel recurrences.
//!
//! The contract: every executor of one signature over one segment
//! geometry — the serial per-segment reference [`run_serial`], the
//! chunked demonstrator [`run_chunked`], both [`SegmentedRunner`] carry
//! strategies, the whole-row batch path, and the streaming layer —
//! computes the *same segmented recurrence*. For integer elements the
//! arithmetic is wrapping and exactly reassociable, so every executor
//! must agree **bit-exactly** across orders, segment geometries, chunk
//! sizes, and thread counts. For contractive float gates agreement is
//! elementwise within a few ULPs (segment resets only shorten carry
//! histories, so the bound from the unsegmented gauntlet still holds).
//!
//! The sparse fast path is held to the strongest possible contract: on
//! zero-padded inputs the skip produces output **bit-identical** to the
//! dense path (a skipped chunk's correction pass is its entire output,
//! and `solve(0) == 0` bit-exactly), for floats as well as ints.
//!
//! Also pins the stats surface: segmented runs classify chunks
//! (`reset_chunks`, `skipped_chunks`) and never touch the shared
//! constant-signature correction-plan cache.

use plr_core::error::EngineError;
use plr_core::plan;
use plr_core::segmented::{run_chunked, run_serial, SegmentedPlan, Segments};
use plr_core::{serial, Element, Signature};
use plr_parallel::pool::CancelToken;
use plr_parallel::runner::{RunnerConfig, Strategy};
use plr_parallel::SegmentedRunner;
use proptest::prelude::*;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes tests that flip process-global state (the plan-cache
/// switch, the fault-injection plan) against each other.
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn lock_global() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Deterministic xorshift stream, so every executor sees the same data
/// without an RNG dependency.
fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

fn int_input(n: usize) -> Vec<i64> {
    (0..n).map(|i| (i % 23) as i64 - 11).collect()
}

/// Positive inputs: with positive contractive gates every partial sum is
/// positive, so no cancellation inflates ULP distances.
fn positive_input(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 13) as f64) * 0.1 + 0.5).collect()
}

/// Monotone total-order key for ULP distance; `-0.0` and `0.0` count as
/// equal (same idiom as the plan-layer gauntlet).
fn ulps64(a: f64, b: f64) -> i64 {
    let key = |x: f64| -> i128 {
        let bits = x.to_bits() as i64;
        if bits >= 0 {
            bits as i128
        } else {
            (i64::MIN as i128) - (bits as i128)
        }
    };
    (key(a) - key(b)).unsigned_abs().min(i64::MAX as u128) as i64
}

/// Pure-feedback integer signatures of orders 1–4 (pure feedback so the
/// `run_chunked` demonstrator — which asserts it — joins the gauntlet).
fn int_sig(k: usize) -> Signature<i64> {
    ["1:1", "1:2,-1", "1:1,1,1", "1:1,1,1,1"][k - 1]
        .parse()
        .unwrap()
}

/// Contractive pure-feedback float signature of order `k`: every gate is
/// `0.35/k`, so the feedback row sums to 0.35 — the regime where
/// chunk-boundary rounding decays geometrically.
fn contractive_sig(k: usize) -> Signature<f64> {
    let gates = (0..k)
        .map(|_| format!("{}", 0.35 / k as f64))
        .collect::<Vec<_>>()
        .join(",");
    format!("1:{gates}").parse().unwrap()
}

/// The five segment geometries of the gauntlet, labeled. `chunk` shapes
/// the boundary-on-chunk-edge geometry so its starts land exactly on
/// chunk boundaries for the chunk size under test.
fn geometries(n: usize, chunk: usize) -> Vec<(String, Segments)> {
    let mut rng = xorshift(0x9e0 + n as u64);
    let mut random = vec![0usize];
    let mut i = 0usize;
    loop {
        i += (rng() % 37) as usize + 1;
        if i >= n {
            break;
        }
        random.push(i);
    }
    vec![
        ("uniform".into(), Segments::uniform(97, n)),
        ("random".into(), Segments::from_starts(random).unwrap()),
        ("degenerate-1".into(), Segments::uniform(1, n)),
        ("single".into(), Segments::from_starts(vec![0]).unwrap()),
        (
            "chunk-edge".into(),
            Segments::from_starts((0..n).step_by(chunk.max(1)).collect()).unwrap(),
        ),
    ]
}

fn runner_with<T: Element>(
    sig: &Signature<T>,
    segments: &Segments,
    len: usize,
    chunk: usize,
    threads: usize,
    strategy: Strategy,
) -> SegmentedRunner<T> {
    SegmentedRunner::with_config(
        sig.clone(),
        segments.clone(),
        len,
        RunnerConfig {
            chunk_size: chunk,
            threads,
            strategy,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Every executor output for one signature/geometry, labeled.
fn all_executor_outputs<T: Element>(
    sig: &Signature<T>,
    segments: &Segments,
    input: &[T],
    chunk: usize,
    threads: usize,
) -> Vec<(String, Vec<T>)> {
    let mut outs = Vec::new();
    if sig.is_pure_feedback() && chunk >= sig.order() {
        outs.push((
            "core/run_chunked".into(),
            run_chunked(sig, segments, input, chunk).unwrap(),
        ));
    }
    for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
        let runner = runner_with(sig, segments, input.len(), chunk, threads, strategy);
        outs.push((format!("runner/{strategy:?}"), runner.run(input).unwrap()));
    }
    // Batch and stream entry points, two rows each (they share RowTask).
    let runner = runner_with(
        sig,
        segments,
        input.len(),
        chunk,
        threads,
        Strategy::LookbackPipeline,
    );
    let mut rows: Vec<T> = input.iter().chain(input).copied().collect();
    runner.run_rows(&mut rows, input.len()).unwrap();
    for (r, row) in rows.chunks(input.len()).enumerate() {
        outs.push((format!("batch/row{r}"), row.to_vec()));
    }
    let stream = runner.stream();
    let handles: Vec<_> = (0..2).map(|_| stream.push_row(input.to_vec())).collect();
    for (r, handle) in handles.into_iter().enumerate() {
        let (streamed, outcome) = handle.join();
        outcome.unwrap();
        outs.push((format!("stream/row{r}"), streamed));
    }
    outs
}

/// Integers: every executor path bit-exact against the per-segment
/// serial reference, across orders 1–4, all five segment geometries,
/// ragged chunk geometries, and thread counts.
#[test]
fn int_executors_bit_exact_across_orders_geometries_chunks_threads() {
    let n = 1537;
    let input = int_input(n);
    for k in 1..=4usize {
        let sig = int_sig(k);
        for chunk in [8usize, 64, 711] {
            if chunk < k {
                continue;
            }
            for (geo, segments) in geometries(n, chunk) {
                let expect = run_serial(&sig, &segments, &input);
                for threads in [1usize, 2, 4] {
                    for (label, got) in
                        all_executor_outputs(&sig, &segments, &input, chunk, threads)
                    {
                        assert_eq!(
                            got, expect,
                            "{label} diverged: k={k} geo={geo} chunk={chunk} threads={threads}"
                        );
                    }
                }
            }
        }
    }
}

/// One segment starting at 0 *is* the unsegmented recurrence: the serial
/// segmented reference and the parallel segmented runner must both match
/// the plain serial evaluator bit-for-bit.
#[test]
fn single_segment_equals_unsegmented_run() {
    let n = 3000;
    let input = int_input(n);
    let segments = Segments::from_starts(vec![0]).unwrap();
    for k in 1..=4usize {
        let sig = int_sig(k);
        let plain = serial::run(&sig, &input);
        assert_eq!(run_serial(&sig, &segments, &input), plain, "k={k}");
        for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
            let runner = runner_with(&sig, &segments, n, 256, 4, strategy);
            assert_eq!(runner.run(&input).unwrap(), plain, "k={k} {strategy:?}");
        }
    }
}

/// Contractive float gates, cancellation-free inputs: every executor
/// elementwise within 4 ULP of the serial segmented reference. Segment
/// resets only shorten carry histories, so the unsegmented gauntlet's
/// bound carries over unchanged.
#[test]
fn contractive_floats_within_ulps_of_reference() {
    let n = 6000;
    let input = positive_input(n);
    for k in 1..=4usize {
        let sig = contractive_sig(k);
        for chunk in [64usize, 513] {
            for (geo, segments) in geometries(n, chunk) {
                let expect = run_serial(&sig, &segments, &input);
                for threads in [1usize, 4] {
                    for (label, got) in
                        all_executor_outputs(&sig, &segments, &input, chunk, threads)
                    {
                        for (i, (&g, &e)) in got.iter().zip(&expect).enumerate() {
                            let d = ulps64(g, e);
                            assert!(
                                d <= 4,
                                "{label}: k={k} geo={geo} chunk={chunk} threads={threads} \
                                 i={i}: {g} vs {e} ({d} ULPs)"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// A zero-padded integer input (bursts of signal in a sea of zeros):
/// the sparse skip must count skipped chunks, the dense path must count
/// none, and both must agree bit-exactly with each other and with the
/// serial reference.
#[test]
fn sparse_skip_matches_dense_on_zero_padded_ints() {
    let n = 8192;
    let chunk = 256;
    let segments = Segments::uniform(1000, n);
    let mut input = vec![0i64; n];
    for burst in [0usize, 3000, 6500] {
        for (i, v) in input[burst..burst + 200].iter_mut().enumerate() {
            *v = (i % 9) as i64 - 4;
        }
    }
    let sig = int_sig(2);
    let expect = run_serial(&sig, &segments, &input);
    for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
        let sparse = runner_with(&sig, &segments, n, chunk, 4, strategy);
        let dense_plan = SegmentedPlan::build(&sig, segments.clone(), n, chunk)
            .unwrap()
            .with_sparse(false);
        let dense = SegmentedRunner::from_plan(
            dense_plan,
            RunnerConfig {
                threads: 4,
                strategy,
                ..Default::default()
            },
        );
        let mut sparse_data = input.clone();
        let sparse_stats = sparse.run_in_place(&mut sparse_data).unwrap();
        let mut dense_data = input.clone();
        let dense_stats = dense.run_in_place(&mut dense_data).unwrap();
        assert_eq!(sparse_data, expect, "{strategy:?} sparse");
        assert_eq!(dense_data, expect, "{strategy:?} dense");
        assert!(
            sparse_stats.skipped_chunks > 0,
            "{strategy:?}: zero chunks must be skipped, got {sparse_stats:?}"
        );
        assert_eq!(dense_stats.skipped_chunks, 0, "{strategy:?} dense");
        assert!(sparse_stats.reset_chunks > 0, "{strategy:?}");
    }
}

/// The same contract for floats, held to the strongest bound: the skip
/// is **bit-identical** to the dense solve (`solve(0) == 0` bit-exactly
/// and the correction pass is shared code), so even `-0.0` vs `0.0`
/// differences are forbidden.
#[test]
fn sparse_skip_is_bit_identical_to_dense_on_floats() {
    let n = 8192;
    let chunk = 256;
    let segments = Segments::uniform(1500, n);
    let mut input = vec![0f64; n];
    for (i, v) in input[2000..2300].iter_mut().enumerate() {
        *v = ((i % 13) as f64) * 0.1 + 0.5;
    }
    let sig = contractive_sig(2);
    for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
        let sparse = runner_with(&sig, &segments, n, chunk, 4, strategy);
        let dense_plan = SegmentedPlan::build(&sig, segments.clone(), n, chunk)
            .unwrap()
            .with_sparse(false);
        let dense = SegmentedRunner::from_plan(
            dense_plan,
            RunnerConfig {
                threads: 4,
                strategy,
                ..Default::default()
            },
        );
        let mut sparse_data = input.clone();
        let stats = sparse.run_in_place(&mut sparse_data).unwrap();
        let mut dense_data = input.clone();
        dense.run_in_place(&mut dense_data).unwrap();
        assert!(stats.skipped_chunks > 0, "{strategy:?}");
        for (i, (g, e)) in sparse_data.iter().zip(&dense_data).enumerate() {
            assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "{strategy:?} i={i}: sparse {g} != dense {e} (bitwise)"
            );
        }
    }
}

/// Empty input runs to an empty result through every path — pinned
/// against the `Segments::uniform(len, 0)` phantom-start regression (a
/// phantom `starts == [0]` used to make downstream code believe a
/// segment existed).
#[test]
fn empty_input_runs_to_empty_result_everywhere() {
    let segments = Segments::uniform(4, 0);
    assert!(
        segments.starts().is_empty(),
        "uniform over zero elements must not invent a phantom segment"
    );
    let sig = int_sig(2);
    assert_eq!(run_serial(&sig, &segments, &[]), Vec::<i64>::new());
    assert_eq!(
        run_chunked(&sig, &segments, &[], 8).unwrap(),
        Vec::<i64>::new()
    );
    for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
        let runner = runner_with(&sig, &segments, 0, 8, 2, strategy);
        assert_eq!(runner.run(&[]).unwrap(), Vec::<i64>::new(), "{strategy:?}");
        let stats = runner.run_in_place(&mut []).unwrap();
        assert_eq!(stats.chunks, 0, "{strategy:?}");
        // A zero-length plan has no row width; the batch path must
        // reject rather than divide by zero.
        assert!(matches!(
            runner.run_rows(&mut [], 0),
            Err(EngineError::UnsupportedSignature { .. })
        ));
    }
}

/// Satellite contract: segmented runs never touch the constant
/// correction-plan cache — no entry is inserted, no hit or miss is
/// reported (the cache key has no boundary map, so a cached unsegmented
/// entry must never serve a segmented run), and a constant-signature
/// probe afterwards still sees a cold cache.
#[test]
fn segmented_runs_bypass_the_constant_plan_cache() {
    let _g = lock_global();
    plan::set_cache_enabled(Some(true));
    plan::clear_cache();
    assert_eq!(plan::cache_len(), 0);

    let n = 4000;
    let segments = Segments::uniform(333, n);
    let sig = int_sig(2);
    let input = int_input(n);
    for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
        let runner = runner_with(&sig, &segments, n, 128, 2, strategy);
        let mut data = input.clone();
        let stats = runner.run_in_place(&mut data).unwrap();
        assert_eq!(stats.plan_cache_hits, 0, "{strategy:?}");
        assert_eq!(stats.plan_cache_misses, 0, "{strategy:?}");
    }
    // Batch + stream entry points are cache-silent too.
    let runner = runner_with(&sig, &segments, n, 128, 2, Strategy::LookbackPipeline);
    let mut rows = input.clone();
    let stats = runner.run_rows(&mut rows, n).unwrap();
    assert_eq!(stats.plan_cache_hits + stats.plan_cache_misses, 0);
    let stream = runner.stream();
    let (_, outcome) = stream.push_row(input.clone()).join();
    outcome.unwrap();

    assert_eq!(
        plan::cache_len(),
        0,
        "segmented executors must not populate the constant plan cache"
    );

    // A constant-signature probe immediately afterwards must still be a
    // cold miss — nothing aliased its key.
    let constant: Signature<i64> = "1:2,-1".parse().unwrap();
    let probe = plr_parallel::ParallelRunner::with_config(
        constant,
        RunnerConfig {
            chunk_size: 731,
            threads: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let mut data = int_input(2000);
    let stats = probe.run_in_place(&mut data).unwrap();
    plan::set_cache_enabled(None);
    assert_eq!(stats.plan_cache_misses, 1, "probe must miss a cold cache");
    assert_eq!(stats.plan_cache_hits, 0);
}

/// A pre-cancelled token and an already-expired deadline both reject a
/// segmented run before it touches the data, for both strategies.
#[test]
fn pre_cancelled_token_and_zero_deadline_reject_promptly() {
    let n = 4096;
    let segments = Segments::uniform(500, n);
    let sig = int_sig(2);
    let input = int_input(n);
    for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
        let runner = runner_with(&sig, &segments, n, 256, 4, strategy);
        let token = CancelToken::new();
        token.cancel();
        match runner.run_with_cancel(&input, &token) {
            Err(EngineError::Cancelled) => {}
            other => panic!("{strategy:?}: expected Cancelled, got {other:?}"),
        }
        let expired = SegmentedRunner::with_config(
            sig.clone(),
            segments.clone(),
            n,
            RunnerConfig {
                chunk_size: 256,
                threads: 4,
                strategy,
                deadline: Some(Duration::ZERO),
                ..Default::default()
            },
        )
        .unwrap();
        match expired.run(&input) {
            Err(EngineError::DeadlineExceeded { .. }) => {}
            other => panic!("{strategy:?}: expected DeadlineExceeded, got {other:?}"),
        }
        // The runner (and its pool) survives both rejections.
        assert_eq!(
            runner.run(&input).unwrap(),
            run_serial(&sig, &segments, &input),
            "{strategy:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized differential sweep: arbitrary orders, input lengths,
    /// segment geometries, and run geometry — every executor path
    /// bit-exact against the per-segment serial reference. (The vendored
    /// proptest stub has no flat-map, so dependent shapes derive from a
    /// drawn seed.)
    #[test]
    fn random_segment_geometries_bit_exact(
        k in 1usize..=4,
        n in 1usize..600,
        seed in 1u64..u64::MAX,
        chunk_sel in 0usize..3,
        threads in 1usize..=4,
    ) {
        let sig = int_sig(k);
        let mut rng = xorshift(seed);
        let mut starts = vec![0usize];
        let mut i = 0usize;
        loop {
            i += (rng() % 29) as usize + 1;
            if i >= n {
                break;
            }
            starts.push(i);
        }
        let segments = Segments::from_starts(starts).unwrap();
        let data: Vec<i64> = (0..n).map(|_| (rng() % 41) as i64 - 20).collect();
        let expect = run_serial(&sig, &segments, &data);
        let chunk = [k.max(4), k.max(37), k.max(n)][chunk_sel];
        for (label, got) in all_executor_outputs(&sig, &segments, &data, chunk, threads) {
            prop_assert_eq!(
                &got, &expect,
                "{} diverged: k={} n={} chunk={} threads={}", label, k, n, chunk, threads
            );
        }
    }
}

/// Fault-injection legs (CI's `segmented` job runs this file with
/// `--features fault-inject`): an injected worker fault in a segmented
/// run must surface as `WorkerPanicked` — never a hang — and the same
/// runner (same pool) must complete a fault-free, bit-exact rerun. The
/// delay legs wedge a pipeline stage to prove cancellation and deadlines
/// reclaim a stuck segmented run.
#[cfg(feature = "fault-inject")]
mod fault_legs {
    use super::*;
    use plr_parallel::fault::{self, FaultPlan, FaultSite};
    use std::time::Instant;

    /// Silences the default panic-hook output for panics this module
    /// injects on purpose; everything else still prints.
    fn quiet_injected_panics() {
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let payload = info.payload();
                let s = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                    .unwrap_or("");
                if !s.contains("injected fault") && !payload.is::<plr_parallel::pool::WorkerExit>()
                {
                    default(info);
                }
            }));
        });
    }

    /// Runs `f` on a helper thread, panicking if it does not finish in
    /// `secs` — a hang becomes a test failure, not a stuck CI job.
    fn watchdog<R: Send + 'static>(secs: u64, f: impl FnOnce() -> R + Send + 'static) -> R {
        let (tx, rx) = std::sync::mpsc::channel();
        let worker = std::thread::spawn(move || {
            let _ = tx.send(f());
        });
        match rx.recv_timeout(Duration::from_secs(secs)) {
            Ok(r) => {
                let _ = worker.join();
                r
            }
            Err(_) => panic!("watchdog: faulted segmented run did not return within {secs}s"),
        }
    }

    const N: usize = 8192;
    const CHUNK: usize = 256;

    /// Uniform 1000-element segments over 8192: boundaries land mid-chunk
    /// (reset chunks exist) and most chunks are interior.
    fn segments() -> Segments {
        Segments::uniform(1000, N)
    }

    fn faulted_runner(strategy: Strategy) -> SegmentedRunner<i64> {
        runner_with(&int_sig(2), &segments(), N, CHUNK, 4, strategy)
    }

    fn assert_fault_contract(strategy: Strategy, plan: FaultPlan) {
        let _g = lock_global();
        quiet_injected_panics();
        let data = int_input(N);
        let expect = run_serial(&int_sig(2), &segments(), &data);
        let runner = faulted_runner(strategy);

        // Warm the pool so the fault hits resident, parked workers.
        assert_eq!(runner.run(&data).unwrap(), expect, "warm-up must validate");

        fault::arm(plan.clone());
        let (runner, faulted) = watchdog(60, move || {
            let r = runner.run(&data);
            (runner, r)
        });
        let fired = !fault::is_armed();
        fault::disarm();
        assert!(fired, "plan never fired: {plan:?}");
        match faulted {
            Err(EngineError::WorkerPanicked { .. }) => {}
            other => panic!("expected WorkerPanicked, got {other:?} for {plan:?}"),
        }

        // Same pool, fault-free rerun: bit-exact recovery.
        let data = int_input(N);
        let got = watchdog(60, move || runner.run(&data).unwrap());
        assert_eq!(
            got, expect,
            "rerun after fault must validate ({strategy:?})"
        );
    }

    #[test]
    fn solve_fault_errors_and_recovers_lookback() {
        assert_fault_contract(
            Strategy::LookbackPipeline,
            FaultPlan::panic_at_chunk(FaultSite::Solve, (N / CHUNK) / 2),
        );
    }

    #[test]
    fn solve_fault_errors_and_recovers_two_pass() {
        assert_fault_contract(
            Strategy::TwoPass,
            FaultPlan::panic_at_chunk(FaultSite::Solve, (N / CHUNK) / 2),
        );
    }

    /// Chunk 16 spans `[4096, 4352)` — no segment boundary inside, so it
    /// is an interior chunk and consults the look-back site
    /// unconditionally under the pipeline strategy.
    #[test]
    fn lookback_fault_errors_and_recovers_lookback() {
        assert_fault_contract(
            Strategy::LookbackPipeline,
            FaultPlan::panic_at_chunk(FaultSite::Lookback, (N / CHUNK) / 2),
        );
    }

    /// Under two-pass the same site is the sequential carry chain
    /// (consulted with worker id 0 for every chunk past the first).
    #[test]
    fn lookback_fault_errors_and_recovers_two_pass() {
        assert_fault_contract(
            Strategy::TwoPass,
            FaultPlan::panic_at_chunk(FaultSite::Lookback, (N / CHUNK) / 2),
        );
    }

    /// A short stall at a mid-pipeline solve drives successors into
    /// their spin-wait look-back paths; the run must still complete
    /// bit-exactly.
    #[test]
    fn solve_delay_drives_spin_waits_and_stays_exact() {
        let _g = lock_global();
        quiet_injected_panics();
        let data = int_input(N);
        let expect = run_serial(&int_sig(2), &segments(), &data);
        let runner = faulted_runner(Strategy::LookbackPipeline);
        runner.run(&data).unwrap(); // warm: resident, parked workers
        fault::arm(FaultPlan::delay_at_chunk(
            FaultSite::Solve,
            (N / CHUNK) / 2,
            Duration::from_millis(50),
        ));
        let got = watchdog(60, move || runner.run(&data).unwrap());
        let fired = !fault::is_armed();
        fault::disarm();
        assert!(fired, "delay plan never fired");
        assert_eq!(got, expect, "delayed run must still validate");
    }

    /// A cancel token ends a segmented run wedged in a 30s injected
    /// stall — only the token can end it within the test budget — and
    /// the runner stays usable.
    #[test]
    fn cancel_token_ends_a_wedged_segmented_run() {
        let _g = lock_global();
        quiet_injected_panics();
        let data = int_input(N);
        let expect = run_serial(&int_sig(2), &segments(), &data);
        let runner = faulted_runner(Strategy::LookbackPipeline);
        runner.run(&data).unwrap(); // warm (fault-free)
        fault::arm(FaultPlan::delay_at_chunk(
            FaultSite::Solve,
            (N / CHUNK) / 2,
            Duration::from_secs(30),
        ));
        let token = CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(150));
                token.cancel();
            })
        };
        let start = Instant::now();
        let (runner, result) = watchdog(60, move || {
            let r = runner.run_with_cancel(&data, &token);
            (runner, r)
        });
        canceller.join().unwrap();
        fault::disarm();
        match result {
            Err(EngineError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "cancellation must reclaim the wedged run promptly"
        );
        let data = int_input(N);
        let got = watchdog(60, move || runner.run(&data).unwrap());
        assert_eq!(got, expect, "rerun after cancellation must validate");
    }

    /// The deadline watchdog trips a segmented two-pass run wedged in a
    /// 45s injected stall, well inside the test budget.
    #[test]
    fn deadline_trips_a_wedged_segmented_run() {
        let _g = lock_global();
        quiet_injected_panics();
        let data = int_input(N);
        let runner = SegmentedRunner::with_config(
            int_sig(2),
            segments(),
            N,
            RunnerConfig {
                chunk_size: CHUNK,
                threads: 4,
                strategy: Strategy::TwoPass,
                deadline: Some(Duration::from_millis(500)),
                ..Default::default()
            },
        )
        .unwrap();
        runner.run(&data).unwrap(); // warm (well under the deadline)
        fault::arm(FaultPlan::delay_at_chunk(
            FaultSite::Solve,
            (N / CHUNK) / 2,
            Duration::from_secs(45),
        ));
        let start = Instant::now();
        let result = watchdog(60, move || runner.run(&data));
        fault::disarm();
        match result {
            Err(EngineError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "deadline must end the wedged run long before the stall"
        );
    }
}
