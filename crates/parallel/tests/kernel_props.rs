//! Kernel-dispatch reporting and time-sliced-solve tests for the
//! parallel layer.
//!
//! The kernel tier is process-global (`PLR_KERNEL` / `set_kernel_override`)
//! and several tests here flip it, so every test in this binary grabs one
//! mutex: a runner built under one tier must not be asserted against a
//! tier another test just installed.

use plr_core::blocked::{SolveKernel, SOLVE_SLICE};
use plr_core::kernel::KernelKind;
use plr_core::serial;
use plr_core::signature::Signature;
use plr_core::{set_kernel_override, KernelTier};
use plr_parallel::{BatchRunner, CancelToken, ParallelRunner, RunnerConfig, Strategy};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Restores the ambient tier when a test body panics, so one failure
/// doesn't cascade into every later test in the binary.
struct TierGuard;
impl Drop for TierGuard {
    fn drop(&mut self) {
        set_kernel_override(None);
    }
}

fn input(n: usize) -> Vec<i64> {
    (0..n).map(|i| ((i * 29) % 19) as i64 - 9).collect()
}

/// Both runner strategies report the same kernel the dispatcher would
/// hand out right now, never `Unknown`.
#[test]
fn run_stats_report_the_dispatched_kernel() {
    let _g = serialize();
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let expect = SolveKernel::select(sig.feedback()).kind();
    assert_ne!(expect, KernelKind::Unknown);
    let data = input(10_000);
    for strategy in [Strategy::LookbackPipeline, Strategy::TwoPass] {
        let runner = ParallelRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 512,
                threads: 2,
                strategy,
                ..Default::default()
            },
        )
        .unwrap();
        let mut got = data.clone();
        let stats = runner.run_in_place(&mut got).unwrap();
        assert_eq!(stats.kernel, expect, "{strategy:?}");
        assert_eq!(got, serial::run(&sig, &data), "{strategy:?}");
    }
}

/// The batch whole-rows path and the streaming path report the kernel
/// too (they share one `RowTask`, so they must agree).
#[test]
fn batch_and_stream_stats_report_the_kernel() {
    let _g = serialize();
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let expect = SolveKernel::select(sig.feedback()).kind();
    let width = 256;
    let rows = 8;
    let data = input(width * rows);
    let runner = BatchRunner::new(sig.clone(), 2);

    let mut got = data.clone();
    let stats = runner.run_rows(&mut got, width).unwrap();
    assert_eq!(stats.kernel, expect, "whole-rows path");
    assert_eq!(stats.solve_slices, rows as u64, "one slice per short row");

    let stream = runner.stream();
    let handles: Vec<_> = data
        .chunks(width)
        .map(|row| stream.push_row(row.to_vec()))
        .collect();
    stream.close();
    for (handle, row) in handles.into_iter().zip(data.chunks(width)) {
        let (out, result) = handle.join();
        let row_stats = result.unwrap();
        assert_eq!(out, serial::run(&sig, row));
        assert_eq!(row_stats.kernel, expect, "per-row stats");
    }
    let stats = stream.finish().unwrap();
    assert_eq!(stats.kernel, expect, "stream aggregate");
    assert_eq!(stats.solve_slices, rows as u64);
}

/// Forcing a tier through the programmatic override changes both the
/// kernel that runs and the kernel the stats report; results stay
/// bit-identical across tiers.
#[test]
fn forced_tiers_surface_in_stats() {
    let _g = serialize();
    let _restore = TierGuard;
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let data = input(30_000);
    let expect = serial::run(&sig, &data);
    for (tier, accept) in [
        (KernelTier::Scalar, &[KernelKind::Scalar][..]),
        (KernelTier::Blocked, &[KernelKind::Blocked][..]),
        (
            KernelTier::Simd,
            &[
                KernelKind::SimdPortable,
                KernelKind::SimdAvx2,
                KernelKind::SimdAvx512,
            ][..],
        ),
    ] {
        set_kernel_override(Some(tier));
        let runner = ParallelRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 1024,
                threads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut got = data.clone();
        let stats = runner.run_in_place(&mut got).unwrap();
        assert!(
            accept.contains(&stats.kernel),
            "{tier:?}: reported {:?}, wanted one of {accept:?}",
            stats.kernel
        );
        assert_eq!(got, expect, "{tier:?}");
    }
    set_kernel_override(None);
}

/// A chunk longer than `SOLVE_SLICE` is solved in abort-polled slices,
/// and the slice count surfaces in stats: `ceil(n / SOLVE_SLICE)` for a
/// single-chunk run, one per chunk when chunks are short.
#[test]
fn solve_slices_surface_in_stats() {
    let _g = serialize();
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let n = 3 * SOLVE_SLICE + 421;
    let data = input(n);
    let runner = ParallelRunner::with_config(
        sig.clone(),
        RunnerConfig {
            chunk_size: n,
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let mut got = data.clone();
    let stats = runner.run_in_place(&mut got).unwrap();
    assert_eq!(stats.chunks, 1);
    assert_eq!(stats.solve_slices, 4, "3 full slices + remainder");
    assert_eq!(got, serial::run(&sig, &data));

    // Short chunks: the unsliced fast path, one slice each.
    let runner = ParallelRunner::with_config(
        sig.clone(),
        RunnerConfig {
            chunk_size: SOLVE_SLICE / 4,
            threads: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let mut got = data.clone();
    let stats = runner.run_in_place(&mut got).unwrap();
    assert_eq!(stats.solve_slices, stats.chunks);
    assert_eq!(got, serial::run(&sig, &data));
}

/// The ISSUE 7 cancellation regression: one row, one chunk, a solve long
/// enough that a cancel must land *inside* the kernel. Before the
/// time-sliced solve, the worker could not observe the token until the
/// whole chunk was done; now the solve bails at a slice boundary, the
/// run reports `Cancelled`, and the tail of the buffer is provably
/// untouched (still the raw input).
#[test]
fn cancel_token_interrupts_a_single_chunk_solve() {
    let _g = serialize();
    let _restore = TierGuard;
    // Forced scalar pins the slowest kernel so the solve comfortably
    // outlives the cancel delay on any hardware (~tens of ms for 16M
    // elements vs a 2 ms cancel).
    set_kernel_override(Some(KernelTier::Scalar));
    let sig: Signature<i32> = "1:2,-1".parse().unwrap();
    let n = 16 * 1024 * 1024;
    let mut data: Vec<i32> = (0..n).map(|i| ((i * 29) % 19) as i32 - 9).collect();
    let runner = ParallelRunner::with_config(
        sig,
        RunnerConfig {
            chunk_size: n,
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            token.cancel();
        })
    };
    let result = runner.run_in_place_with_cancel(&mut data, &token);
    canceller.join().unwrap();
    set_kernel_override(None);
    match result {
        Err(plr_core::error::EngineError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // Mid-kernel evidence: some suffix must still hold raw input. (A
    // pre-slicing solve would have rewritten every element before the
    // abort was seen.)
    let untouched_tail = data
        .iter()
        .enumerate()
        .rev()
        .take_while(|&(i, &v)| v == ((i * 29) % 19) as i32 - 9)
        .count();
    assert!(
        untouched_tail > 0,
        "cancel landed only after the whole chunk was solved"
    );
}
