//! Fault-injection property tests (require `--features fault-inject`).
//!
//! Every test injects a fault into some stage of the parallel pipeline
//! and asserts the three recovery guarantees of the execution layer:
//!
//! 1. the run returns `EngineError::WorkerPanicked` — it never hangs
//!    (every faulted run is bounded by a watchdog timeout);
//! 2. the same pool instance survives and a fault-free rerun completes;
//! 3. the rerun's output still validates against the serial reference.
#![cfg(feature = "fault-inject")]

use plr_core::error::EngineError;
use plr_core::serial;
use plr_core::signature::Signature;
use plr_parallel::fault::{self, FaultKind, FaultPlan, FaultSite};
use plr_parallel::{
    BatchRunner, CancelToken, ParallelRunner, RunControl, RunError, RunnerConfig,
    Strategy as RunStrategy, WorkerPool,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The fault plan is process-global: tests must not interleave arming.
/// Recovering from poisoning matters here — a failed assertion under the
/// lock must not cascade into every later test.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Silences the default panic-hook output for panics this suite injects
/// on purpose; everything else still prints.
fn quiet_injected_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let s = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            if !s.contains("injected fault") && !payload.is::<plr_parallel::pool::WorkerExit>() {
                default(info);
            }
        }));
    });
}

/// Runs `f` on a helper thread, panicking if it does not finish within
/// `secs` — the bound that turns "the pipeline hangs" into a test
/// failure instead of a stuck CI job.
fn watchdog<R: Send + 'static>(secs: u64, f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(r) => {
            let _ = worker.join();
            r
        }
        Err(_) => panic!("watchdog: faulted run did not return within {secs}s (hang)"),
    }
}

const N: usize = 16_384;
const CHUNK: usize = 256;
const NUM_CHUNKS: usize = N / CHUNK;

/// Worker count for the suite: the `PLR_THREADS` CI matrix leg when set
/// (1/2/4 in the workflow), otherwise 4 — so one test body covers the
/// inline, two-worker, and oversubscribed schedules.
fn threads() -> usize {
    std::env::var("PLR_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

fn input(n: usize) -> Vec<i64> {
    (0..n).map(|i| ((i * 29) % 19) as i64 - 9).collect()
}

/// Arms `plan`, runs the runner under a watchdog, and asserts the
/// fault → `WorkerPanicked` → recovery → revalidation contract.
fn assert_fault_contract(
    sig: Signature<i64>,
    config: RunnerConfig,
    plan: FaultPlan,
) -> Result<(), TestCaseError> {
    let _serial = serialize();
    quiet_injected_panics();
    let runner = ParallelRunner::with_config(sig.clone(), config).unwrap();
    let data = input(N);
    let expect = serial::run(&sig, &data);

    // Warm the pool first so the fault hits resident, parked workers —
    // the steady state a service would be in.
    let warm = runner.run(&data).unwrap();
    prop_assert_eq!(&warm, &expect, "fault-free warm-up must validate");

    fault::arm(plan.clone());
    let (runner, faulted) = watchdog(60, move || {
        let r = runner.run(&data);
        (runner, r)
    });
    let fired = !fault::is_armed();
    fault::disarm();
    prop_assert!(fired, "plan never fired: {plan:?}");
    match faulted {
        Err(EngineError::WorkerPanicked { .. }) => {}
        other => {
            return Err(TestCaseError::fail(format!(
                "expected WorkerPanicked, got {other:?} for plan {plan:?}"
            )))
        }
    }

    // The same pool instance must complete a fault-free rerun correctly.
    let data = input(N);
    let (stats, got) = watchdog(60, move || {
        let mut data2 = data;
        let stats = runner.run_in_place(&mut data2);
        (stats, data2)
    });
    let stats = stats.expect("fault-free rerun must succeed");
    prop_assert_eq!(&got, &expect, "rerun after fault must validate");
    prop_assert_eq!(
        stats.threads,
        threads() as u64,
        "pool width must be healed after the fault (recovered {})",
        stats.workers_recovered
    );
    prop_assert_eq!(stats.aborts, 0, "fault-free rerun must not abort");
    Ok(())
}

/// Integer signatures of order 1–4 with a 1–2 tap FIR part.
fn signature() -> impl Strategy<Value = Signature<i64>> {
    let nonzero = prop_oneof![-2i64..=-1, 1i64..=2];
    (
        proptest::collection::vec(-2i64..=2, 0..2),
        nonzero.clone(),
        proptest::collection::vec(-2i64..=2, 0..4),
        nonzero,
    )
        .prop_map(|(mut ff, ff_last, mut fb, fb_last)| {
            ff.push(ff_last);
            fb.push(fb_last);
            Signature::new(ff, fb).expect("nonzero trailing coefficients")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (signature, strategy, site, chunk, kind) combination obeys the
    /// fault → error → recovery contract.
    #[test]
    fn injected_faults_error_and_recover(
        sig in signature(),
        two_pass in proptest::bool::ANY,
        lookback_site in proptest::bool::ANY,
        position in 0usize..3,
        exit_worker in proptest::bool::ANY,
    ) {
        let strategy = if two_pass { RunStrategy::TwoPass } else { RunStrategy::LookbackPipeline };
        let site = if lookback_site { FaultSite::Lookback } else { FaultSite::Solve };
        // First / middle / last chunk — except the look-back site, which
        // chunk 0 never consults (it has no predecessor).
        let chunk = match position {
            0 if site == FaultSite::Solve => 0,
            0 => 1,
            1 => NUM_CHUNKS / 2,
            _ => NUM_CHUNKS - 1,
        };
        let plan = if exit_worker {
            FaultPlan::exit_at_chunk(site, chunk)
        } else {
            FaultPlan::panic_at_chunk(site, chunk)
        };
        let config = RunnerConfig {
            chunk_size: CHUNK,
            threads: threads(),
            strategy,
            ..Default::default()
        };
        assert_fault_contract(sig, config, plan)?;
    }

    /// Call-count targeting (the K-th consultation) also errors and
    /// recovers — the "call K" axis of the plan.
    #[test]
    fn kth_call_faults_error_and_recover(
        sig in signature(),
        k in 1u64..40,
        two_pass in proptest::bool::ANY,
    ) {
        let strategy = if two_pass { RunStrategy::TwoPass } else { RunStrategy::LookbackPipeline };
        let config = RunnerConfig {
            chunk_size: CHUNK,
            threads: threads(),
            strategy,
            ..Default::default()
        };
        assert_fault_contract(sig, config, FaultPlan::panic_at_call(FaultSite::Solve, k))?;
    }
}

/// Worker 0 (the calling thread) is just another worker: a fault pinned
/// to it must come back as `WorkerPanicked { worker: 0 }` on a width-1
/// pool, where the caller is provably the one consulting.
#[test]
fn worker_zero_fault_is_an_error_not_an_unwind() {
    let _serial = serialize();
    quiet_injected_panics();
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let runner = ParallelRunner::with_config(
        sig,
        RunnerConfig {
            chunk_size: CHUNK,
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let data = input(N);
    fault::arm(FaultPlan::panic_at_worker(FaultSite::Solve, 0));
    let (runner, result) = watchdog(60, move || {
        let r = runner.run(&data);
        (runner, r)
    });
    fault::disarm();
    match result {
        Err(EngineError::WorkerPanicked { worker, payload }) => {
            assert_eq!(worker, 0);
            assert!(payload.contains("injected fault"), "{payload}");
        }
        other => panic!("expected WorkerPanicked from worker 0, got {other:?}"),
    }
    assert!(runner.run(&input(100)).is_ok());
}

/// A simulated thread death mid-pipeline is healed by the next
/// submission: the pool respawns the dead worker and reports it.
#[test]
fn dead_worker_is_respawned_and_reported() {
    let _serial = serialize();
    quiet_injected_panics();
    let sig: Signature<i64> = "1:1".parse().unwrap();
    let runner = ParallelRunner::with_config(
        sig.clone(),
        RunnerConfig {
            chunk_size: CHUNK,
            threads: threads(),
            ..Default::default()
        },
    )
    .unwrap();
    let data = input(N);
    // Warm up, then kill whichever worker claims a middle chunk.
    runner.run(&data).unwrap();
    fault::arm(FaultPlan::exit_at_chunk(FaultSite::Solve, NUM_CHUNKS / 2));
    let (runner, result) = watchdog(60, move || {
        let r = runner.run(&data);
        (runner, r)
    });
    fault::disarm();
    assert!(
        matches!(result, Err(EngineError::WorkerPanicked { .. })),
        "{result:?}"
    );
    let mut data = input(N);
    let stats = runner.run_in_place(&mut data).unwrap();
    assert_eq!(data, serial::run(&sig, &input(N)));
    // Whether the victim was a spawned worker (now respawned) or the
    // caller (nothing to respawn), the effective width is back to full.
    assert_eq!(stats.threads, threads() as u64);
    assert!(stats.workers_recovered <= 1);
}

/// Delay injection stalls chunk 0's solve so every other worker lands in
/// the look-back spin path; the run must still complete and validate.
#[test]
fn delay_injection_covers_the_spin_path() {
    let _serial = serialize();
    quiet_injected_panics();
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let runner = ParallelRunner::with_config(
        sig.clone(),
        RunnerConfig {
            chunk_size: CHUNK,
            threads: threads(),
            ..Default::default()
        },
    )
    .unwrap();
    fault::arm(FaultPlan::delay_at_chunk(
        FaultSite::Solve,
        0,
        Duration::from_millis(50),
    ));
    let data = input(N);
    let (stats, got) = watchdog(60, move || {
        let mut d = data;
        let stats = runner.run_in_place(&mut d).unwrap();
        (stats, d)
    });
    assert!(!fault::is_armed(), "delay plan must have fired");
    assert_eq!(got, serial::run(&sig, &input(N)));
    assert_eq!(stats.aborts, 0, "a delay is a stall, not a failure");
}

/// The batch executor's whole-rows path obeys the same contract.
#[test]
fn batch_row_fault_errors_and_recovers() {
    let _serial = serialize();
    quiet_injected_panics();
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let batch = BatchRunner::new(sig.clone(), threads());
    let width = 512;
    let rows = 64;
    let data: Vec<i64> = input(width * rows);
    let reference: Vec<i64> = data
        .chunks(width)
        .flat_map(|row| serial::run(&sig, row))
        .collect();
    let mut batch = batch;
    for kind in [FaultKind::Panic, FaultKind::ExitWorker] {
        // Warm the pool so the fault hits resident, parked workers.
        let mut warm = data.clone();
        batch.run_rows(&mut warm, width).unwrap();
        assert_eq!(warm, reference);

        fault::arm(FaultPlan {
            site: FaultSite::Solve,
            worker: None,
            chunk: Some(rows / 2),
            nth_call: None,
            kind,
        });
        let (returned, result) = {
            let b = batch;
            let mut d = data.clone();
            watchdog(60, move || {
                let r = b.run_rows(&mut d, width);
                (b, r)
            })
        };
        batch = returned;
        fault::disarm();
        assert!(
            matches!(result, Err(EngineError::WorkerPanicked { .. })),
            "{result:?}"
        );

        // The same batch runner (same pool) must rerun cleanly.
        let mut d = data.clone();
        let stats = batch.run_rows(&mut d, width).unwrap();
        assert_eq!(d, reference, "batch rerun after fault must validate");
        assert_eq!(stats.threads, threads() as u64);
    }
}

/// With the feature compiled in but no plan armed, the instrumented
/// sites are inert: results match the serial reference exactly.
#[test]
fn unarmed_harness_is_inert() {
    let _serial = serialize();
    fault::disarm();
    let sig: Signature<i64> = "1,1:3,-3,1".parse().unwrap();
    for strategy in [RunStrategy::LookbackPipeline, RunStrategy::TwoPass] {
        let runner = ParallelRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: CHUNK,
                threads: threads(),
                strategy,
                ..Default::default()
            },
        )
        .unwrap();
        let data = input(N);
        assert_eq!(
            runner.run(&data).unwrap(),
            serial::run(&sig, &data),
            "{strategy:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Cancellation & deadline under injected wedges (ISSUE 4 acceptance).
// ---------------------------------------------------------------------

/// A run wedged by an injected delay is aborted through a caller-held
/// `CancelToken`: the call returns `EngineError::Cancelled` long before
/// the planned stall would end, the pool heals, and an immediate rerun
/// validates bit-exactly against the serial reference.
#[test]
fn cancel_token_cancels_a_wedged_run() {
    let _serial = serialize();
    quiet_injected_panics();
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let runner = ParallelRunner::with_config(
        sig.clone(),
        RunnerConfig {
            chunk_size: CHUNK,
            threads: threads(),
            ..Default::default()
        },
    )
    .unwrap();
    let data = input(N);
    runner.run(&data).unwrap(); // warm: resident, parked workers

    // Wedge a mid-pipeline solve for 30s — far beyond what the test
    // budget tolerates; only the token can end this run early.
    fault::arm(FaultPlan::delay_at_chunk(
        FaultSite::Solve,
        NUM_CHUNKS / 2,
        Duration::from_secs(30),
    ));
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            token.cancel();
        })
    };
    let start = Instant::now();
    let (runner, result) = watchdog(60, move || {
        let r = runner.run_with_cancel(&data, &token);
        (runner, r)
    });
    canceller.join().unwrap();
    let elapsed = start.elapsed();
    fault::disarm();
    match result {
        Err(EngineError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(20),
        "cancel must end a 30s wedge promptly, took {elapsed:?}"
    );

    // Healed pool, bit-exact rerun.
    let mut rerun = input(N);
    let stats = runner.run_in_place(&mut rerun).unwrap();
    assert_eq!(rerun, serial::run(&sig, &input(N)));
    assert_eq!(stats.threads, threads() as u64);
    assert_eq!(stats.aborts, 0);
}

/// The same wedge is bounded by `RunnerConfig::deadline` alone: the
/// pool's watchdog trips the abort, the call returns
/// `EngineError::DeadlineExceeded` within the test budget, and the rerun
/// validates bit-exactly.
#[test]
fn deadline_trips_a_wedged_run() {
    let _serial = serialize();
    quiet_injected_panics();
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let budget = Duration::from_secs(2);
    let runner = ParallelRunner::with_config(
        sig.clone(),
        RunnerConfig {
            chunk_size: CHUNK,
            threads: threads(),
            deadline: Some(budget),
            ..Default::default()
        },
    )
    .unwrap();
    let data = input(N);
    runner.run(&data).unwrap(); // warm (well under the deadline)

    fault::arm(FaultPlan::delay_at_chunk(
        FaultSite::Solve,
        NUM_CHUNKS / 2,
        Duration::from_secs(45),
    ));
    let start = Instant::now();
    let (runner, result) = watchdog(60, move || {
        let r = runner.run(&data);
        (runner, r)
    });
    let elapsed = start.elapsed();
    fault::disarm();
    match result {
        Err(EngineError::DeadlineExceeded { deadline }) => assert_eq!(deadline, budget),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(30),
        "watchdog must fire near the 2s deadline, took {elapsed:?}"
    );

    let mut rerun = input(N);
    let stats = runner.run_in_place(&mut rerun).unwrap();
    assert_eq!(rerun, serial::run(&sig, &input(N)));
    assert_eq!(stats.threads, threads() as u64);
    assert_eq!(stats.aborts, 0);
}

/// Dropping a `RunHandle` without ever waiting on it — while its run is
/// wedged in an injected 30s stall — cancels the run and blocks only
/// until the workers quiesce; the pool is immediately reusable.
#[test]
fn dropped_handle_cancels_a_wedged_submission() {
    let _serial = serialize();
    quiet_injected_panics();
    let pool = Arc::new(WorkerPool::new(threads()));
    fault::arm(FaultPlan::delay_at_chunk(
        FaultSite::Solve,
        0,
        Duration::from_secs(30),
    ));
    let start = Instant::now();
    let reusable = {
        let pool = Arc::clone(&pool);
        watchdog(60, move || {
            let handle = pool.submit(RunControl::new(), |worker, abort| {
                // Worker 0 (the donated driver) hits the stall; everyone
                // else waits for the abort like a spin-wait would.
                if worker == 0 {
                    plr_parallel::fault::check(FaultSite::Solve, worker, 0, Some(abort));
                }
                while !abort.is_aborted() {
                    std::thread::yield_now();
                }
            });
            drop(handle); // never waited on: must cancel + quiesce
            pool.run(|_, _| {}).is_ok()
        })
    };
    let elapsed = start.elapsed();
    fault::disarm();
    assert!(reusable, "pool must be reusable after a dropped handle");
    assert!(
        elapsed < Duration::from_secs(20),
        "handle drop must not ride out the 30s stall, took {elapsed:?}"
    );
    assert_eq!(pool.counters().cancelled, 1);
}

/// A stalled *observer* (delay injected at the handle-wait site) does not
/// mask the run's own deadline: the watchdog lives in the pool, so by the
/// time the observer recovers, the result is already DeadlineExceeded.
#[test]
fn handle_wait_stall_does_not_mask_the_deadline() {
    let _serial = serialize();
    quiet_injected_panics();
    let pool = Arc::new(WorkerPool::new(threads()));
    let budget = Duration::from_millis(500);
    fault::arm(FaultPlan {
        site: FaultSite::HandleWait,
        worker: None,
        chunk: None,
        nth_call: None,
        kind: FaultKind::Delay(Duration::from_secs(2)),
    });
    let result = {
        let pool = Arc::clone(&pool);
        watchdog(60, move || {
            let handle = pool.submit(RunControl::new().with_deadline(budget), |_, abort| {
                while !abort.is_aborted() {
                    std::thread::yield_now();
                }
            });
            handle.wait() // stalls 2s at the injected site first
        })
    };
    fault::disarm();
    assert_eq!(result, Err(RunError::DeadlineExceeded { deadline: budget }));
    assert_eq!(pool.counters().deadline_exceeded, 1);
    assert!(pool.run(|_, _| {}).is_ok());
}

/// The batch executor's *long-rows* path (cached intra-row runner) obeys
/// the fault contract at every site it crosses: the per-row dispatch
/// (`Row`), and the intra-row solve and look-back stages. A faulted row
/// surfaces `WorkerPanicked`; subsequent calls on the healed pool
/// validate against serial.
#[test]
fn long_rows_faults_error_and_recover() {
    let _serial = serialize();
    quiet_injected_panics();
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    // The long-rows path requires rows < threads, which a PLR_THREADS=1
    // leg can never satisfy — pin 4 workers so every leg covers it.
    let batch_threads = 4;
    let width = 50_000;
    let rows = 2;
    let batch = BatchRunner::new(sig.clone(), batch_threads);
    let data = input(width * rows);
    let reference: Vec<i64> = data
        .chunks(width)
        .flat_map(|row| serial::run(&sig, row))
        .collect();

    let mut batch = batch;
    let plans = [
        // Caller-thread dispatch of the second row.
        FaultPlan::panic_at_chunk(FaultSite::Row, 1),
        // Simulated thread death on the dispatch path.
        FaultPlan::exit_at_chunk(FaultSite::Row, 0),
        // Inside the cached intra-row runner's pipeline.
        FaultPlan::panic_at_chunk(FaultSite::Solve, 5),
        FaultPlan::panic_at_chunk(FaultSite::Lookback, 3),
        FaultPlan::exit_at_chunk(FaultSite::Solve, 2),
    ];
    for plan in plans {
        // Warm (also proves recovery from the previous iteration).
        let mut warm = data.clone();
        let stats = batch.run_rows(&mut warm, width).unwrap();
        assert_eq!(warm, reference, "warm-up must validate ({plan:?})");
        assert!(
            stats.lookback_hops > 0,
            "geometry must take the long-rows path"
        );

        fault::arm(plan.clone());
        let (returned, result) = {
            let b = batch;
            let mut d = data.clone();
            watchdog(60, move || {
                let r = b.run_rows(&mut d, width);
                (b, r)
            })
        };
        batch = returned;
        let fired = !fault::is_armed();
        fault::disarm();
        assert!(fired, "plan never fired: {plan:?}");
        match result {
            Err(EngineError::WorkerPanicked { worker, .. }) => {
                if plan.site == FaultSite::Row {
                    assert_eq!(worker, 0, "row dispatch runs on the caller");
                }
            }
            other => panic!("expected WorkerPanicked for {plan:?}, got {other:?}"),
        }
    }

    // Final rerun on the same (healed) batch runner.
    let mut d = data.clone();
    batch.run_rows(&mut d, width).unwrap();
    assert_eq!(d, reference, "final rerun must validate");
}

/// Cancelling a batch between rows on the long-rows path stops promptly
/// and leaves the runner reusable.
#[test]
fn long_rows_cancel_between_rows() {
    let _serial = serialize();
    quiet_injected_panics();
    let sig: Signature<i64> = "1:1".parse().unwrap();
    let batch = BatchRunner::new(sig.clone(), 4);
    let width = 50_000;
    let data = input(width * 2);
    let token = CancelToken::new();
    token.cancel();
    let mut d = data.clone();
    match batch.run_rows_with_cancel(&mut d, width, &token) {
        Err(EngineError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    let mut d = data.clone();
    batch
        .run_rows_with_cancel(&mut d, width, &CancelToken::new())
        .unwrap();
    let reference: Vec<i64> = data
        .chunks(width)
        .flat_map(|row| serial::run(&sig, row))
        .collect();
    assert_eq!(d, reference);
}

// ---------------------------------------------------------------------
// Streaming legs: the `FaultSite::Row` consult at the top of every popped
// `RowStream` row, plus per-row cancel and deadline control.
// ---------------------------------------------------------------------

/// Per-row inputs for the streaming legs: `rows` distinct rows of `width`.
fn stream_rows(rows: usize, width: usize) -> Vec<Vec<i64>> {
    (0..rows)
        .map(|r| input(width).iter().map(|&v| v + r as i64).collect())
        .collect()
}

/// A panic injected into one mid-stream row faults *only that row*: its
/// handle resolves to `WorkerPanicked`, every other streamed row stays
/// bit-exact against the serial reference, `finish` surfaces the error,
/// and the same runner's pool heals for a blocking rerun.
#[test]
fn stream_row_panic_faults_only_that_row() {
    let _serial = serialize();
    quiet_injected_panics();
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let runner = BatchRunner::new(sig.clone(), threads());
    let rows = stream_rows(8, 512);
    let expect: Vec<Vec<i64>> = rows.iter().map(|r| serial::run(&sig, r)).collect();

    fault::arm(FaultPlan::panic_at_chunk(FaultSite::Row, 3));
    let (runner, outcomes, finished) = {
        let rows = rows.clone();
        watchdog(60, move || {
            let stream = runner.stream();
            let handles: Vec<_> = rows.into_iter().map(|r| stream.push_row(r)).collect();
            stream.close();
            let outcomes: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            let finished = stream.finish();
            (runner, outcomes, finished)
        })
    };
    let fired = !fault::is_armed();
    fault::disarm();
    assert!(fired, "the Row-site plan must fire on the streamed row");
    for (i, ((data, result), expect)) in outcomes.into_iter().zip(&expect).enumerate() {
        if i == 3 {
            match result {
                Err(EngineError::WorkerPanicked { .. }) => {}
                other => panic!("faulted row must be WorkerPanicked, got {other:?}"),
            }
        } else {
            result.unwrap_or_else(|e| panic!("row {i} must survive the fault: {e:?}"));
            assert_eq!(&data, expect, "row {i} must stay bit-exact");
        }
    }
    match finished {
        Err(EngineError::WorkerPanicked { .. }) => {}
        other => panic!("finish must surface the row fault, got {other:?}"),
    }

    // The pool heals: a blocking batch on the same runner validates.
    let mut rerun: Vec<i64> = rows.concat();
    let stats = runner.run_rows(&mut rerun, 512).unwrap();
    assert_eq!(rerun, expect.concat(), "post-fault blocking rerun");
    assert_eq!(stats.threads, threads() as u64, "pool width must be healed");
}

/// A delay injected into a mid-stream row stalls that row but corrupts
/// nothing: every handle still resolves `Ok` with bit-exact data and the
/// aggregate stats count all rows.
#[test]
fn stream_row_delay_keeps_every_row_exact() {
    let _serial = serialize();
    quiet_injected_panics();
    let sig: Signature<i64> = "1,1:3,-3,1".parse().unwrap();
    let runner = BatchRunner::new(sig.clone(), threads());
    let rows = stream_rows(8, 384);
    let expect: Vec<Vec<i64>> = rows.iter().map(|r| serial::run(&sig, r)).collect();

    fault::arm(FaultPlan::delay_at_chunk(
        FaultSite::Row,
        2,
        Duration::from_millis(300),
    ));
    let (outcomes, stats) = {
        let rows = rows.clone();
        watchdog(60, move || {
            let stream = runner.stream();
            let handles: Vec<_> = rows.into_iter().map(|r| stream.push_row(r)).collect();
            stream.close();
            let outcomes: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            let stats = stream.finish().expect("a delayed row still succeeds");
            (outcomes, stats)
        })
    };
    let fired = !fault::is_armed();
    fault::disarm();
    assert!(fired, "the delay plan must fire on the streamed row");
    for (i, ((data, result), expect)) in outcomes.into_iter().zip(&expect).enumerate() {
        result.unwrap_or_else(|e| panic!("row {i} must succeed through the stall: {e:?}"));
        assert_eq!(&data, expect, "row {i} must stay bit-exact");
    }
    assert_eq!(stats.rows, 8);
}

/// Cancelling one streamed row through its own token ends an injected
/// 30s wedge on that row promptly; only that row reports `Cancelled`,
/// every other row is bit-exact, and the stream keeps flowing.
#[test]
fn stream_cancel_one_row_via_token() {
    let _serial = serialize();
    quiet_injected_panics();
    let sig: Signature<i64> = "1:1".parse().unwrap();
    let runner = BatchRunner::new(sig.clone(), threads());
    let rows = stream_rows(6, 256);
    let expect: Vec<Vec<i64>> = rows.iter().map(|r| serial::run(&sig, r)).collect();

    // Wedge row 2 far beyond the test budget; only its token can end it.
    fault::arm(FaultPlan::delay_at_chunk(
        FaultSite::Row,
        2,
        Duration::from_secs(30),
    ));
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            token.cancel();
        })
    };
    let start = Instant::now();
    let outcomes = {
        let rows = rows.clone();
        let token = token.clone();
        watchdog(60, move || {
            let stream = runner.stream();
            let handles: Vec<_> = rows
                .into_iter()
                .enumerate()
                .map(|(i, r)| {
                    if i == 2 {
                        stream.push_row_ctl(r, RunControl::new().with_cancel(&token))
                    } else {
                        stream.push_row(r)
                    }
                })
                .collect();
            stream.close();
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        })
    };
    let elapsed = start.elapsed();
    canceller.join().unwrap();
    fault::disarm(); // in case the cancel won the race to the consult
    assert!(
        elapsed < Duration::from_secs(20),
        "per-row cancel must end a 30s wedge promptly, took {elapsed:?}"
    );
    for (i, ((data, result), expect)) in outcomes.into_iter().zip(&expect).enumerate() {
        if i == 2 {
            match result {
                Err(EngineError::Cancelled) => {}
                other => panic!("cancelled row must report Cancelled, got {other:?}"),
            }
        } else {
            result.unwrap_or_else(|e| panic!("row {i} must survive the cancel: {e:?}"));
            assert_eq!(&data, expect, "row {i} must stay bit-exact");
        }
    }
}

/// A per-row deadline (via `push_row_ctl`) bounds an injected 30s wedge:
/// the wedged row resolves `DeadlineExceeded` with its own budget near
/// that budget's expiry, and the rest of the stream is unaffected.
#[test]
fn stream_per_row_deadline_trips_the_wedged_row() {
    let _serial = serialize();
    quiet_injected_panics();
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let runner = BatchRunner::new(sig.clone(), threads());
    let rows = stream_rows(5, 256);
    let expect: Vec<Vec<i64>> = rows.iter().map(|r| serial::run(&sig, r)).collect();
    let budget = Duration::from_millis(500);

    fault::arm(FaultPlan::delay_at_chunk(
        FaultSite::Row,
        1,
        Duration::from_secs(30),
    ));
    let start = Instant::now();
    let outcomes = {
        let rows = rows.clone();
        watchdog(60, move || {
            let stream = runner.stream();
            let handles: Vec<_> = rows
                .into_iter()
                .enumerate()
                .map(|(i, r)| {
                    if i == 1 {
                        stream.push_row_ctl(r, RunControl::new().with_deadline(budget))
                    } else {
                        stream.push_row(r)
                    }
                })
                .collect();
            stream.close();
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        })
    };
    let elapsed = start.elapsed();
    let fired = !fault::is_armed();
    fault::disarm();
    assert!(fired, "the wedge must fire on the deadlined row");
    assert!(
        elapsed < Duration::from_secs(20),
        "the per-row deadline must end a 30s wedge promptly, took {elapsed:?}"
    );
    for (i, ((data, result), expect)) in outcomes.into_iter().zip(&expect).enumerate() {
        if i == 1 {
            match result {
                Err(EngineError::DeadlineExceeded { deadline }) => {
                    assert_eq!(deadline, budget, "the row's own budget is reported")
                }
                other => panic!("wedged row must be DeadlineExceeded, got {other:?}"),
            }
        } else {
            result.unwrap_or_else(|e| panic!("row {i} must survive the deadline: {e:?}"));
            assert_eq!(&data, expect, "row {i} must stay bit-exact");
        }
    }
}
