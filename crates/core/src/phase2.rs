//! Phase 2: carry propagation across fixed-size chunks.
//!
//! After Phase 1 every `m`-sized chunk holds its *local* solution. Phase 2
//! turns local solutions into the global one: each chunk is corrected using
//! the `k` *global* carries (last `k` corrected values) of its predecessor
//! and the same precomputed correction factors.
//!
//! Two equivalent formulations are provided:
//!
//! * [`propagate_sequential`] — the straightforward chunk-after-chunk gold
//!   model (`O(nk)` work, inherently serial across chunks);
//! * [`propagate_decoupled`] — computes all global carries first by chaining
//!   the `O(k²)` [`CorrectionTable::fixup_carries`] step over the chunks'
//!   local carries, then corrects every chunk *independently*. This is the
//!   dependency structure the paper's pipelined GPU Phase 2 (and this
//!   workspace's `plr-parallel` runtime and `plr-sim` executor) exploit:
//!   the serial part of the work is `O((n/m)·k²)` instead of `O(nk)`.

use crate::element::Element;
use crate::nacci::{carries_of, CorrectionTable};

/// Corrects chunked local solutions into the global solution, sequentially.
///
/// `data` is interpreted as consecutive chunks of `m` elements (the final
/// chunk may be shorter). Each chunk `c > 0` is corrected using the global
/// carries of chunk `c - 1`, which are final by the time chunk `c` is
/// processed.
///
/// # Panics
///
/// Panics if `m == 0` or `m` exceeds the correction table length.
pub fn propagate_sequential<T: Element>(table: &CorrectionTable<T>, data: &mut [T], m: usize) {
    assert!(
        m > 0 && m <= table.len(),
        "chunk size {m} outside table length {}",
        table.len()
    );
    let k = table.order();
    let n = data.len();
    let mut start = m;
    while start < n {
        let end = (start + m).min(n);
        let (prev, rest) = data.split_at_mut(start);
        // The k carries are the last k *corrected* values before `start`;
        // when m < k they span more than one preceding chunk, which is fine
        // here because everything before `start` is already global.
        let carries = carries_of(prev, k);
        table.correct_chunk(&mut rest[..end - start], &carries);
        start += m;
    }
}

/// Computes every chunk's global carries from the chunks' local carries by
/// chaining the look-back fix-up, then corrects all chunks independently.
///
/// Returns the number of fix-up hops performed (useful for cost models and
/// tests). The result is identical to [`propagate_sequential`]; only the
/// dependency structure differs.
///
/// # Panics
///
/// Panics if `m == 0`, `m` exceeds the correction table length, or
/// `m < k`: the decoupled formulation publishes per-chunk carries, so a
/// chunk must be able to hold all `k` of them (the paper's regime, where
/// `m >= 1024` and `k < 4`).
pub fn propagate_decoupled<T: Element>(
    table: &CorrectionTable<T>,
    data: &mut [T],
    m: usize,
) -> usize {
    assert!(
        m > 0 && m <= table.len(),
        "chunk size {m} outside table length {}",
        table.len()
    );
    assert!(
        m >= table.order(),
        "decoupled look-back requires chunk size >= order"
    );
    let k = table.order();
    let n = data.len();
    if n <= m {
        return 0;
    }
    let num_chunks = n.div_ceil(m);

    // Pass A: collect local carries of every chunk.
    let local_carries: Vec<Vec<T>> = (0..num_chunks)
        .map(|c| {
            let start = c * m;
            let end = (start + m).min(n);
            carries_of(&data[start..end], k)
        })
        .collect();

    // Chain: global carries of chunk c from chunk c-1 (serial, O(chunks·k²)).
    let mut hops = 0;
    let mut global_carries: Vec<Vec<T>> = Vec::with_capacity(num_chunks);
    global_carries.push(local_carries[0].clone()); // chunk 0 is already global
    for c in 1..num_chunks {
        let chunk_len = ((c * m + m).min(n)) - c * m;
        let fixed = table.fixup_carries(&global_carries[c - 1], &local_carries[c], chunk_len);
        hops += 1;
        global_carries.push(fixed);
    }

    // Pass B: correct every chunk independently (parallelizable).
    for c in 1..num_chunks {
        let start = c * m;
        let end = (start + m).min(n);
        table.correct_chunk(&mut data[start..end], &global_carries[c - 1]);
    }
    hops
}

/// Computes the global carries of every chunk by a *variable* look-back from
/// an arbitrary starting chunk, mirroring the paper's pipelined Phase 2: the
/// carries of chunk `c` are derived from the most recent chunk `c - d` whose
/// global carries are known plus the local carries of chunks
/// `c - d + 1 ..= c`.
///
/// This function exists to verify (in tests and the simulator) that a
/// look-back of *any* depth yields the same carries as depth 1; the
/// runtime implementations pick `d` dynamically based on flag availability.
///
/// `chunk_lens[i]` is the element count of chunk `i`.
///
/// # Panics
///
/// Panics if the slices disagree in length or `start + 1 + locals.len()`
/// chunks are not described by `chunk_lens`.
pub fn lookback_carries<T: Element>(
    table: &CorrectionTable<T>,
    known_global: &[T],
    locals: &[Vec<T>],
    chunk_lens: &[usize],
) -> Vec<T> {
    assert_eq!(
        locals.len(),
        chunk_lens.len(),
        "one chunk length per local-carry set"
    );
    let mut g = known_global.to_vec();
    for (local, &len) in locals.iter().zip(chunk_lens) {
        g = table.fixup_carries(&g, local, len);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1;
    use crate::serial;
    use crate::signature::Signature;

    fn run_two_phase<T: Element>(sig: &Signature<T>, input: &[T], m: usize) -> Vec<T> {
        assert!(sig.is_pure_feedback());
        let table = CorrectionTable::generate(sig.feedback(), m);
        let mut data = input.to_vec();
        for chunk in data.chunks_mut(m) {
            serial::recursive_in_place(sig.feedback(), chunk);
        }
        propagate_sequential(&table, &mut data, m);
        data
    }

    #[test]
    fn paper_example_phase2() {
        // Section 2.3: after Phase 1 the 20-element example holds chunks of
        // 8 local solutions; Phase 2 produces the final output.
        let fb = [2i32, -1];
        let table = CorrectionTable::generate(&fb, 8);
        let mut data = vec![
            3, 2, 6, 4, 9, 6, 12, 8, 11, 10, 22, 20, 33, 30, 44, 40, 19, 18, 38, 36,
        ];
        propagate_sequential(&table, &mut data, 8);
        assert_eq!(
            data,
            vec![3, 2, 6, 4, 9, 6, 12, 8, 15, 10, 18, 12, 21, 14, 24, 16, 27, 18, 30, 20]
        );
    }

    #[test]
    fn sequential_matches_serial_for_various_signatures() {
        let cases: [(&str, usize); 5] = [
            ("1:1", 16),
            ("1:0,1", 8),
            ("1:2,-1", 16),
            ("1:3,-3,1", 32),
            ("1:0,0,1", 8),
        ];
        for (text, m) in cases {
            let sig: Signature<i64> = text.parse().unwrap();
            let input: Vec<i64> = (0..137)
                .map(|i| ((i * 2654435761u64 % 19) as i64) - 9)
                .collect();
            let expect = serial::run(&sig, &input);
            let got = run_two_phase(&sig, &input, m);
            assert_eq!(got, expect, "signature {text}");
        }
    }

    #[test]
    fn decoupled_equals_sequential() {
        let fb = [3i64, -3, 1];
        let table = CorrectionTable::generate(&fb, 8);
        let input: Vec<i64> = (0..100).map(|i| (i % 11) as i64 - 5).collect();

        let mut a = input.clone();
        for c in a.chunks_mut(8) {
            serial::recursive_in_place(&fb, c);
        }
        let mut b = a.clone();

        propagate_sequential(&table, &mut a, 8);
        let hops = propagate_decoupled(&table, &mut b, 8);
        assert_eq!(a, b);
        assert_eq!(hops, 100usize.div_ceil(8) - 1);
    }

    #[test]
    fn decoupled_single_chunk_is_noop() {
        let table = CorrectionTable::generate(&[1i32], 16);
        let mut data: Vec<i32> = (0..10).collect();
        let before = data.clone();
        assert_eq!(propagate_decoupled(&table, &mut data, 16), 0);
        assert_eq!(data, before);
    }

    #[test]
    fn phase1_then_phase2_is_the_full_algorithm() {
        // End-to-end: Phase 1 doubling to m, then Phase 2, vs serial.
        let sig: Signature<i32> = "1: 2, -1".parse().unwrap();
        let input: Vec<i32> = (0..500).map(|i| ((i * 37) % 41) - 20).collect();
        let m = 16;
        let table = CorrectionTable::generate(sig.feedback(), m);
        let mut data = input.clone();
        phase1::run(&table, &mut data, m);
        propagate_sequential(&table, &mut data, m);
        assert_eq!(data, serial::run(&sig, &input));
    }

    #[test]
    fn variable_lookback_any_depth_matches_depth_one() {
        // Build 6 chunks of local solutions and check that deriving chunk
        // 5's carries from chunk 1's globals + locals 2..=5 equals the
        // straightforward chain.
        let fb = [2i64, -1];
        let m = 8;
        let table = CorrectionTable::generate(&fb, m);
        let input: Vec<i64> = (0..48).map(|i| (i % 9) as i64 - 4).collect();

        let mut locals_data = input.clone();
        for c in locals_data.chunks_mut(m) {
            serial::recursive_in_place(&fb, c);
        }
        let locals: Vec<Vec<i64>> = locals_data
            .chunks(m)
            .map(|c| carries_of(c, fb.len()))
            .collect();

        // Ground truth globals from the fully corrected sequence.
        let mut global_data = locals_data.clone();
        propagate_sequential(&table, &mut global_data, m);
        let globals: Vec<Vec<i64>> = global_data
            .chunks(m)
            .map(|c| carries_of(c, fb.len()))
            .collect();

        // Depth-4 look-back: from globals[1] through locals of chunks 2..=5.
        let lens = vec![m; 4];
        let via_lookback = lookback_carries(&table, &globals[1], &locals[2..6], &lens);
        assert_eq!(via_lookback, globals[5]);

        // Depth-1 look-back from globals[4].
        let one_hop = lookback_carries(&table, &globals[4], &locals[5..6], &[m]);
        assert_eq!(one_hop, globals[5]);
    }

    #[test]
    fn float_filter_two_phase_within_tolerance() {
        let sig: Signature<f32> = "1: 1.6, -0.64".parse().unwrap();
        let input: Vec<f32> = (0..300).map(|i| ((i % 13) as f32) * 0.25 - 1.5).collect();
        let expect = serial::run(&sig, &input);
        let got = run_two_phase(&sig, &input, 32);
        for (i, (a, b)) in got.iter().zip(&expect).enumerate() {
            assert!(a.approx_eq(*b, 1e-3), "index {i}: {a} vs {b}");
        }
    }

    #[test]
    fn sequential_handles_chunks_smaller_than_order() {
        // m = 2 with k = 3: carries span two preceding chunks; the
        // sequential form reads them from the globally corrected prefix.
        let sig: Signature<i64> = "1: 0, 0, -2".parse().unwrap();
        let input: Vec<i64> = (0..25).map(|i| (i % 5) - 2).collect();
        let expect = serial::run(&sig, &input);
        assert_eq!(run_two_phase(&sig, &input, 2), expect);
    }

    #[test]
    #[should_panic(expected = "chunk size >= order")]
    fn decoupled_rejects_chunks_smaller_than_order() {
        let table = CorrectionTable::generate(&[0i64, 0, -2], 2);
        let mut data = vec![1i64; 10];
        propagate_decoupled(&table, &mut data, 2);
    }

    #[test]
    fn ragged_final_chunk() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        let input: Vec<i32> = (1..=21).collect(); // 21 = 2·8 + 5
        let expect = serial::run(&sig, &input);
        assert_eq!(run_two_phase(&sig, &input, 8), expect);
    }
}
