//! Serial reference implementations.
//!
//! These are straight transcriptions of the paper's Section 2 serial loop.
//! Every parallel executor in this workspace is validated against them, just
//! as the paper validates its GPU outputs against the serial CPU result.

use crate::element::Element;
use crate::signature::Signature;

/// Computes the full recurrence `y[i] = Σ a-j·x[i-j] + Σ b-j·y[i-j]` serially.
///
/// This performs `O(n·(p+k))` work and is the ground truth for validation.
///
/// # Examples
///
/// ```
/// use plr_core::{serial::run, signature::Signature};
///
/// let sig: Signature<i32> = "1 : 1".parse()?; // prefix sum
/// assert_eq!(run(&sig, &[3, -4, 5]), vec![3, -1, 4]);
/// # Ok::<(), plr_core::error::SignatureError>(())
/// ```
pub fn run<T: Element>(sig: &Signature<T>, input: &[T]) -> Vec<T> {
    let t = fir_map(sig.feedforward(), input);
    recursive_in_place_from(sig.feedback(), t)
}

/// Applies the map stage (paper equation (2)): `t[i] = Σ a-j·x[i-j]`.
///
/// This is an FIR filter and embarrassingly parallel; missing terms
/// (`x[j]` for `j < 0`) are zero.
pub fn fir_map<T: Element>(feedforward: &[T], input: &[T]) -> Vec<T> {
    let p = feedforward.len();
    let mut out = Vec::with_capacity(input.len());
    // Prologue: the leading edge, where taps would reach before x[0].
    let head = p.saturating_sub(1).min(input.len());
    for i in 0..head {
        let mut acc = T::zero();
        for (j, &a) in feedforward.iter().enumerate().take(i + 1) {
            acc = acc.add(a.mul(input[i - j]));
        }
        out.push(acc);
    }
    // Steady state: every tap lands inside the input, no edge test.
    for i in head..input.len() {
        let mut acc = T::zero();
        for (j, &a) in feedforward.iter().enumerate() {
            acc = acc.add(a.mul(input[i - j]));
        }
        out.push(acc);
    }
    out
}

/// Computes the pure-feedback recurrence (paper equation (3)):
/// `y[i] = t[i] + Σ b-j·y[i-j]`, consuming and reusing the input buffer.
pub fn recursive_in_place_from<T: Element>(feedback: &[T], mut data: Vec<T>) -> Vec<T> {
    recursive_in_place(feedback, &mut data);
    data
}

/// In-place version of the pure-feedback recurrence over a mutable slice.
///
/// Elements before index 0 are treated as zero. This is the exact serial
/// loop from the beginning of the paper's Section 2.
pub fn recursive_in_place<T: Element>(feedback: &[T], data: &mut [T]) {
    let k = feedback.len();
    for i in 0..data.len() {
        let mut acc = data[i];
        for (j, &b) in feedback.iter().enumerate().take(i.min(k)) {
            // j is 0-based; b multiplies y[i - (j+1)].
            acc = acc.add(b.mul(data[i - j - 1]));
        }
        // `take(i.min(k))` bounds j+1 <= i, so all accessed indices exist.
        data[i] = acc;
    }
}

/// Computes the pure-feedback recurrence continuing from explicit history.
///
/// `history[r]` is `y[start - 1 - r]` — i.e. `history[0]` is the value just
/// before `data[0]`, matching the carry ordering used throughout this crate
/// (index 0 = most recent). Missing history entries are zero.
///
/// This is the building block chunked executors use for their local solves
/// and for the sequential gold model of Phase 2.
pub fn recursive_in_place_with_history<T: Element>(feedback: &[T], history: &[T], data: &mut [T]) {
    let k = feedback.len();
    // Prologue: the first k elements, whose look-back can reach into
    // `history` (element y[i - dist] with i - dist < 0).
    let head = k.min(data.len());
    for i in 0..head {
        let mut acc = data[i];
        for (j, &b) in feedback.iter().enumerate() {
            let dist = j + 1;
            let term = if dist <= i {
                data[i - dist]
            } else {
                let h = dist - i - 1;
                if h < history.len() {
                    history[h]
                } else {
                    T::zero()
                }
            };
            acc = acc.add(b.mul(term));
        }
        data[i] = acc;
    }
    // Steady state: i >= k, so every look-back stays inside `data`.
    for i in head..data.len() {
        let mut acc = data[i];
        for (j, &b) in feedback.iter().enumerate() {
            acc = acc.add(b.mul(data[i - j - 1]));
        }
        data[i] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig_i32(s: &str) -> Signature<i32> {
        s.parse().unwrap()
    }

    #[test]
    fn prefix_sum_matches_hand_computation() {
        let sig = sig_i32("1:1");
        assert_eq!(run(&sig, &[1, 2, 3, 4]), vec![1, 3, 6, 10]);
    }

    #[test]
    fn paper_worked_example_second_order() {
        // Section 2.3: (1: 2, -1) on the 20-element example input.
        let sig = sig_i32("1: 2, -1");
        let input: Vec<i32> = vec![
            3, -4, 5, -6, 7, -8, 9, -10, 11, -12, 13, -14, 15, -16, 17, -18, 19, -20, 21, -22,
        ];
        let expected: Vec<i32> = vec![
            3, 2, 6, 4, 9, 6, 12, 8, 15, 10, 18, 12, 21, 14, 24, 16, 27, 18, 30, 20,
        ];
        assert_eq!(run(&sig, &input), expected);
    }

    #[test]
    fn tuple_prefix_sum_interleaves() {
        // (1 : 0, 1) computes two interleaved prefix sums.
        let sig = sig_i32("1: 0, 1");
        let y = run(&sig, &[1, 10, 2, 20, 3, 30]);
        assert_eq!(y, vec![1, 10, 3, 30, 6, 60]);
    }

    #[test]
    fn fir_map_handles_leading_edge() {
        // (0.9, -0.9 : ...) map stage: t[0] has no x[-1] term.
        let t = fir_map(&[2i32, -1], &[5, 7, 9]);
        assert_eq!(t, vec![10, 9, 11]); // 2·5, 2·7-5, 2·9-7
    }

    #[test]
    fn full_signature_equals_map_then_recursive() {
        let sig: Signature<f64> = "(0.9, -0.9: 0.8)".parse().unwrap();
        let input: Vec<f64> = (0..50).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let direct = run(&sig, &input);
        let (fir, rec) = sig.split();
        let staged = recursive_in_place_from(rec.feedback(), fir_map(&fir, &input));
        for (a, b) in direct.iter().zip(&staged) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn recursive_with_history_continues_a_stream() {
        let fb = [2i32, -1];
        let input: Vec<i32> = (1..=12).map(|i| i * ((-1i32).pow(i as u32))).collect();
        let mut whole = input.clone();
        recursive_in_place(&fb, &mut whole);

        // Split the stream at 5 and continue with history.
        let mut head = input[..5].to_vec();
        recursive_in_place(&fb, &mut head);
        let mut tail = input[5..].to_vec();
        let history = [head[4], head[3]]; // index 0 = most recent
        recursive_in_place_with_history(&fb, &history, &mut tail);

        assert_eq!(&whole[..5], head.as_slice());
        assert_eq!(&whole[5..], tail.as_slice());
    }

    #[test]
    fn history_shorter_than_order_pads_with_zero() {
        let fb = [1i32, 1, 1]; // tribonacci-style
        let mut a = vec![1, 0, 0, 0, 0, 0];
        recursive_in_place(&fb, &mut a);
        let mut b = vec![1, 0, 0, 0, 0, 0];
        recursive_in_place_with_history(&fb, &[], &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_fine() {
        let sig = sig_i32("1:1");
        assert_eq!(run(&sig, &[]), Vec::<i32>::new());
    }

    #[test]
    fn wrapping_overflow_is_silent() {
        let sig = sig_i32("1:1");
        let out = run(&sig, &[i32::MAX, 1]);
        assert_eq!(out[1], i32::MIN);
    }
}
