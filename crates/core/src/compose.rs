//! Recurrence composition and decomposition — the z-transform "offline"
//! step the paper delegates to the user.
//!
//! The paper (Section 4): *"PLR does not support the automatic combination
//! of filters, which has to be done offline using, for example, the
//! z-transform."* This module is that offline tool:
//!
//! * [`compose`] combines two recurrences applied in series into a single
//!   equivalent signature (transfer functions multiply);
//! * [`power`] composes a recurrence with itself (e.g. an order-`r` prefix
//!   sum is the `r`-th power of `(1:1)`, a 3-stage filter the cube of its
//!   stage);
//! * [`decompose_stages`] splits a real-coefficient recurrence into a
//!   cascade of first- and second-order stages (pole factorization) — the
//!   decomposition Nehab et al. exploit when "applying multiple lower-order
//!   filters sometimes results in faster processing than using the single,
//!   corresponding higher-order filter".
//!
//! All algebra happens in `f64`; integer signatures compose exactly as
//! long as the products stay within `2^53`.

use crate::poly::Poly;
use crate::signature::Signature;
use crate::stability::{self, Complex};

/// The transfer function `H(z) = N(z)/D(z)` of a signature, with `z`
/// standing for `z⁻¹` and `D` monic in `z⁰`.
fn transfer(sig: &Signature<f64>) -> (Poly, Poly) {
    let numerator = Poly::new(sig.feedforward().to_vec());
    let mut d = vec![1.0];
    d.extend(sig.feedback().iter().map(|&b| -b));
    (numerator, Poly::new(d))
}

/// Converts a transfer function back into a signature.
///
/// # Panics
///
/// Panics if `denominator` is not monic in `z⁰` or the result would be a
/// degenerate signature (handled by [`Signature::new`]'s invariants).
fn from_transfer(numerator: &Poly, denominator: &Poly) -> Signature<f64> {
    let d = denominator.coeffs();
    assert!(
        !d.is_empty() && (d[0] - 1.0).abs() < 1e-12,
        "denominator must be monic in z^0"
    );
    let feedback: Vec<f64> = d[1..].iter().map(|&c| -c).collect();
    Signature::new(numerator.coeffs().to_vec(), feedback)
        .expect("composition produced a degenerate signature")
}

/// Composes two recurrences applied in series (`second` after `first`)
/// into one equivalent signature.
///
/// # Examples
///
/// ```
/// use plr_core::{compose, filters, serial};
///
/// // Applying the 1-stage low-pass twice == the 2-stage low-pass.
/// let one = filters::low_pass(0.8, 1);
/// let two = compose::compose(&one, &one);
/// assert_eq!(two, filters::low_pass(0.8, 2));
///
/// let x: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
/// let stage_by_stage = serial::run(&one, &serial::run(&one, &x));
/// let fused = serial::run(&two, &x);
/// for (a, b) in stage_by_stage.iter().zip(&fused) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
pub fn compose(first: &Signature<f64>, second: &Signature<f64>) -> Signature<f64> {
    let (n1, d1) = transfer(first);
    let (n2, d2) = transfer(second);
    from_transfer(&n1.mul(&n2), &d1.mul(&d2))
}

/// Composes a recurrence with itself `stages` times.
///
/// # Panics
///
/// Panics if `stages == 0`.
pub fn power(sig: &Signature<f64>, stages: u32) -> Signature<f64> {
    assert!(stages >= 1, "a cascade needs at least one stage");
    let mut acc = sig.clone();
    for _ in 1..stages {
        acc = compose(&acc, sig);
    }
    acc
}

/// One stage of a decomposed cascade: order 1 or 2 with real coefficients.
pub type Stage = Signature<f64>;

/// Decomposes a recurrence into a cascade of first-order (real pole) and
/// second-order (conjugate pole pair) stages whose serial application is
/// equivalent to the original.
///
/// The feed-forward polynomial is attached to the first stage; later
/// stages are pure `(1 : …)` recurrences. Poles are paired greedily:
/// complex-conjugate pairs form biquads, real poles form first-order
/// stages (with one leftover real pole possibly joining another real pole
/// in a biquad).
///
/// # Panics
///
/// Panics if the pole finder fails to produce a conjugate-closed set
/// (cannot happen for real coefficients within numerical tolerance).
pub fn decompose_stages(sig: &Signature<f64>) -> Vec<Stage> {
    let report = stability::analyze(sig.feedback());
    // Repeated roots come out of the iterative root finder as a cluster of
    // nearby approximations (accuracy ~ eps^(1/multiplicity)); replacing a
    // cluster by copies of its centroid recovers most of the lost digits.
    let mut poles = cluster_poles(&report.poles, 1e-3);
    // Sort into complex pairs and reals.
    let mut reals: Vec<f64> = Vec::new();
    let mut pairs: Vec<(Complex, Complex)> = Vec::new();
    const IM_TOL: f64 = 1e-7;
    while let Some(p) = poles.pop() {
        if p.im.abs() < IM_TOL {
            reals.push(p.re);
            continue;
        }
        // Find and remove its conjugate.
        let idx = poles
            .iter()
            .position(|q| (q.re - p.re).abs() < 1e-6 && (q.im + p.im).abs() < 1e-6)
            .expect("real-coefficient recurrences have conjugate-closed poles");
        let q = poles.swap_remove(idx);
        pairs.push((p, q));
    }

    let mut stages: Vec<Stage> = Vec::new();
    for (p, q) in pairs {
        // (z - p)(z - q) = z² - (p+q)z + pq with real coefficients.
        let b1 = p.re + q.re;
        let b2 = -(p.re * q.re - p.im * q.im);
        stages.push(Signature::new(vec![1.0], vec![b1, b2]).expect("valid biquad"));
    }
    for r in reals {
        stages.push(Signature::new(vec![1.0], vec![r]).expect("valid first-order stage"));
    }
    if stages.is_empty() {
        // Order zero cannot happen (signatures require k >= 1), but guard.
        stages.push(Signature::new(vec![1.0], vec![0.0, 1.0]).unwrap());
    }

    // Attach the feed-forward polynomial to the first stage.
    let first = stages[0].clone();
    stages[0] = Signature::new(sig.feedforward().to_vec(), first.feedback().to_vec())
        .expect("feed-forward attaches to a valid stage");
    stages
}

/// Groups poles within `tol` of each other and replaces each group by
/// copies of its centroid (multiplicity preserved). A centroid whose
/// imaginary part is tiny is snapped onto the real axis, which also
/// symmetrizes conjugate clusters.
fn cluster_poles(poles: &[Complex], tol: f64) -> Vec<Complex> {
    let mut remaining: Vec<Complex> = poles.to_vec();
    let mut out = Vec::with_capacity(poles.len());
    while let Some(seed) = remaining.pop() {
        let mut group = vec![seed];
        let mut i = 0;
        while i < remaining.len() {
            let q = remaining[i];
            let near = group.iter().any(|g| {
                let d = Complex::new(g.re - q.re, g.im - q.im).abs();
                d < tol * g.abs().max(1.0)
            });
            if near {
                group.push(remaining.swap_remove(i));
                i = 0; // group grew; rescan
            } else {
                i += 1;
            }
        }
        let n = group.len() as f64;
        let mut centroid = Complex::new(
            group.iter().map(|p| p.re).sum::<f64>() / n,
            group.iter().map(|p| p.im).sum::<f64>() / n,
        );
        if centroid.im.abs() < tol {
            centroid.im = 0.0;
        }
        for _ in 0..group.len() {
            out.push(centroid);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters;
    use crate::serial;

    fn apply_cascade(stages: &[Stage], input: &[f64]) -> Vec<f64> {
        let mut data = input.to_vec();
        for s in stages {
            data = serial::run(s, &data);
        }
        data
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0),
                "index {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn compose_matches_filter_module_cascades() {
        let lp1 = filters::low_pass(0.8, 1);
        assert_eq!(power(&lp1, 3), filters::low_pass(0.8, 3));
        let hp1 = filters::high_pass(0.8, 1);
        assert_eq!(power(&hp1, 2), filters::high_pass(0.8, 2));
    }

    #[test]
    fn compose_is_semantically_series_application() {
        let a = filters::low_pass(0.7, 1);
        let b = filters::high_pass(0.4, 1);
        let band = compose(&a, &b);
        let input: Vec<f64> = (0..200).map(|i| ((i * 13) % 17) as f64 - 8.0).collect();
        let series = serial::run(&b, &serial::run(&a, &input));
        let fused = serial::run(&band, &input);
        assert_close(&series, &fused, 1e-10);
    }

    #[test]
    fn compose_order_is_immaterial_for_lti_systems() {
        let a = filters::low_pass(0.7, 1);
        let b = filters::high_pass(0.4, 1);
        let ab = compose(&a, &b);
        let ba = compose(&b, &a);
        // Coefficients must match exactly up to float noise.
        assert_close(ab.feedforward(), ba.feedforward(), 1e-12);
        assert_close(ab.feedback(), ba.feedback(), 1e-12);
    }

    #[test]
    fn higher_order_prefix_sums_are_powers_of_the_prefix_sum() {
        let psum = crate::prefix::prefix_sum::<f64>();
        let third = power(&psum, 3);
        assert_close(third.feedback(), &[3.0, -3.0, 1.0], 1e-12);
    }

    #[test]
    fn decompose_repeated_real_pole() {
        // 3-stage low-pass: triple pole at 0.8 -> one biquad + one single.
        let lp3 = filters::low_pass(0.8, 3);
        let stages = decompose_stages(&lp3);
        let orders: Vec<usize> = stages.iter().map(|s| s.order()).collect();
        assert_eq!(orders.iter().sum::<usize>(), 3);
        let input: Vec<f64> = (0..300).map(|i| ((i % 11) as f64) - 5.0).collect();
        // A triple pole limits the root finder to ~eps^(1/3) accuracy even
        // after cluster-centroid recovery, hence the looser bound.
        assert_close(
            &apply_cascade(&stages, &input),
            &serial::run(&lp3, &input),
            1e-4,
        );
    }

    #[test]
    fn decompose_complex_pole_pair_into_biquad() {
        // (1 : 1, -0.5): poles 0.5 ± 0.5i -> a single biquad, unchanged.
        let sig = Signature::new(vec![1.0], vec![1.0, -0.5]).unwrap();
        let stages = decompose_stages(&sig);
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].order(), 2);
        assert_close(stages[0].feedback(), sig.feedback(), 1e-9);
    }

    #[test]
    fn decompose_mixed_poles() {
        // One real pole (0.9) cascaded with a complex pair.
        let real = Signature::new(vec![1.0], vec![0.9]).unwrap();
        let pair = Signature::new(vec![1.0], vec![1.0, -0.5]).unwrap();
        let combined = compose(&real, &pair);
        assert_eq!(combined.order(), 3);
        let stages = decompose_stages(&combined);
        assert_eq!(stages.iter().map(|s| s.order()).sum::<usize>(), 3);
        let input: Vec<f64> = (0..200).map(|i| ((i % 9) as f64) - 4.0).collect();
        assert_close(
            &apply_cascade(&stages, &input),
            &serial::run(&combined, &input),
            1e-8,
        );
    }

    #[test]
    fn decompose_keeps_the_feedforward_on_the_first_stage() {
        let hp2 = filters::high_pass(0.8, 2);
        let stages = decompose_stages(&hp2);
        assert_eq!(stages[0].feedforward(), hp2.feedforward());
        for s in &stages[1..] {
            assert!(s.is_pure_feedback());
        }
        let input: Vec<f64> = (0..200).map(|i| ((i % 13) as f64) - 6.0).collect();
        assert_close(
            &apply_cascade(&stages, &input),
            &serial::run(&hp2, &input),
            1e-6,
        );
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn power_rejects_zero() {
        power(&filters::low_pass(0.8, 1), 0);
    }
}
