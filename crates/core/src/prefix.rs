//! Constructors for the prefix-sum family and the paper's Table 1 catalog.

use crate::element::Element;
use crate::filters;
use crate::signature::Signature;

/// The standard prefix sum `(1 : 1)`.
///
/// # Examples
///
/// ```
/// use plr_core::{prefix, serial};
///
/// let sig = prefix::prefix_sum::<i32>();
/// assert_eq!(serial::run(&sig, &[1, 2, 3]), vec![1, 3, 6]);
/// ```
pub fn prefix_sum<T: Element>() -> Signature<T> {
    Signature::new(vec![T::one()], vec![T::one()]).expect("(1:1) is always valid")
}

/// The `s`-tuple prefix sum `(1 : 0, …, 0, 1)` — `s` interleaved prefix
/// sums computed as a single order-`s` recurrence.
///
/// # Panics
///
/// Panics if `s == 0`.
pub fn tuple_prefix_sum<T: Element>(s: usize) -> Signature<T> {
    assert!(s >= 1, "tuple size must be at least 1");
    let mut feedback = vec![T::zero(); s];
    feedback[s - 1] = T::one();
    Signature::new(vec![T::one()], feedback).expect("tuple signature is always valid")
}

/// The `r`-th-order prefix sum (prefix sum applied `r` times): feedback
/// coefficients follow the binomial coefficients with alternating signs,
/// `b-j = (-1)^(j+1)·C(r, j)` — e.g. `(1: 2, -1)` and `(1: 3, -3, 1)`.
///
/// # Panics
///
/// Panics if `r == 0` or the binomials overflow `i64` (`r > 62`).
pub fn higher_order_prefix_sum<T: Element>(r: usize) -> Signature<T> {
    assert!(r >= 1, "order must be at least 1");
    assert!(r <= 62, "binomial coefficients overflow past order 62");
    let mut feedback = Vec::with_capacity(r);
    let mut binom: i64 = 1;
    for j in 1..=r {
        // C(r, j) computed incrementally; exact in i64 for r <= 62.
        binom = binom * (r as i64 - j as i64 + 1) / j as i64;
        let signed = if j % 2 == 1 { binom } else { -binom };
        feedback.push(T::from_f64(signed as f64));
    }
    Signature::new(vec![T::one()], feedback).expect("higher-order signature is always valid")
}

/// One named entry of the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// A short identifier (used by the bench harness CLI).
    pub id: &'static str,
    /// The paper's description column.
    pub description: &'static str,
    /// The signature with exact (untruncated) coefficients.
    pub signature: Signature<f64>,
    /// `true` for the integer-evaluated recurrences (prefix sums),
    /// `false` for the floating-point digital filters.
    pub integral: bool,
}

/// The paper's Table 1: all eleven studied recurrences.
///
/// Filter coefficients are the exact cascade values (Table 1 truncates some
/// digits for readability).
pub fn catalog() -> Vec<CatalogEntry> {
    let e = |id, description, signature, integral| CatalogEntry {
        id,
        description,
        signature,
        integral,
    };
    vec![
        e("psum", "prefix sum", prefix_sum(), true),
        e("tuple2", "2-tuple prefix sum", tuple_prefix_sum(2), true),
        e("tuple3", "3-tuple prefix sum", tuple_prefix_sum(3), true),
        e(
            "order2",
            "2nd-order prefix sum",
            higher_order_prefix_sum(2),
            true,
        ),
        e(
            "order3",
            "3rd-order prefix sum",
            higher_order_prefix_sum(3),
            true,
        ),
        e(
            "lp1",
            "a 1-stage low-pass filter",
            filters::low_pass(0.8, 1),
            false,
        ),
        e(
            "lp2",
            "a 2-stage low-pass filter",
            filters::low_pass(0.8, 2),
            false,
        ),
        e(
            "lp3",
            "a 3-stage low-pass filter",
            filters::low_pass(0.8, 3),
            false,
        ),
        e(
            "hp1",
            "a 1-stage high-pass filter",
            filters::high_pass(0.8, 1),
            false,
        ),
        e(
            "hp2",
            "a 2-stage high-pass filter",
            filters::high_pass(0.8, 2),
            false,
        ),
        e(
            "hp3",
            "a 3-stage high-pass filter",
            filters::high_pass(0.8, 3),
            false,
        ),
    ]
}

/// Looks up a catalog entry by id.
pub fn catalog_entry(id: &str) -> Option<CatalogEntry> {
    catalog().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;

    #[test]
    fn tuple_prefix_sum_is_interleaved_scans() {
        let sig = tuple_prefix_sum::<i64>(3);
        assert_eq!(sig.feedback(), &[0, 0, 1]);
        let input: Vec<i64> = (1..=12).collect();
        let out = serial::run(&sig, &input);
        // Three interleaved prefix sums over lanes {1,4,7,10}, {2,5,8,11}, {3,6,9,12}.
        assert_eq!(out, vec![1, 2, 3, 5, 7, 9, 12, 15, 18, 22, 26, 30]);
    }

    #[test]
    fn higher_order_matches_iterated_prefix_sum() {
        let input: Vec<i64> = (0..40).map(|i| (i % 7) as i64 - 3).collect();
        for r in 1..=4 {
            let sig = higher_order_prefix_sum::<i64>(r);
            let direct = serial::run(&sig, &input);
            let mut iterated = input.clone();
            for _ in 0..r {
                iterated = serial::run(&prefix_sum::<i64>(), &iterated);
            }
            assert_eq!(direct, iterated, "order {r}");
        }
    }

    #[test]
    fn higher_order_signatures_match_paper() {
        assert_eq!(higher_order_prefix_sum::<i32>(2).feedback(), &[2, -1]);
        assert_eq!(higher_order_prefix_sum::<i32>(3).feedback(), &[3, -3, 1]);
        assert_eq!(
            higher_order_prefix_sum::<i32>(4).feedback(),
            &[4, -6, 4, -1]
        );
        assert_eq!(higher_order_prefix_sum::<i32>(1).feedback(), &[1]);
    }

    #[test]
    fn catalog_has_eleven_entries_matching_table_1() {
        let cat = catalog();
        assert_eq!(cat.len(), 11);
        let sig_strings: Vec<String> = cat.iter().map(|e| e.signature.to_string()).collect();
        assert_eq!(sig_strings[0], "(1: 1)");
        assert_eq!(sig_strings[1], "(1: 0, 1)");
        assert_eq!(sig_strings[2], "(1: 0, 0, 1)");
        assert_eq!(sig_strings[3], "(1: 2, -1)");
        assert_eq!(sig_strings[4], "(1: 3, -3, 1)");
        // Float entries checked numerically in filters::tests; here just the
        // integral flags.
        assert!(cat[..5].iter().all(|e| e.integral));
        assert!(cat[5..].iter().all(|e| !e.integral));
    }

    #[test]
    fn catalog_lookup() {
        assert!(catalog_entry("order3").is_some());
        assert_eq!(catalog_entry("order3").unwrap().signature.order(), 3);
        assert!(catalog_entry("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_tuple_rejected() {
        tuple_prefix_sum::<i32>(0);
    }
}
