//! Companion-matrix view of a feedback recurrence.
//!
//! The state vector `(y[i], y[i-1], …, y[i-k+1])` advances by one step via
//! the companion matrix `C` of the feedback coefficients. This is the
//! representation Blelloch's Scan method materializes per element; here it
//! serves as an independent cross-check of the n-nacci correction factors:
//!
//! > `CorrectionTable::list(r)[i] == (C^{i+1})[0][r]`
//!
//! i.e. the factor multiplying carry `r` when correcting element `i` is an
//! entry of the `i+1`-st matrix power — which is why the Scan method's
//! matrix chains and PLR's factor lists compute the same thing, with PLR
//! hoisting the matrix powers to compile time.

use crate::element::Element;

/// A dense `k×k` matrix, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    k: usize,
    data: Vec<T>,
}

impl<T: Element> Matrix<T> {
    /// The identity matrix of size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn identity(k: usize) -> Self {
        assert!(k > 0, "matrices must be at least 1×1");
        let mut data = vec![T::zero(); k * k];
        for i in 0..k {
            data[i * k + i] = T::one();
        }
        Matrix { k, data }
    }

    /// The companion matrix of `feedback`: row 0 holds the coefficients,
    /// the subdiagonal shifts the state.
    ///
    /// # Panics
    ///
    /// Panics if `feedback` is empty.
    pub fn companion(feedback: &[T]) -> Self {
        let k = feedback.len();
        assert!(k > 0, "companion matrices need at least one coefficient");
        let mut data = vec![T::zero(); k * k];
        data[..k].copy_from_slice(feedback);
        for i in 1..k {
            data[i * k + (i - 1)] = T::one();
        }
        Matrix { k, data }
    }

    /// The matrix dimension.
    pub fn dim(&self) -> usize {
        self.k
    }

    /// Entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(row < self.k && col < self.k);
        self.data[row * self.k + col]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.k, rhs.k, "dimension mismatch");
        let k = self.k;
        let mut data = vec![T::zero(); k * k];
        for i in 0..k {
            for l in 0..k {
                let a = self.data[i * k + l];
                if a.is_zero() {
                    continue;
                }
                for j in 0..k {
                    data[i * k + j] = data[i * k + j].add(a.mul(rhs.data[l * k + j]));
                }
            }
        }
        Matrix { k, data }
    }

    /// Matrix power by binary exponentiation (`n == 0` gives the identity).
    pub fn pow(&self, mut n: u64) -> Matrix<T> {
        let mut result = Matrix::identity(self.k);
        let mut base = self.clone();
        while n > 0 {
            if n & 1 == 1 {
                result = result.mul(&base);
            }
            base = base.mul(&base);
            n >>= 1;
        }
        result
    }

    /// Builds a matrix from row-major entries.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `data.len() != k·k`.
    pub fn from_parts(k: usize, data: Vec<T>) -> Self {
        assert!(k > 0, "matrices must be at least 1×1");
        assert_eq!(data.len(), k * k, "row-major data must hold k·k entries");
        Matrix { k, data }
    }

    /// Left-multiplies by the companion matrix of `feedback` in place:
    /// `self ← C(feedback) · self`.
    ///
    /// This is the incremental step that composes a chunk's per-element
    /// transition matrices in the time-varying lowering: `C` has a dense
    /// row 0 and a subdiagonal of ones, so the product is one `k`-tap
    /// combination of rows (the new row 0) followed by shifting every row
    /// down a slot — `O(k²)` instead of the dense `O(k³)` product.
    ///
    /// # Panics
    ///
    /// Panics if `feedback.len() != self.dim()`.
    pub fn companion_push(&mut self, feedback: &[T]) {
        let k = self.k;
        assert_eq!(feedback.len(), k, "dimension mismatch");
        let mut top = vec![T::zero(); k];
        for (j, slot) in top.iter_mut().enumerate() {
            let mut acc = T::zero();
            for (r, &a) in feedback.iter().enumerate() {
                if a.is_zero() {
                    continue;
                }
                acc = acc.add(a.mul(self.data[r * k + j]));
            }
            *slot = acc;
        }
        // Shift rows 0..k-1 down by one, then install the new row 0.
        self.data.copy_within(0..k * (k - 1), k);
        self.data[..k].copy_from_slice(&top);
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.k, "dimension mismatch");
        (0..self.k)
            .map(|i| {
                let mut acc = T::zero();
                for (j, &x) in v.iter().enumerate() {
                    acc = acc.add(self.data[i * self.k + j].mul(x));
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nacci::CorrectionTable;
    use crate::serial;

    #[test]
    fn companion_advances_the_state() {
        let fb = [2i64, -1];
        let c = Matrix::companion(&fb);
        // State (y1, y0) -> (y2, y1) with y2 = 2·y1 - y0.
        let next = c.apply(&[5, 3]);
        assert_eq!(next, vec![7, 5]);
    }

    #[test]
    fn power_by_squaring_matches_repeated_multiplication() {
        let c = Matrix::companion(&[1i64, 1]);
        let mut slow = Matrix::identity(2);
        for n in 0..12u64 {
            assert_eq!(c.pow(n), slow, "power {n}");
            slow = slow.mul(&c);
        }
    }

    #[test]
    fn correction_factors_are_companion_matrix_powers() {
        // The module-level identity, across several recurrences.
        for fb in [
            &[1i64][..],
            &[1, 1][..],
            &[2, -1][..],
            &[3, -3, 1][..],
            &[1, -2, 3, -1][..],
        ] {
            let k = fb.len();
            let m = 24;
            let table = CorrectionTable::generate(fb, m);
            let c = Matrix::companion(fb);
            for i in 0..m {
                let p = c.pow(i as u64 + 1);
                for r in 0..k {
                    assert_eq!(
                        table.list(r)[i],
                        p.get(0, r),
                        "feedback {fb:?}, entry {i}, carry {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_recurrence_matches_serial() {
        // Advancing the state vector with C reproduces the serial loop.
        let fb = [1.6f64, -0.64];
        let sig = crate::signature::Signature::new(vec![1.0], vec![1.6, -0.64]).unwrap();
        let input: Vec<f64> = (0..40).map(|i| ((i % 7) as f64) - 3.0).collect();
        let expect = serial::run(&sig, &input);
        let c = Matrix::companion(&fb);
        let mut state = vec![0.0f64; 2];
        for (i, &t) in input.iter().enumerate() {
            let mut next = c.apply(&state);
            next[0] += t;
            assert!((next[0] - expect[i]).abs() < 1e-9, "index {i}");
            state = next;
        }
    }

    #[test]
    fn fibonacci_entries() {
        let c = Matrix::companion(&[1u64 as i64, 1]);
        let p = c.pow(10);
        // C^10 [0][0] = Fib(11) with Fib(1)=1: 89.
        assert_eq!(p.get(0, 0), 89);
    }

    #[test]
    fn companion_push_matches_dense_product() {
        // Pushing a sequence of companions one at a time equals the dense
        // left-product of the same sequence, for orders 1..=4.
        for k in 1..=4usize {
            let rows: Vec<Vec<i64>> = (0..10)
                .map(|i| (0..k).map(|j| ((i * 3 + j * 5) % 7) as i64 - 3).collect())
                .collect();
            let mut incremental = Matrix::identity(k);
            let mut dense = Matrix::identity(k);
            for row in &rows {
                incremental.companion_push(row);
                dense = Matrix::companion(row).mul(&dense);
                assert_eq!(incremental, dense, "order {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_multiplication_panics() {
        let a = Matrix::companion(&[1i64]);
        let b = Matrix::companion(&[1i64, 1]);
        let _ = a.mul(&b);
    }
}
