//! Error types for signature construction, parsing, and output validation.

use core::fmt;

/// Errors produced when constructing or parsing a [`Signature`].
///
/// [`Signature`]: crate::signature::Signature
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SignatureError {
    /// The feed-forward coefficient list was empty or all zeros.
    ///
    /// With all `a` coefficients zero the output is identically zero and
    /// independent of the input (paper, Section 1), so such signatures are
    /// rejected rather than silently computing nothing.
    ZeroFeedforward,
    /// The feedback coefficient list was empty or all zeros.
    ///
    /// With all `b` coefficients zero the recurrence degenerates to a map
    /// operation; the paper (and this library's recurrence engines) only
    /// handle `k >= 1`. Use the FIR helpers in [`crate::serial`] directly
    /// for pure map operations.
    ZeroFeedback,
    /// A token in the textual signature could not be parsed as a coefficient.
    InvalidToken {
        /// The offending token.
        token: String,
    },
    /// The textual signature did not contain exactly one `:` separator.
    MissingSeparator,
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::ZeroFeedforward => {
                write!(f, "feed-forward coefficients are empty or all zero")
            }
            SignatureError::ZeroFeedback => {
                write!(
                    f,
                    "feedback coefficients are empty or all zero (use a plain map for FIR-only signatures)"
                )
            }
            SignatureError::InvalidToken { token } => {
                write!(f, "invalid coefficient token `{token}`")
            }
            SignatureError::MissingSeparator => {
                write!(
                    f,
                    "signature must contain exactly one `:` separating the coefficient lists"
                )
            }
        }
    }
}

impl std::error::Error for SignatureError {}

/// A mismatch found when validating a parallel result against the serial
/// reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationError {
    /// Index of the first mismatching element.
    pub index: usize,
    /// The serial reference value at that index (widened to `f64`).
    pub expected: f64,
    /// The value under test at that index (widened to `f64`).
    pub actual: f64,
    /// The tolerance that was applied.
    pub tolerance: f64,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "output mismatch at index {}: expected {}, got {} (tolerance {})",
            self.index, self.expected, self.actual, self.tolerance
        )
    }
}

impl std::error::Error for ValidationError {}

/// Errors produced by the recurrence engines when a configuration cannot be
/// executed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The requested chunk size was zero or not a power of two where one is
    /// required by the hierarchical doubling of Phase 1.
    InvalidChunkSize {
        /// The rejected chunk size.
        chunk_size: usize,
    },
    /// The input exceeds the maximum size the configuration supports.
    ///
    /// The paper's PLR supports sequences up to 4 GB (2^30 32-bit words);
    /// executors report their own caps (e.g. Alg3 2 GB, Rec 1 GB, Scan
    /// k-dependent) through this error.
    InputTooLarge {
        /// Number of elements requested.
        len: usize,
        /// Maximum number of elements supported.
        max: usize,
    },
    /// The executor does not support this signature shape (e.g. Alg3/Rec
    /// only support a single non-recursive coefficient; paper Section 6.2.2).
    UnsupportedSignature {
        /// Human-readable reason.
        reason: String,
    },
    /// The input length does not match the length an executor is bound to.
    ///
    /// Time-varying signatures carry one coefficient row per element, so a
    /// [`VaryingSignature`](crate::varying::VaryingSignature) of length `n`
    /// can only be applied to inputs of exactly `n` elements.
    LengthMismatch {
        /// The length the executor was built for.
        expected: usize,
        /// The length of the input actually supplied.
        got: usize,
    },
    /// A worker thread (or the calling thread acting as worker 0) panicked
    /// while executing a parallel run.
    ///
    /// The decoupled look-back progress argument assumes every execution
    /// unit eventually publishes its carries; a panicking worker breaks
    /// that assumption, so the runtime aborts the run, converts the panic
    /// into this error, and leaves the pool reusable for the next call.
    WorkerPanicked {
        /// Id of the worker that panicked (`0` is the calling thread).
        worker: usize,
        /// The panic payload, stringified (`<non-string panic payload>`
        /// when the payload was not a `&str` or `String`).
        payload: String,
    },
    /// An opt-in finiteness check found a NaN or infinite carry after a
    /// chunk's local solve or correction.
    ///
    /// Unstable float signatures (spectral radius > 1) can overflow to
    /// `inf`/NaN mid-run; without this check the garbage silently
    /// propagates through every later chunk via the look-back chain.
    NonFiniteCarry {
        /// Index of the first chunk observed with a non-finite carry (under
        /// concurrent execution, not necessarily the lowest such index).
        chunk: usize,
    },
    /// The run was aborted through a caller-held cancellation token.
    ///
    /// Cancellation reuses the same cooperative bail-out paths a worker
    /// panic does: every ticket loop and carry spin-wait polls the run's
    /// abort flag and stops promptly, the output buffer is left partially
    /// processed, and the pool stays reusable for the next call.
    Cancelled,
    /// The run exceeded its configured wall-clock deadline.
    ///
    /// The worker pool's watchdog converts a run that outlives its budget
    /// — a wedged stage, an OS-starved worker, a hung spin-wait — into
    /// this error instead of a hang, via the same cooperative abort
    /// plumbing cancellation uses.
    DeadlineExceeded {
        /// The wall-clock budget that was exceeded.
        deadline: core::time::Duration,
    },
    /// The service core rejected the submission *at admission* because the
    /// estimated queue delay already exceeds the row's remaining deadline
    /// budget (or the shard's backlog bound): admitting the row would only
    /// wedge the queue and miss the deadline anyway.
    ///
    /// Retryable — back off (see `plr_parallel::retry`) and resubmit; the
    /// hint is the service's estimate of when capacity frees up.
    Overloaded {
        /// Suggested minimum wait before resubmitting.
        retry_after_hint: core::time::Duration,
    },
    /// The submission was rejected because the tenant's token-bucket quota
    /// is exhausted.
    ///
    /// Retryable — the hint is when the bucket accrues the next token, so
    /// a well-behaved client that waits at least this long will usually be
    /// admitted (subject to load shedding).
    QuotaExceeded {
        /// Time until the tenant's bucket accrues enough budget for one
        /// more row.
        retry_after_hint: core::time::Duration,
    },
}

impl EngineError {
    /// Whether the failure is *transient by contract*: resubmitting the
    /// same work after a backoff can succeed without any change on the
    /// caller's side. True exactly for the admission-control rejections
    /// ([`Overloaded`](Self::Overloaded) and
    /// [`QuotaExceeded`](Self::QuotaExceeded)); every other variant either
    /// reports a configuration problem (same inputs will fail again) or a
    /// caller-initiated abort (retrying would override the caller's own
    /// cancel/deadline decision).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            EngineError::Overloaded { .. } | EngineError::QuotaExceeded { .. }
        )
    }

    /// The suggested minimum backoff before a retry, when the error
    /// carries one (the admission-control rejections do).
    pub fn retry_after_hint(&self) -> Option<core::time::Duration> {
        match self {
            EngineError::Overloaded { retry_after_hint }
            | EngineError::QuotaExceeded { retry_after_hint } => Some(*retry_after_hint),
            _ => None,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidChunkSize { chunk_size } => {
                write!(f, "invalid chunk size {chunk_size}")
            }
            EngineError::InputTooLarge { len, max } => {
                write!(
                    f,
                    "input of {len} elements exceeds supported maximum of {max}"
                )
            }
            EngineError::UnsupportedSignature { reason } => {
                write!(f, "unsupported signature: {reason}")
            }
            EngineError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "input of {got} elements does not match the bound length {expected}"
                )
            }
            EngineError::WorkerPanicked { worker, payload } => {
                write!(f, "worker {worker} panicked: {payload}")
            }
            EngineError::NonFiniteCarry { chunk } => {
                write!(f, "non-finite carry produced by chunk {chunk}")
            }
            EngineError::Cancelled => {
                write!(f, "run cancelled by the caller")
            }
            EngineError::DeadlineExceeded { deadline } => {
                write!(f, "run exceeded its deadline of {deadline:?}")
            }
            EngineError::Overloaded { retry_after_hint } => {
                write!(
                    f,
                    "service overloaded, rejected at admission (retry after {retry_after_hint:?})"
                )
            }
            EngineError::QuotaExceeded { retry_after_hint } => {
                write!(
                    f,
                    "tenant quota exhausted (retry after {retry_after_hint:?})"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            SignatureError::ZeroFeedforward.to_string(),
            SignatureError::ZeroFeedback.to_string(),
            SignatureError::InvalidToken { token: "q".into() }.to_string(),
            SignatureError::MissingSeparator.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn validation_error_display() {
        let e = ValidationError {
            index: 3,
            expected: 1.0,
            actual: 2.0,
            tolerance: 1e-3,
        };
        let s = e.to_string();
        assert!(s.contains("index 3"));
        assert!(s.contains("expected 1"));
    }

    #[test]
    fn engine_error_display() {
        let e = EngineError::InputTooLarge { len: 10, max: 5 };
        assert!(e.to_string().contains("10"));
        let e = EngineError::UnsupportedSignature {
            reason: "p > 0".into(),
        };
        assert!(e.to_string().contains("p > 0"));
        let e = EngineError::WorkerPanicked {
            worker: 3,
            payload: "boom".into(),
        };
        assert!(e.to_string().contains("worker 3"));
        assert!(e.to_string().contains("boom"));
        let e = EngineError::NonFiniteCarry { chunk: 7 };
        assert!(e.to_string().contains("chunk 7"));
        let e = EngineError::LengthMismatch {
            expected: 8,
            got: 6,
        };
        assert!(e.to_string().contains('8'), "{e}");
        assert!(e.to_string().contains('6'), "{e}");
        let e = EngineError::Cancelled;
        assert!(e.to_string().contains("cancelled"));
        let e = EngineError::DeadlineExceeded {
            deadline: core::time::Duration::from_millis(250),
        };
        assert!(e.to_string().contains("deadline"), "{e}");
        assert!(e.to_string().contains("250"), "{e}");
        let e = EngineError::Overloaded {
            retry_after_hint: core::time::Duration::from_millis(7),
        };
        assert!(e.to_string().contains("overloaded"), "{e}");
        assert!(e.to_string().contains("7"), "{e}");
        let e = EngineError::QuotaExceeded {
            retry_after_hint: core::time::Duration::from_millis(9),
        };
        assert!(e.to_string().contains("quota"), "{e}");
    }

    #[test]
    fn retryability_is_exactly_the_admission_rejections() {
        let hint = core::time::Duration::from_millis(5);
        let overloaded = EngineError::Overloaded {
            retry_after_hint: hint,
        };
        let quota = EngineError::QuotaExceeded {
            retry_after_hint: hint,
        };
        assert!(overloaded.is_retryable());
        assert!(quota.is_retryable());
        assert_eq!(overloaded.retry_after_hint(), Some(hint));
        assert_eq!(quota.retry_after_hint(), Some(hint));
        for err in [
            EngineError::Cancelled,
            EngineError::InvalidChunkSize { chunk_size: 0 },
            EngineError::NonFiniteCarry { chunk: 1 },
            EngineError::WorkerPanicked {
                worker: 0,
                payload: "x".into(),
            },
            EngineError::DeadlineExceeded {
                deadline: core::time::Duration::from_secs(1),
            },
        ] {
            assert!(!err.is_retryable(), "{err}");
            assert_eq!(err.retry_after_hint(), None, "{err}");
        }
    }

    #[test]
    fn errors_are_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<SignatureError>();
        check::<ValidationError>();
        check::<EngineError>();
    }
}
