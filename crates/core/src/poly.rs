//! Minimal dense polynomial arithmetic over `f64`.
//!
//! Used by the filter-design module to compose transfer functions (cascading
//! filter stages multiplies their z-domain numerators and denominators) and
//! by the stability analysis for characteristic polynomials. Coefficients
//! are stored lowest degree first.

use core::fmt;

/// A dense univariate polynomial with `f64` coefficients, lowest degree
/// first.
///
/// # Examples
///
/// ```
/// use plr_core::poly::Poly;
///
/// let p = Poly::new(vec![1.0, -0.8]);        // 1 - 0.8·z
/// let sq = p.mul(&p);                        // 1 - 1.6·z + 0.64·z²
/// assert_eq!(sq.coeffs(), &[1.0, -1.6, 0.6400000000000001]);
/// assert_eq!(sq.eval(1.0), sq.coeffs().iter().sum::<f64>());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Poly {
    coeffs: Vec<f64>,
}

impl Poly {
    /// Creates a polynomial from coefficients (lowest degree first).
    /// Trailing zeros are trimmed; the zero polynomial is `[]`.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut coeffs = coeffs;
        while coeffs.last().is_some_and(|&c| c == 0.0) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly { coeffs: vec![1.0] }
    }

    /// The coefficients, lowest degree first (empty for the zero polynomial).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree; the zero polynomial reports degree 0.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Polynomial product (convolution of coefficient vectors).
    pub fn mul(&self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::new(vec![]);
        }
        let mut out = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly::new(out)
    }

    /// Polynomial sum.
    pub fn add(&self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.coeffs.get(i).copied().unwrap_or(0.0)
                + rhs.coeffs.get(i).copied().unwrap_or(0.0);
        }
        Poly::new(out)
    }

    /// Scales every coefficient by `s`.
    pub fn scale(&self, s: f64) -> Poly {
        Poly::new(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Integer power by repeated multiplication.
    pub fn pow(&self, n: u32) -> Poly {
        let mut acc = Poly::one();
        for _ in 0..n {
            acc = acc.mul(self);
        }
        acc
    }

    /// Horner evaluation at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for (i, c) in self.coeffs.iter().enumerate() {
            if i == 0 {
                write!(f, "{c}")?;
            } else {
                write!(f, " + {c}·z^{i}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_trims_trailing_zeros() {
        let p = Poly::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
        assert_eq!(p.degree(), 1);
        assert!(Poly::new(vec![0.0, 0.0]).is_zero());
    }

    #[test]
    fn multiplication_is_convolution() {
        let a = Poly::new(vec![1.0, 1.0]); // 1 + z
        let b = Poly::new(vec![1.0, -1.0]); // 1 - z
        assert_eq!(a.mul(&b).coeffs(), &[1.0, 0.0, -1.0]); // 1 - z²
    }

    #[test]
    fn multiplication_by_zero() {
        let a = Poly::new(vec![1.0, 2.0]);
        let z = Poly::new(vec![]);
        assert!(a.mul(&z).is_zero());
        assert!(z.mul(&a).is_zero());
    }

    #[test]
    fn addition_aligns_degrees() {
        let a = Poly::new(vec![1.0]);
        let b = Poly::new(vec![0.0, 0.0, 3.0]);
        assert_eq!(a.add(&b).coeffs(), &[1.0, 0.0, 3.0]);
        // Cancellation trims.
        let c = Poly::new(vec![1.0, 2.0]);
        let d = Poly::new(vec![0.0, -2.0]);
        assert_eq!(c.add(&d).coeffs(), &[1.0]);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let p = Poly::new(vec![1.0, -0.8]);
        assert_eq!(p.pow(0), Poly::one());
        assert_eq!(p.pow(1), p);
        assert_eq!(p.pow(3), p.mul(&p).mul(&p));
    }

    #[test]
    fn eval_horner() {
        let p = Poly::new(vec![2.0, 0.0, 1.0]); // 2 + z²
        assert_eq!(p.eval(3.0), 11.0);
        assert_eq!(Poly::new(vec![]).eval(5.0), 0.0);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(Poly::new(vec![]).to_string(), "0");
        assert!(Poly::new(vec![1.0, 2.0]).to_string().contains("z^1"));
    }
}
