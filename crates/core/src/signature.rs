//! The signature domain-specific language for linear recurrences.
//!
//! A signature `(a0, a-1, …, a-p : b-1, …, b-k)` denotes the order-`k`
//! homogeneous linear recurrence with constant coefficients
//!
//! ```text
//! y[i] = a0·x[i] + a-1·x[i-1] + … + a-p·x[i-p]
//!      + b-1·y[i-1] + b-2·y[i-2] + … + b-k·y[i-k]
//! ```
//!
//! with `x[j] = y[j] = 0` for `j < 0`. The `a` coefficients are the
//! *feed-forward* (non-recursive, FIR) part and the `b` coefficients the
//! *feedback* (recursive) part. This is exactly the notation of the paper's
//! Section 1 and Table 1.

use crate::element::Element;
use crate::error::SignatureError;
use core::fmt;
use std::str::FromStr;

/// A linear recurrence signature: feed-forward and feedback coefficients.
///
/// Invariants enforced at construction:
/// * at least one feed-forward coefficient is nonzero (otherwise the output
///   is identically zero), and
/// * at least one feedback coefficient is nonzero (otherwise the signature is
///   a pure map and outside the scope of the recurrence engines).
///
/// Trailing zero coefficients are trimmed so that `order()` reports the
/// largest `k` with `b-k != 0`, as in the paper.
///
/// # Examples
///
/// ```
/// use plr_core::signature::Signature;
///
/// // Standard prefix sum: (1 : 1)
/// let sig: Signature<i32> = "1 : 1".parse()?;
/// assert_eq!(sig.order(), 1);
/// assert!(sig.is_pure_feedback());
///
/// // A 2-stage low-pass filter: (0.04 : 1.6, -0.64)
/// let lp: Signature<f32> = "(0.04 : 1.6, -0.64)".parse()?;
/// assert_eq!(lp.order(), 2);
/// # Ok::<(), plr_core::error::SignatureError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Signature<T> {
    feedforward: Vec<T>,
    feedback: Vec<T>,
}

impl<T: Element> Signature<T> {
    /// Creates a signature from coefficient lists.
    ///
    /// `feedforward[j]` is `a-j` (so `feedforward[0]` is `a0`) and
    /// `feedback[j]` is `b-(j+1)` (so `feedback[0]` is `b-1`).
    ///
    /// Trailing zeros in both lists are trimmed.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::ZeroFeedforward`] if every `a` coefficient
    /// is zero, and [`SignatureError::ZeroFeedback`] if every `b`
    /// coefficient is zero.
    pub fn new(feedforward: Vec<T>, feedback: Vec<T>) -> Result<Self, SignatureError> {
        let mut feedforward = feedforward;
        let mut feedback = feedback;
        while feedforward.last().is_some_and(|c| c.is_zero()) {
            feedforward.pop();
        }
        while feedback.last().is_some_and(|c| c.is_zero()) {
            feedback.pop();
        }
        if feedforward.is_empty() {
            return Err(SignatureError::ZeroFeedforward);
        }
        if feedback.is_empty() {
            return Err(SignatureError::ZeroFeedback);
        }
        Ok(Self {
            feedforward,
            feedback,
        })
    }

    /// The feed-forward coefficients `a0, a-1, …, a-p` (trailing zeros trimmed).
    pub fn feedforward(&self) -> &[T] {
        &self.feedforward
    }

    /// The feedback coefficients `b-1, …, b-k` (trailing zeros trimmed).
    pub fn feedback(&self) -> &[T] {
        &self.feedback
    }

    /// The order `k` of the recurrence: the largest `k` with `b-k != 0`.
    pub fn order(&self) -> usize {
        self.feedback.len()
    }

    /// The FIR order `p`: the largest `p` with `a-p != 0`.
    pub fn fir_order(&self) -> usize {
        self.feedforward.len() - 1
    }

    /// `true` when the feed-forward part is the single coefficient `1`
    /// (i.e. the signature is of the paper's "type (3)" form `(1 : b…)`).
    pub fn is_pure_feedback(&self) -> bool {
        self.feedforward.len() == 1 && self.feedforward[0].is_one()
    }

    /// Splits this signature into its map stage and pure-feedback stage
    /// (the paper's equations (2) and (3)).
    ///
    /// The map stage has signature `(a0, …, a-p : 0)` — returned here as the
    /// raw coefficient list since a pure map is not a valid [`Signature`] —
    /// and the remaining recurrence is `(1 : b-1, …, b-k)`.
    pub fn split(&self) -> (Vec<T>, Signature<T>) {
        let fir = self.feedforward.clone();
        let recursive = Signature {
            feedforward: vec![T::one()],
            feedback: self.feedback.clone(),
        };
        (fir, recursive)
    }

    /// Returns the same signature with every coefficient converted to
    /// element type `U` via `f64` (exact for small integers; filter designs
    /// computed in `f64` convert to `f32` this way).
    pub fn cast<U: Element>(&self) -> Signature<U> {
        Signature {
            feedforward: self
                .feedforward
                .iter()
                .map(|c| U::from_f64(c.to_f64()))
                .collect(),
            feedback: self
                .feedback
                .iter()
                .map(|c| U::from_f64(c.to_f64()))
                .collect(),
        }
    }

    /// `true` when every coefficient (both lists) is an integer value, which
    /// the paper's PLR uses to pick register budgets.
    pub fn is_integral(&self) -> bool {
        self.feedforward
            .iter()
            .chain(self.feedback.iter())
            .all(|c| c.to_f64().fract() == 0.0)
    }

    /// `true` when every coefficient is zero or one (normal and tuple-based
    /// prefix sums), which lets PLR allocate the smaller register budget and
    /// emit conditional-add correction code.
    pub fn is_zero_one(&self) -> bool {
        self.feedforward
            .iter()
            .chain(self.feedback.iter())
            .all(|c| c.is_zero() || c.is_one())
    }
}

impl<T: Element> fmt::Display for Signature<T> {
    /// Formats as the paper's notation, e.g. `(1: 2, -1)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.feedforward.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ":")?;
        for (i, c) in self.feedback.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, " {c}")?;
        }
        write!(f, ")")
    }
}

impl<T: Element> FromStr for Signature<T> {
    type Err = SignatureError;

    /// Parses the textual signature DSL.
    ///
    /// Accepted grammar: an optional surrounding pair of parentheses, two
    /// coefficient lists separated by a single `:`, coefficients separated
    /// by commas and/or whitespace. Examples: `"1:1"`, `"(1: 2, -1)"`,
    /// `"0.9 -0.9 : 0.8"`.
    ///
    /// # Errors
    ///
    /// * [`SignatureError::MissingSeparator`] without exactly one `:`;
    /// * [`SignatureError::InvalidToken`] for an unparsable coefficient;
    /// * the [`Signature::new`] validation errors.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let s = s
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .unwrap_or(s);
        let mut halves = s.split(':');
        let (ff, fb) = match (halves.next(), halves.next(), halves.next()) {
            (Some(a), Some(b), None) => (a, b),
            _ => return Err(SignatureError::MissingSeparator),
        };
        let parse_list = |part: &str| -> Result<Vec<T>, SignatureError> {
            part.split(|c: char| c == ',' || c.is_whitespace())
                .filter(|t| !t.is_empty())
                .map(|t| {
                    T::parse_token(t).ok_or_else(|| SignatureError::InvalidToken {
                        token: t.to_owned(),
                    })
                })
                .collect()
        };
        Signature::new(parse_list(ff)?, parse_list(fb)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sum_signature() {
        let sig = Signature::<i32>::new(vec![1], vec![1]).unwrap();
        assert_eq!(sig.order(), 1);
        assert_eq!(sig.fir_order(), 0);
        assert!(sig.is_pure_feedback());
        assert!(sig.is_zero_one());
        assert!(sig.is_integral());
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let sig = Signature::<i32>::new(vec![1, 0, 0], vec![2, -1, 0, 0]).unwrap();
        assert_eq!(sig.feedforward(), &[1]);
        assert_eq!(sig.feedback(), &[2, -1]);
        assert_eq!(sig.order(), 2);
    }

    #[test]
    fn interior_zeros_preserved() {
        // 3-tuple prefix sum (1 : 0, 0, 1)
        let sig = Signature::<i32>::new(vec![1], vec![0, 0, 1]).unwrap();
        assert_eq!(sig.order(), 3);
        assert_eq!(sig.feedback(), &[0, 0, 1]);
    }

    #[test]
    fn rejects_zero_lists() {
        assert_eq!(
            Signature::<i32>::new(vec![0, 0], vec![1]).unwrap_err(),
            SignatureError::ZeroFeedforward
        );
        assert_eq!(
            Signature::<i32>::new(vec![1], vec![0]).unwrap_err(),
            SignatureError::ZeroFeedback
        );
        assert_eq!(
            Signature::<i32>::new(vec![], vec![1]).unwrap_err(),
            SignatureError::ZeroFeedforward
        );
    }

    #[test]
    fn parse_round_trip() {
        for text in ["1 : 1", "(1: 2, -1)", "(0.9, -0.9: 0.8)", "1:0,0,1"] {
            let sig: Signature<f64> = text.parse().unwrap();
            let shown = sig.to_string();
            let again: Signature<f64> = shown.parse().unwrap();
            assert_eq!(sig, again, "round-trip failed for {text} -> {shown}");
        }
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            "1 1".parse::<Signature<i32>>().unwrap_err(),
            SignatureError::MissingSeparator
        );
        assert_eq!(
            "1:1:1".parse::<Signature<i32>>().unwrap_err(),
            SignatureError::MissingSeparator
        );
        assert!(matches!(
            "1,q : 1".parse::<Signature<i32>>().unwrap_err(),
            SignatureError::InvalidToken { .. }
        ));
        // Fractional tokens are invalid for integer signatures.
        assert!(matches!(
            "0.5 : 1".parse::<Signature<i32>>().unwrap_err(),
            SignatureError::InvalidToken { .. }
        ));
    }

    #[test]
    fn display_matches_paper_notation() {
        let sig = Signature::<i32>::new(vec![1], vec![2, -1]).unwrap();
        assert_eq!(sig.to_string(), "(1: 2, -1)");
    }

    #[test]
    fn split_produces_map_and_pure_feedback() {
        let sig: Signature<f64> = "(0.9, -0.9: 0.8)".parse().unwrap();
        let (fir, rec) = sig.split();
        assert_eq!(fir, vec![0.9, -0.9]);
        assert!(rec.is_pure_feedback());
        assert_eq!(rec.feedback(), &[0.8]);
    }

    #[test]
    fn cast_converts_coefficients() {
        let sig: Signature<f64> = "(0.04 : 1.6, -0.64)".parse().unwrap();
        let s32: Signature<f32> = sig.cast();
        assert_eq!(s32.feedback(), &[1.6f32, -0.64f32]);
        let int: Signature<i32> = "(1 : 2, -1)".parse::<Signature<f64>>().unwrap().cast();
        assert_eq!(int.feedback(), &[2, -1]);
    }

    #[test]
    fn integral_and_zero_one_classification() {
        let tuple: Signature<i32> = "1 : 0, 1".parse().unwrap();
        assert!(tuple.is_zero_one());
        let second: Signature<i32> = "1 : 2, -1".parse().unwrap();
        assert!(second.is_integral());
        assert!(!second.is_zero_one());
        let filt: Signature<f32> = "0.2 : 0.8".parse().unwrap();
        assert!(!filt.is_integral());
        assert!(!filt.is_zero_one());
    }
}
