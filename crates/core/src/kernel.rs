//! Kernel-tier selection: the `PLR_KERNEL` environment knob and its
//! programmatic override, mirroring the plan cache's `PLR_PLAN_CACHE`.
//!
//! Three tiers of local-solve (and map/correction) kernels coexist:
//!
//! * **scalar** — the reference loops of [`crate::serial`];
//! * **blocked** — the register-blocked, autovectorizable kernels of
//!   [`crate::blocked`];
//! * **simd** — the explicit `core::arch` kernels of [`crate::simd`],
//!   dispatched at runtime on the detected ISA.
//!
//! [`SolveKernel::select`](crate::blocked::SolveKernel::select) consults
//! [`tier`] so every executor — `Engine`, both `ParallelRunner`
//! strategies, `BatchRunner`, `RowStream` — picks the same tier without
//! rebuild flags. The default ([`KernelTier::Auto`]) chooses the fastest
//! sound kernel for the element type and the CPU the process is running
//! on; forcing a tier is for differential testing, benchmarking, and
//! bisecting.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel tier [`SolveKernel::select`] may pick.
///
/// [`SolveKernel::select`]: crate::blocked::SolveKernel::select
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelTier {
    /// Pick the fastest sound kernel for the element type and the
    /// detected CPU features (the default).
    #[default]
    Auto,
    /// Force the scalar reference loops everywhere (including the FIR
    /// map stage and the correction-apply loops).
    Scalar,
    /// Allow the register-blocked kernels but not the explicit SIMD
    /// ones (the pre-dispatch behavior, useful for bisecting).
    Blocked,
    /// Prefer the explicit SIMD kernels wherever one exists for the
    /// element type, falling back portably where none does.
    Simd,
}

/// Which kernel actually ran, reported through run statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelKind {
    /// No solve kernel was consulted (default value in zeroed stats).
    #[default]
    Unknown,
    /// Scalar reference loop.
    Scalar,
    /// Register-blocked autovectorizable kernel.
    Blocked,
    /// Explicit SIMD layer, portable (lane-array) fallback.
    SimdPortable,
    /// Explicit SIMD layer, x86-64 AVX2(+FMA) kernels.
    SimdAvx2,
    /// Explicit SIMD layer, x86-64 AVX-512(VL+DQ) kernels.
    SimdAvx512,
    /// Aggregated statistics absorbed runs with different kernels.
    Mixed,
}

/// 0 = follow the `PLR_KERNEL` environment variable; 1..=4 force a tier.
static TIER_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static ENV_TIER: OnceLock<KernelTier> = OnceLock::new();

fn parse_tier(value: &str) -> KernelTier {
    match value.trim().to_ascii_lowercase().as_str() {
        "scalar" => KernelTier::Scalar,
        "blocked" => KernelTier::Blocked,
        "simd" => KernelTier::Simd,
        // "auto", unset, empty, and anything unrecognized: the default.
        _ => KernelTier::Auto,
    }
}

/// The kernel tier in effect: a programmatic override when one was set
/// via [`set_kernel_override`], otherwise the `PLR_KERNEL` environment
/// variable (`scalar` | `blocked` | `simd` | `auto`, read once per
/// process), otherwise [`KernelTier::Auto`].
pub fn tier() -> KernelTier {
    match TIER_OVERRIDE.load(Ordering::Relaxed) {
        1 => KernelTier::Auto,
        2 => KernelTier::Scalar,
        3 => KernelTier::Blocked,
        4 => KernelTier::Simd,
        _ => *ENV_TIER.get_or_init(|| {
            std::env::var("PLR_KERNEL")
                .map(|v| parse_tier(&v))
                .unwrap_or_default()
        }),
    }
}

/// Programmatically force a kernel tier (`None` reverts to the
/// `PLR_KERNEL` environment default).
///
/// The override is process-global and read at *kernel selection* time
/// (plan build); plans already built keep the kernel they selected.
/// Correction plans key their cache on the effective tier, so flipping
/// the override never serves a stale kernel from the plan cache.
pub fn set_kernel_override(tier: Option<KernelTier>) {
    let v = match tier {
        None => 0,
        Some(KernelTier::Auto) => 1,
        Some(KernelTier::Scalar) => 2,
        Some(KernelTier::Blocked) => 3,
        Some(KernelTier::Simd) => 4,
    };
    TIER_OVERRIDE.store(v, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tier_names() {
        assert_eq!(parse_tier("scalar"), KernelTier::Scalar);
        assert_eq!(parse_tier("Blocked "), KernelTier::Blocked);
        assert_eq!(parse_tier("SIMD"), KernelTier::Simd);
        assert_eq!(parse_tier("auto"), KernelTier::Auto);
        assert_eq!(parse_tier(""), KernelTier::Auto);
        assert_eq!(parse_tier("bogus"), KernelTier::Auto);
    }

    #[test]
    fn override_round_trips() {
        // Serialized with other override users by being the only test in
        // this binary that sets it; always restores the default.
        for t in [
            KernelTier::Scalar,
            KernelTier::Blocked,
            KernelTier::Simd,
            KernelTier::Auto,
        ] {
            set_kernel_override(Some(t));
            assert_eq!(tier(), t);
        }
        set_kernel_override(None);
    }
}
