//! Runtime correction plans: per-signature strategy selection with a
//! shared, keyed plan cache.
//!
//! The paper's Section 3.1/4 optimizations — constant-folded factor lists,
//! 0/1 lists as conditional adds, periodic lists stored once per period,
//! decay-truncated lists that let trailing chunks skip correction — were
//! previously applied only by `plr-codegen`'s CUDA emitter. This module
//! brings them to the CPU runtime: a [`CorrectionPlan`] analyses a
//! signature once ([`FactorPattern`] classification plus a conservative
//! [`StabilityReport::decay_length`] bound), derives the cheapest correction
//! strategy per factor list, and caches the result — factor tables,
//! truncation depth, kernel selection, chunk size — keyed by the exact
//! coefficient bits so every `Engine`, `ParallelRunner`, `BatchRunner` and
//! `RowStream` over the same signature shares one plan.
//!
//! # Soundness of decay truncation
//!
//! A plan only truncates its factor table when *both* of these hold:
//!
//! 1. The analytic bound says it may: root finding converged, the spectral
//!    radius is at least [`RADIUS_EPSILON`] inside the unit circle, and the
//!    multiplicity-aware [`StabilityReport::decay_length`] estimate is
//!    shorter than the chunk size.
//! 2. The generated table *proves* it: the last `k` entries of every factor
//!    list are exactly zero. Each factor entry is a linear combination of
//!    the `k` entries before it, so `k` consecutive exact zeros in every
//!    list force all later entries to be exactly zero under flush-to-zero
//!    generation. Truncation then drops only exact zeros — the planned
//!    correction is the dense correction minus additions of `0·carry`.
//!
//! If either check fails the plan falls back to the dense table. The
//! analytic estimate is therefore a *performance* hint; correctness rests
//! on the materialized zeros.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::analysis::{classify, FactorPattern};
use crate::blocked::SolveKernel;
use crate::element::Element;
use crate::kernel::{self, KernelTier};
use crate::nacci::{carries_of, CorrectionTable};
use crate::signature::Signature;
use crate::simd;
use crate::stability::{self, StabilityReport};

/// How close to the unit circle a spectral radius may be before the plan
/// builder refuses to trust the decay estimate (satellite of the paper's
/// truncation optimization: near-critical poles decay over horizons where
/// the pole-magnitude rounding error dominates the estimate).
pub const RADIUS_EPSILON: f64 = 1e-3;

/// Soft capacity of the shared plan cache; reaching it evicts everything
/// (plans are cheap to rebuild and real workloads hold a handful).
const CACHE_CAPACITY: usize = 256;

/// Whether a plan may specialize or must reproduce the dense path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlanMode {
    /// Pick the cheapest sound strategy per factor list.
    #[default]
    Auto,
    /// Force the dense correction path (full-length table, no per-list
    /// specialization). Used as the differential-testing and benchmarking
    /// baseline.
    Dense,
}

/// Summary of the correction strategy a plan selected, reported through
/// `RunStats` (one value per plan: the dominant strategy across the `k`
/// factor lists).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlanKind {
    /// No plan was consulted (default value in zeroed stats).
    #[default]
    Unplanned,
    /// Full-table dense correction (no exploitable structure, or the plan
    /// was forced dense with [`PlanMode::Dense`]).
    Dense,
    /// Every contributing list folds to a scalar (all-constant factors).
    ScalarFold,
    /// Contributing lists are 0/1 masks: multiplications became
    /// conditional adds.
    ConditionalAdd,
    /// Contributing lists are periodic: one period is read repeatedly.
    Periodic,
    /// Every list decays to exact zeros: corrections touch only a bounded
    /// prefix of each chunk and full-size chunks reset the carry chain.
    Truncated,
    /// Lists landed on different strategies.
    Mixed,
    /// The time-varying lowering ran: carries are per-chunk transition
    /// matrices composed from per-element companions, not factor lists
    /// (see [`crate::varying`]). No correction plan — and no plan cache
    /// entry — is involved.
    MatrixCarry,
}

/// What a plan is being built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanRequest {
    /// Logical chunk size the correction serves (chunks up to this length
    /// can be corrected; `0` for plans that never correct, e.g. whole-row
    /// batch dispatch that only needs the FIR + solve kernels).
    pub chunk_size: usize,
    /// Flush denormal factor values to zero during table generation.
    pub flush: bool,
    /// Require the physical factor table to span the full chunk size even
    /// when truncation would be sound (Phase 1 hierarchical doubling
    /// indexes the table at every merge width, so it needs all entries).
    pub full_table: bool,
    /// Strategy-selection mode.
    pub mode: PlanMode,
}

impl PlanRequest {
    /// A request with the given chunk size and the defaults the runtimes
    /// use: flush for floats, truncation allowed, [`PlanMode::Auto`].
    pub fn new<T: Element>(chunk_size: usize) -> Self {
        PlanRequest {
            chunk_size,
            flush: T::IS_FLOAT,
            full_table: false,
            mode: PlanMode::Auto,
        }
    }
}

/// A signature analysed once: per-list correction strategies, the (possibly
/// truncated) factor table, the FIR coefficients and the selected local
/// solve kernel.
///
/// Plans are immutable and shared (`Arc`) through the global cache; every
/// consumer — `Engine`, `ParallelRunner`, `BatchRunner`, `RowStream` — asks
/// [`plan_for`] and receives the same instance for the same key.
#[derive(Debug, Clone)]
pub struct CorrectionPlan<T> {
    signature: Signature<T>,
    fir: Vec<T>,
    solve: SolveKernel<T>,
    table: CorrectionTable<T>,
    strategies: Vec<FactorPattern<T>>,
    chunk_size: usize,
    /// Max nonzero-prefix length across lists when `tail_zero`; otherwise
    /// the chunk size.
    effective_len: usize,
    /// Every list is `AllZero` or `DecaysAfter`: all factors beyond
    /// `effective_len` are exactly zero.
    tail_zero: bool,
    /// The physical table is shorter than `chunk_size` (only with
    /// `tail_zero`, after the zero-tail proof).
    truncated: bool,
    kind: PlanKind,
    stability: Option<StabilityReport>,
}

impl<T: Element> CorrectionPlan<T> {
    /// Builds a plan without consulting the cache.
    pub fn build(signature: &Signature<T>, req: PlanRequest) -> Self {
        let (fir, recursive) = signature.split();
        let feedback: Vec<T> = recursive.feedback().to_vec();
        let solve = SolveKernel::select(&feedback);
        let k = feedback.len();
        let m = req.chunk_size;

        let stability = if T::IS_FLOAT && req.mode == PlanMode::Auto && m > 0 {
            Some(stability::analyze(&feedback))
        } else {
            None
        };
        // The analytic decay bound is only trusted when root finding
        // converged and the radius clears the epsilon guard; otherwise the
        // plan keeps the dense-length table (materialized zeros may still
        // be classified and skipped — they are exact).
        let trusted_decay = stability.as_ref().is_some_and(|s| {
            s.converged && s.is_stable() && s.spectral_radius <= 1.0 - RADIUS_EPSILON
        });

        let mut table = None;
        let mut truncated = false;
        if req.mode == PlanMode::Auto
            && !req.full_table
            && req.flush
            && trusted_decay
            && T::FLUSH_THRESHOLD > 0.0
        {
            if let Some(est) = stability
                .as_ref()
                .and_then(|s| s.decay_length(T::FLUSH_THRESHOLD))
            {
                // k extra entries carry the zero-tail proof.
                let phys = est + k;
                if phys < m {
                    let candidate = CorrectionTable::generate_with(&feedback, phys, true);
                    if tail_is_dead(&candidate, k) {
                        table = Some(candidate);
                        truncated = true;
                    }
                }
            }
        }
        let table =
            table.unwrap_or_else(|| CorrectionTable::generate_with(&feedback, m, req.flush));

        let strategies: Vec<FactorPattern<T>> = if req.mode == PlanMode::Dense {
            (0..k).map(|_| FactorPattern::Dense).collect()
        } else {
            (0..k)
                .map(|r| match classify(table.list(r)) {
                    // A decayed tail is only *acted on* (elements skipped,
                    // carries reset) when the analysis is trusted or the
                    // zeros are exact integer arithmetic; otherwise keep
                    // the dense loop over the materialized zeros.
                    FactorPattern::DecaysAfter { decay_len } if T::IS_FLOAT && !trusted_decay => {
                        debug_assert!(decay_len <= table.len());
                        FactorPattern::Dense
                    }
                    p => p,
                })
                .collect()
        };

        let tail_zero = !strategies.is_empty()
            && strategies.iter().all(|s| {
                matches!(
                    s,
                    FactorPattern::AllZero | FactorPattern::DecaysAfter { .. }
                )
            })
            && strategies
                .iter()
                .any(|s| matches!(s, FactorPattern::DecaysAfter { .. }));
        let effective_len = if tail_zero {
            strategies
                .iter()
                .map(|s| match s {
                    FactorPattern::DecaysAfter { decay_len } => *decay_len,
                    _ => 0,
                })
                .max()
                .unwrap_or(0)
        } else {
            m
        };
        let kind = if m == 0 {
            // Whole-row dispatch: the plan only carries the FIR and solve
            // kernels; no correction strategy exists to report.
            PlanKind::Unplanned
        } else if req.mode == PlanMode::Dense {
            PlanKind::Dense
        } else {
            summarize(&strategies, tail_zero)
        };
        debug_assert!(!truncated || tail_zero, "truncated table implies zero tail");

        CorrectionPlan {
            signature: signature.clone(),
            fir,
            solve,
            table,
            strategies,
            chunk_size: m,
            effective_len,
            tail_zero,
            truncated,
            kind,
            stability,
        }
    }

    /// The signature this plan serves.
    pub fn signature(&self) -> &Signature<T> {
        &self.signature
    }

    /// Feedforward (FIR) coefficients from the signature split.
    pub fn fir(&self) -> &[T] {
        &self.fir
    }

    /// The selected local-solve kernel (register-blocked when eligible).
    pub fn solve(&self) -> &SolveKernel<T> {
        &self.solve
    }

    /// The physical factor table (shorter than [`chunk_size`] for
    /// truncated plans).
    ///
    /// [`chunk_size`]: CorrectionPlan::chunk_size
    pub fn table(&self) -> &CorrectionTable<T> {
        &self.table
    }

    /// Per-list strategies (index 0 = distance-1 carry).
    pub fn strategies(&self) -> &[FactorPattern<T>] {
        &self.strategies
    }

    /// The recurrence order `k`.
    pub fn order(&self) -> usize {
        self.table.order()
    }

    /// Logical chunk size the plan serves.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Dominant strategy summary, as reported in run statistics.
    pub fn kind(&self) -> PlanKind {
        self.kind
    }

    /// Stability analysis, when one was performed (floats, auto mode).
    pub fn stability(&self) -> Option<&StabilityReport> {
        self.stability.as_ref()
    }

    /// `true` when all factor lists are exactly zero beyond
    /// [`effective_len`](CorrectionPlan::effective_len).
    pub fn tail_zero(&self) -> bool {
        self.tail_zero
    }

    /// `true` when the physical table was truncated below the chunk size.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Number of leading chunk elements a correction can touch (equals the
    /// chunk size for plans without a zero tail).
    pub fn effective_len(&self) -> usize {
        self.effective_len
    }

    /// Elements actually touched when correcting one full-size chunk — the
    /// per-chunk look-back work the plan buys down (reported in stats).
    pub fn correction_taps(&self) -> usize {
        self.strategies
            .iter()
            .map(|s| match s {
                FactorPattern::AllZero => 0,
                FactorPattern::DecaysAfter { decay_len } => (*decay_len).min(self.chunk_size),
                _ => self.chunk_size,
            })
            .max()
            .unwrap_or(0)
    }

    /// `true` when a chunk of `chunk_len` elements *resets* the carry
    /// chain: every factor its tail would be scaled by is exactly zero, so
    /// the chunk's global carries equal its local carries no matter what
    /// preceded it. Look-back then never walks past one chunk and the
    /// sequential fix-up chain becomes a copy.
    pub fn resets_carries(&self, chunk_len: usize) -> bool {
        self.tail_zero && chunk_len >= self.effective_len + self.order()
    }

    /// Planned equivalent of [`CorrectionTable::correct_chunk`]: adds
    /// `list(r)[i]·carries[r]` to `chunk[i]`, using each list's strategy.
    ///
    /// Produces bit-identical results to the dense path for integers, and
    /// differs for floats only by skipping additions of exact-zero terms
    /// (which can flip `-0.0` to `+0.0` in the dense path).
    ///
    /// # Panics
    ///
    /// Panics if `chunk.len()` exceeds the plan's chunk size.
    pub fn correct_chunk(&self, chunk: &mut [T], carries: &[T]) {
        assert!(
            chunk.len() <= self.chunk_size,
            "chunk of {} exceeds plan chunk size {}",
            chunk.len(),
            self.chunk_size
        );
        for (r, &carry) in carries.iter().enumerate().take(self.order()) {
            if carry.is_zero() {
                continue;
            }
            match &self.strategies[r] {
                FactorPattern::AllZero => {}
                FactorPattern::Constant(c) => {
                    // list[i].mul(carry) with list[i] == c for every i:
                    // fold the multiply out of the loop (same value, same
                    // rounding — one multiplication instead of n).
                    let f = c.mul(carry);
                    for v in chunk.iter_mut() {
                        *v = v.add(f);
                    }
                }
                FactorPattern::ZeroOne(mask) => {
                    debug_assert!(mask.len() >= chunk.len());
                    for (v, &one) in chunk.iter_mut().zip(mask) {
                        if one {
                            *v = v.add(carry);
                        }
                    }
                }
                FactorPattern::Periodic { period } => {
                    let pat = &self.table.list(r)[..*period];
                    for block in chunk.chunks_mut(*period) {
                        for (v, &f) in block.iter_mut().zip(pat) {
                            *v = v.add(f.mul(carry));
                        }
                    }
                }
                FactorPattern::DecaysAfter { decay_len } => {
                    let lim = (*decay_len).min(chunk.len());
                    let list = &self.table.list(r)[..lim];
                    // Truncated tail: the vector fold when the tier and
                    // CPU allow it, the scalar fold otherwise.
                    if !simd::axpy_in_place(&mut chunk[..lim], list, carry) {
                        for (v, &f) in chunk[..lim].iter_mut().zip(list) {
                            *v = v.add(f.mul(carry));
                        }
                    }
                }
                FactorPattern::Dense => {
                    let list = self.table.list(r);
                    debug_assert!(list.len() >= chunk.len());
                    if !simd::axpy_in_place(chunk, list, carry) {
                        for (v, &f) in chunk.iter_mut().zip(list) {
                            *v = v.add(f.mul(carry));
                        }
                    }
                }
            }
        }
    }

    /// Planned equivalent of [`CorrectionTable::fixup_carries`], safe for
    /// truncated physical tables: factor indices beyond the table are
    /// exactly zero and contribute nothing.
    ///
    /// # Panics
    ///
    /// Mirrors the dense fix-up: panics if `chunk_len` is zero or exceeds
    /// the plan chunk size, `local` is longer than `chunk_len`, or
    /// `global_prev` holds more carries than the order.
    pub fn fixup_carries(&self, global_prev: &[T], local: &[T], chunk_len: usize) -> Vec<T> {
        assert!(chunk_len >= 1 && chunk_len <= self.chunk_size && local.len() <= chunk_len);
        assert!(
            global_prev.len() <= self.order(),
            "{} predecessor carries exceed the recurrence order {}",
            global_prev.len(),
            self.order()
        );
        let phys = self.table.len();
        let mut out = Vec::with_capacity(local.len());
        for (s, &l) in local.iter().enumerate() {
            let i = chunk_len - 1 - s;
            let mut acc = l;
            if i < phys {
                for (r, &g) in global_prev.iter().enumerate() {
                    acc = acc.add(self.table.list(r)[i].mul(g));
                }
            }
            out.push(acc);
        }
        out
    }

    /// Planned equivalent of `phase2::propagate_sequential` over chunks of
    /// the plan's chunk size.
    ///
    /// # Panics
    ///
    /// Panics if the plan's chunk size is zero.
    pub fn propagate_sequential(&self, data: &mut [T]) {
        let m = self.chunk_size;
        assert!(m > 0, "cannot propagate with chunk size zero");
        let k = self.order();
        let n = data.len();
        let mut start = m;
        while start < n {
            let end = (start + m).min(n);
            let (prev, rest) = data.split_at_mut(start);
            let carries = carries_of(prev, k);
            self.correct_chunk(&mut rest[..end - start], &carries);
            start += m;
        }
    }

    /// Planned equivalent of `phase2::propagate_decoupled`. Returns
    /// `(hops, resets)`: fix-up hops performed and hops short-circuited
    /// because the predecessor chunk reset the carry chain.
    ///
    /// # Panics
    ///
    /// Panics if the chunk size is zero or smaller than the order.
    pub fn propagate_decoupled(&self, data: &mut [T]) -> (usize, usize) {
        let m = self.chunk_size;
        assert!(m > 0, "cannot propagate with chunk size zero");
        assert!(
            m >= self.order(),
            "decoupled look-back requires chunk size >= order"
        );
        let k = self.order();
        let n = data.len();
        if n <= m {
            return (0, 0);
        }
        let num_chunks = n.div_ceil(m);

        let local_carries: Vec<Vec<T>> = (0..num_chunks)
            .map(|c| {
                let start = c * m;
                let end = (start + m).min(n);
                carries_of(&data[start..end], k)
            })
            .collect();

        let mut hops = 0;
        let mut resets = 0;
        let mut global_carries: Vec<Vec<T>> = Vec::with_capacity(num_chunks);
        global_carries.push(local_carries[0].clone());
        for c in 1..num_chunks {
            let chunk_len = ((c * m + m).min(n)) - c * m;
            // The carries being fixed are chunk c's; the reset predicate
            // therefore keys on chunk c's own length (its tail factors).
            if self.resets_carries(chunk_len) {
                resets += 1;
                global_carries.push(local_carries[c].clone());
            } else {
                hops += 1;
                let fixed =
                    self.fixup_carries(&global_carries[c - 1], &local_carries[c], chunk_len);
                global_carries.push(fixed);
            }
        }

        for c in 1..num_chunks {
            let start = c * m;
            let end = (start + m).min(n);
            self.correct_chunk(&mut data[start..end], &global_carries[c - 1]);
        }
        (hops, resets)
    }
}

/// `true` when the last `k` entries of every factor list are exactly zero
/// — the proof obligation for truncating the table (see module docs).
fn tail_is_dead<T: Element>(table: &CorrectionTable<T>, k: usize) -> bool {
    table.len() > k
        && (0..table.order()).all(|r| {
            let list = table.list(r);
            list[list.len() - k..].iter().all(|f| f.is_zero())
        })
}

/// Collapses per-list strategies into the reported [`PlanKind`].
fn summarize<T: Element>(strategies: &[FactorPattern<T>], tail_zero: bool) -> PlanKind {
    if tail_zero {
        return PlanKind::Truncated;
    }
    let mut kind: Option<PlanKind> = None;
    for s in strategies {
        let k = match s {
            FactorPattern::AllZero => continue,
            FactorPattern::Constant(_) => PlanKind::ScalarFold,
            FactorPattern::ZeroOne(_) => PlanKind::ConditionalAdd,
            FactorPattern::Periodic { .. } => PlanKind::Periodic,
            FactorPattern::DecaysAfter { .. } => PlanKind::Truncated,
            FactorPattern::Dense => PlanKind::Dense,
        };
        kind = match kind {
            None => Some(k),
            Some(prev) if prev == k => Some(k),
            Some(_) => return PlanKind::Mixed,
        };
    }
    kind.unwrap_or(PlanKind::Dense)
}

/// Cache key: exact coefficient bits (via [`Element::key_bits`]) plus every
/// request knob that changes the built plan. The feedforward coefficients
/// are part of the key even though they do not affect the factor table —
/// the plan carries the FIR kernel, so two signatures differing only in
/// feedforward must not share a plan. The effective kernel tier is part
/// of the key for the same reason: the plan bakes in the selected solve
/// kernel, so flipping the `PLR_KERNEL` override must never serve a
/// plan built under a different tier.
#[derive(Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    type_id: TypeId,
    feedforward: Vec<u64>,
    feedback: Vec<u64>,
    chunk_size: usize,
    flush: bool,
    full_table: bool,
    mode: PlanMode,
    tier: KernelTier,
}

type CacheMap = HashMap<PlanKey, Arc<dyn Any + Send + Sync>>;

static CACHE: OnceLock<Mutex<CacheMap>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
/// 0 = follow the `PLR_PLAN_CACHE` environment variable, 1 = force on,
/// 2 = force off.
static CACHE_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static ENV_ENABLED: OnceLock<bool> = OnceLock::new();

fn cache_enabled() -> bool {
    match CACHE_OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => *ENV_ENABLED.get_or_init(|| {
            !matches!(
                std::env::var("PLR_PLAN_CACHE").as_deref(),
                Ok("0") | Ok("off") | Ok("OFF") | Ok("false")
            )
        }),
    }
}

/// Programmatically force plan-cache sharing on or off (`None` reverts to
/// the `PLR_PLAN_CACHE` environment default). With the cache off every
/// [`plan_for`] call builds a private plan and counts as a miss.
pub fn set_cache_enabled(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    CACHE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Returns (and does not reset) the process-wide cache hit/miss counters.
pub fn cache_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Number of plans currently cached.
pub fn cache_len() -> usize {
    CACHE
        .get()
        .map_or(0, |m| m.lock().expect("plan cache poisoned").len())
}

/// Drops every cached plan (outstanding `Arc`s stay valid).
pub fn clear_cache() {
    if let Some(m) = CACHE.get() {
        m.lock().expect("plan cache poisoned").clear();
    }
}

/// Fetches (or builds and caches) the plan for a signature. The second
/// element reports whether the plan came from the cache.
pub fn plan_for<T: Element>(
    signature: &Signature<T>,
    req: PlanRequest,
) -> (Arc<CorrectionPlan<T>>, bool) {
    if !cache_enabled() {
        MISSES.fetch_add(1, Ordering::Relaxed);
        return (Arc::new(CorrectionPlan::build(signature, req)), false);
    }
    let key = PlanKey {
        type_id: TypeId::of::<T>(),
        feedforward: signature
            .feedforward()
            .iter()
            .map(|c| c.key_bits())
            .collect(),
        feedback: signature.feedback().iter().map(|c| c.key_bits()).collect(),
        chunk_size: req.chunk_size,
        flush: req.flush,
        full_table: req.full_table,
        mode: req.mode,
        tier: kernel::tier(),
    };
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache
        .lock()
        .expect("plan cache poisoned")
        .get(&key)
        .cloned()
    {
        if let Ok(plan) = hit.downcast::<CorrectionPlan<T>>() {
            HITS.fetch_add(1, Ordering::Relaxed);
            return (plan, true);
        }
    }
    // Build outside the lock: plans can take O(k²·chunk) to generate and a
    // racing builder producing a duplicate is harmless (last insert wins).
    let plan = Arc::new(CorrectionPlan::build(signature, req));
    let mut guard = cache.lock().expect("plan cache poisoned");
    if guard.len() >= CACHE_CAPACITY {
        guard.clear();
    }
    guard.insert(key, plan.clone());
    MISSES.fetch_add(1, Ordering::Relaxed);
    (plan, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;

    fn sig<T: Element>(text: &str) -> Signature<T> {
        text.parse()
            .unwrap_or_else(|_| panic!("bad signature {text}"))
    }

    fn auto_plan<T: Element>(text: &str, m: usize) -> CorrectionPlan<T> {
        CorrectionPlan::build(&sig::<T>(text), PlanRequest::new::<T>(m))
    }

    #[test]
    fn prefix_sum_folds_to_scalar() {
        let p = auto_plan::<i64>("1:1", 64);
        assert_eq!(p.kind(), PlanKind::ScalarFold);
        assert_eq!(p.correction_taps(), 64);
        assert!(!p.tail_zero());
    }

    #[test]
    fn tuple_prefix_sum_is_conditional_add() {
        let p = auto_plan::<i64>("1:0,1", 64);
        assert_eq!(p.kind(), PlanKind::ConditionalAdd);
    }

    #[test]
    fn alternating_sign_is_periodic() {
        // (1: -1): factors -1, 1, -1, 1, … — periodic, not zero/one.
        let p = auto_plan::<i64>("1:-1", 64);
        assert_eq!(p.kind(), PlanKind::Periodic);
    }

    #[test]
    fn higher_order_prefix_sum_stays_dense() {
        let p = auto_plan::<i64>("1:2,-1", 64);
        assert_eq!(p.kind(), PlanKind::Dense);
        assert_eq!(p.table().len(), 64);
    }

    #[test]
    fn stable_filter_truncates_f32() {
        let p = auto_plan::<f32>("0.2:0.8", 4096);
        assert_eq!(p.kind(), PlanKind::Truncated);
        assert!(p.is_truncated(), "physical table should be short");
        assert!(p.table().len() < 4096);
        assert!(p.effective_len() < 500);
        assert!(p.correction_taps() < 500);
        assert!(p.resets_carries(4096));
        assert!(!p.resets_carries(p.effective_len()));
    }

    #[test]
    fn stable_filter_truncates_f64_at_large_chunks() {
        // 0.8ⁿ underflows f64 near n ≈ 3540 < 8192.
        let p = auto_plan::<f64>("0.2:0.8", 8192);
        assert_eq!(p.kind(), PlanKind::Truncated);
        assert!(p.is_truncated());
        assert!(p.effective_len() < 4200);
    }

    #[test]
    fn repeated_pole_truncation_is_covered() {
        // Double pole at 0.8: the naive radius-only estimate undershoots;
        // the plan's conservative bound plus zero-tail proof must hold.
        let p = auto_plan::<f32>("1:1.6,-0.64", 4096);
        assert_eq!(p.kind(), PlanKind::Truncated);
        let table = p.table();
        let k = p.order();
        for r in 0..k {
            assert!(table.list(r)[table.len() - k..].iter().all(|&f| f == 0.0));
        }
    }

    #[test]
    fn dense_mode_forces_full_table() {
        let req = PlanRequest {
            mode: PlanMode::Dense,
            ..PlanRequest::new::<f32>(4096)
        };
        let p = CorrectionPlan::build(&sig::<f32>("0.2:0.8"), req);
        assert_eq!(p.kind(), PlanKind::Dense);
        assert!(!p.is_truncated());
        assert_eq!(p.table().len(), 4096);
        assert!(!p.resets_carries(4096));
    }

    #[test]
    fn full_table_request_blocks_truncation() {
        let req = PlanRequest {
            full_table: true,
            ..PlanRequest::new::<f32>(4096)
        };
        let p = CorrectionPlan::build(&sig::<f32>("0.2:0.8"), req);
        assert_eq!(p.table().len(), 4096);
        // Still classified and skippable — just not physically truncated.
        assert_eq!(p.kind(), PlanKind::Truncated);
        assert!(p.tail_zero());
    }

    #[test]
    fn non_converged_analysis_forces_dense() {
        let mut p = auto_plan::<f32>("0.2:0.8", 4096);
        // Simulate an untrusted analysis by rebuilding with the knob the
        // builder keys on: a radius inside the epsilon guard.
        assert!(p.stability().is_some());
        p = CorrectionPlan::build(&sig::<f32>("0.2:0.999999"), PlanRequest::new::<f32>(4096));
        assert!(!p.is_truncated());
    }

    #[test]
    fn planned_corrections_match_dense_for_ints() {
        for text in ["1:1", "1:0,1", "1:-1", "1:2,-1", "1:0,0,1", "1:3,-3,1"] {
            let s = sig::<i64>(text);
            let m = 16;
            let plan = CorrectionPlan::build(&s, PlanRequest::new::<i64>(m));
            let input: Vec<i64> = (0..137)
                .map(|i| ((i * 2654435761u64 % 19) as i64) - 9)
                .collect();
            let expect = serial::run(&s, &input);
            let mut data = input.clone();
            for chunk in data.chunks_mut(m) {
                plan.solve().solve_in_place(chunk);
            }
            let mut seq = data.clone();
            plan.propagate_sequential(&mut seq);
            assert_eq!(seq, expect, "sequential {text}");
            let mut dec = data.clone();
            plan.propagate_decoupled(&mut dec);
            assert_eq!(dec, expect, "decoupled {text}");
        }
    }

    #[test]
    fn truncated_propagation_matches_dense_propagation() {
        let s = sig::<f32>("1:0.8");
        let m = 1024;
        let plan = CorrectionPlan::build(&s, PlanRequest::new::<f32>(m));
        assert!(plan.is_truncated());
        let dense = CorrectionPlan::build(
            &s,
            PlanRequest {
                mode: PlanMode::Dense,
                ..PlanRequest::new::<f32>(m)
            },
        );
        let input: Vec<f32> = (0..5000).map(|i| ((i % 23) as f32) * 0.5 - 5.0).collect();
        let mut a = input.clone();
        let mut b = input.clone();
        for chunk in a.chunks_mut(m) {
            plan.solve().solve_in_place(chunk);
        }
        b.copy_from_slice(&a);
        let (hops, resets) = plan.propagate_decoupled(&mut a);
        dense.propagate_sequential(&mut b);
        assert!(resets > 0, "full-size chunks must reset the carry chain");
        assert!(hops <= 1, "only the ragged tail may hop, got {hops}");
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(x.approx_eq(*y, 1e-5), "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn fixup_handles_truncated_tables() {
        let s = sig::<f32>("1:0.8");
        let plan = CorrectionPlan::build(&s, PlanRequest::new::<f32>(2048));
        assert!(plan.is_truncated());
        // Far past the decay: global carries equal locals.
        let fixed = plan.fixup_carries(&[123.0], &[7.5], 2048);
        assert_eq!(fixed, vec![7.5]);
        // Inside the decay the factor still applies, matching the table.
        let i = 2; // factor 0.8³ at index 2
        let fixed = plan.fixup_carries(&[1.0], &[0.0], i + 1);
        assert!(fixed[0].approx_eq(plan.table().list(0)[i], 1e-6));
    }

    #[test]
    fn cache_shares_and_keys_on_feedforward() {
        clear_cache();
        set_cache_enabled(Some(true));
        let a = sig::<f32>("1:0.8");
        let b = sig::<f32>("0.2:0.8"); // same feedback, different FIR
        let req = PlanRequest::new::<f32>(1024);
        let (p1, hit1) = plan_for(&a, req);
        let (p2, hit2) = plan_for(&a, req);
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&p1, &p2));
        let (p3, hit3) = plan_for(&b, req);
        assert!(!hit3, "feedforward must be part of the cache key");
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(p3.fir(), &[0.2f32]);
        // Different chunk size → different plan.
        let (p4, hit4) = plan_for(&a, PlanRequest::new::<f32>(2048));
        assert!(!hit4);
        assert_eq!(p4.chunk_size(), 2048);
        set_cache_enabled(None);
    }

    #[test]
    fn cache_disable_builds_private_plans() {
        set_cache_enabled(Some(false));
        let s = sig::<i32>("1:1");
        let (p1, h1) = plan_for(&s, PlanRequest::new::<i32>(64));
        let (p2, h2) = plan_for(&s, PlanRequest::new::<i32>(64));
        assert!(!h1 && !h2);
        assert!(!Arc::ptr_eq(&p1, &p2));
        set_cache_enabled(None);
    }

    #[test]
    fn zero_chunk_plan_for_whole_row_dispatch() {
        let s = sig::<f64>("0.2:0.8");
        let p = CorrectionPlan::build(&s, PlanRequest::new::<f64>(0));
        assert_eq!(p.chunk_size(), 0);
        assert_eq!(p.fir(), &[0.2f64]);
        assert_eq!(p.table().len(), 0);
        assert_eq!(p.kind(), PlanKind::Unplanned);
    }
}
