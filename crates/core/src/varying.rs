//! Time-varying / affine recurrences lowered onto the chunk machinery.
//!
//! The constant-coefficient engines solve `y[i] = x[i] + Σ_j b_j·y[i-j]`
//! with one coefficient vector for the whole input. This module lifts the
//! same chunk/carry decomposition to **per-element** coefficients
//!
//! ```text
//! y[i] = x[i] + d[i] + Σ_{j=1..k} a_j[i] · y[i-j]
//! ```
//!
//! (the optional `d[i]` is the affine offset), the form selective
//! state-space models (Mamba-style gates, `k = 1`) and adaptive IIR
//! filters (`k = 2`) take.
//!
//! ## Carry algebra: from `k` scalars to a `k×k` matrix
//!
//! With constant coefficients a chunk's effect on the carry state is
//! captured by `k` n-nacci factor lists hoisted to plan time. With
//! varying coefficients the factors differ per element, but the state
//! vector `s[i] = (y[i], …, y[i-k+1])` still advances linearly:
//! `s[i] = C_i · s[i-1] + z[i]·e₀` where `C_i` is the companion matrix of
//! element `i`'s row and `z[i] = x[i] + d[i]`. Over a chunk spanning
//! `[t, t+L)` this composes to
//!
//! ```text
//! s_end = M_chunk · s_start + s_local,   M_chunk = C_{t+L-1} ··· C_t
//! ```
//!
//! with `s_local` the state the chunk produces from a zero start (its
//! *local* solve). `M_chunk` depends only on the coefficients — never the
//! input — so [`VaryingPlan::build`] hoists every chunk's transition
//! matrix to plan time via the incremental `O(k²)`-per-element
//! [`Matrix::companion_push`] product, exactly as the constant path
//! hoists its factor tables. At run time the carry chain is `k`-vector
//! fix-ups (`M·g + local`), and each chunk's per-element correction is a
//! forward companion pass (`O(k)` per element), not a matrix product.
//!
//! ## The affine term as a homogeneous block
//!
//! Folding the offset stream into the input (`z = x + d`) keeps the
//! lowering linear, and the chunk's *action on the carry* is then the
//! affine map `g ↦ M_chunk·g + s_local`. [`AffineMap`] is that algebra
//! made explicit: composition and application agree with embedding the
//! map as the `(k+1)×(k+1)` homogeneous block `[[M, b], [0, 1]]`
//! ([`AffineMap::to_homogeneous`]), which is how the affine term rides
//! the same associative machinery — the offset column is just the last
//! column of the homogeneous matrix.
//!
//! ## Fast paths
//!
//! * **Order-1 fused scan** (the Mamba case): the state is one scalar, so
//!   the local solve is the tight loop `y[i] = a[i]·prev + z[i]` and the
//!   correction is `v *= a[i]; y[i] += v` — no matrix machinery at all.
//! * **Constant chunks**: a chunk whose coefficient rows are all equal is
//!   a constant-coefficient solve, so the plan selects a register-blocked
//!   / SIMD [`SolveKernel`] for it directly (no [`crate::plan`] involved
//!   — varying signatures never touch the correction-plan cache) and its
//!   transition matrix collapses to a companion power.

use std::sync::Arc;

use crate::blocked::{SolveKernel, MAX_BLOCKED_ORDER, SOLVE_SLICE};
use crate::companion::Matrix;
use crate::element::Element;
use crate::engine::{CarryPropagation, EngineConfig, MAX_INPUT_LEN};
use crate::error::EngineError;
use crate::kernel::KernelKind;

/// Cap on distinct per-chunk constant-row kernels one plan will build;
/// chunks beyond it fall back to the scalar varying loop. Real workloads
/// with constant stretches use one or two distinct rows.
const MAX_DISTINCT_KERNELS: usize = 16;

/// A time-varying (and optionally affine) recurrence of order `k`, bound
/// to a fixed input length: one `k`-coefficient feedback row per element,
/// plus an optional per-element offset stream.
///
/// Cloning is cheap — the coefficient and offset streams are shared.
#[derive(Debug, Clone)]
pub struct VaryingSignature<T> {
    order: usize,
    len: usize,
    /// Row-major: `coeffs[i·k + (j-1)]` is `a_j[i]`, the weight of
    /// `y[i-j]` when producing `y[i]`.
    coeffs: Arc<[T]>,
    offsets: Option<Arc<[T]>>,
}

impl<T: Element> VaryingSignature<T> {
    /// Builds an order-`k` varying signature from row-major coefficients
    /// (`coeffs[i·k + (j-1)] = a_j[i]`); the bound length is
    /// `coeffs.len() / order`.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnsupportedSignature`] when `order == 0` or
    /// `coeffs.len()` is not a multiple of `order`.
    pub fn new(order: usize, coeffs: Vec<T>) -> Result<Self, EngineError> {
        if order == 0 {
            return Err(EngineError::UnsupportedSignature {
                reason: "varying signatures need order >= 1".into(),
            });
        }
        if !coeffs.len().is_multiple_of(order) {
            return Err(EngineError::UnsupportedSignature {
                reason: format!(
                    "coefficient stream of {} values is not a whole number of order-{order} rows",
                    coeffs.len()
                ),
            });
        }
        let len = coeffs.len() / order;
        Ok(VaryingSignature {
            order,
            len,
            coeffs: coeffs.into(),
            offsets: None,
        })
    }

    /// The order-1 convenience form: `y[i] = gates[i]·y[i-1] + x[i]`, the
    /// selective-scan shape.
    ///
    /// # Errors
    ///
    /// Never fails for order 1; the `Result` mirrors [`Self::new`].
    pub fn first_order(gates: Vec<T>) -> Result<Self, EngineError> {
        Self::new(1, gates)
    }

    /// Attaches a per-element affine offset stream `d` (the recurrence
    /// gains a `+ d[i]` term).
    ///
    /// # Errors
    ///
    /// [`EngineError::LengthMismatch`] when `offsets.len()` differs from
    /// the signature's bound length.
    pub fn with_offsets(mut self, offsets: Vec<T>) -> Result<Self, EngineError> {
        if offsets.len() != self.len {
            return Err(EngineError::LengthMismatch {
                expected: self.len,
                got: offsets.len(),
            });
        }
        self.offsets = Some(offsets.into());
        Ok(self)
    }

    /// The recurrence order `k`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The input length this signature is bound to.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bound length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The full row-major coefficient stream.
    pub fn coeffs(&self) -> &[T] {
        &self.coeffs
    }

    /// Element `i`'s feedback row (`k` coefficients, lag 1 first).
    pub fn row(&self, i: usize) -> &[T] {
        &self.coeffs[i * self.order..(i + 1) * self.order]
    }

    /// The affine offset stream, if one is attached.
    pub fn offsets(&self) -> Option<&[T]> {
        self.offsets.as_deref()
    }

    /// When every row in `[start, end)` is identical, that row.
    pub fn constant_row_in(&self, start: usize, end: usize) -> Option<&[T]> {
        let first = self.row(start);
        for i in start + 1..end {
            if self.row(i) != first {
                return None;
            }
        }
        Some(first)
    }
}

/// The naive serial evaluator — the differential-testing oracle and the
/// benchmark baseline. Deliberately the obvious loop: per-element row
/// slicing, bounds-checked taps, no specialization.
///
/// # Errors
///
/// [`EngineError::LengthMismatch`] when `input.len()` differs from the
/// signature's bound length.
pub fn reference<T: Element>(
    sig: &VaryingSignature<T>,
    input: &[T],
) -> Result<Vec<T>, EngineError> {
    if input.len() != sig.len() {
        return Err(EngineError::LengthMismatch {
            expected: sig.len(),
            got: input.len(),
        });
    }
    let mut out = input.to_vec();
    for i in 0..out.len() {
        let mut acc = out[i];
        if let Some(d) = sig.offsets() {
            acc = acc.add(d[i]);
        }
        for (j, &a) in sig.row(i).iter().enumerate() {
            if i > j {
                acc = acc.add(a.mul(out[i - 1 - j]));
            }
        }
        out[i] = acc;
    }
    Ok(out)
}

/// An affine map `v ↦ M·v + b` on carry states — a chunk's action on the
/// incoming carry in the time-varying lowering.
///
/// Composition is associative and agrees with multiplying the homogeneous
/// `(k+1)×(k+1)` embeddings `[[M, b], [0, 1]]`; see
/// [`AffineMap::to_homogeneous`].
#[derive(Debug, Clone, PartialEq)]
pub struct AffineMap<T> {
    matrix: Matrix<T>,
    offset: Vec<T>,
}

impl<T: Element> AffineMap<T> {
    /// Builds the map `v ↦ matrix·v + offset`.
    ///
    /// # Panics
    ///
    /// Panics when the offset length differs from the matrix dimension.
    pub fn new(matrix: Matrix<T>, offset: Vec<T>) -> Self {
        assert_eq!(matrix.dim(), offset.len(), "dimension mismatch");
        AffineMap { matrix, offset }
    }

    /// The identity map of dimension `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn identity(k: usize) -> Self {
        AffineMap {
            matrix: Matrix::identity(k),
            offset: vec![T::zero(); k],
        }
    }

    /// The state dimension `k`.
    pub fn dim(&self) -> usize {
        self.matrix.dim()
    }

    /// The linear part.
    pub fn matrix(&self) -> &Matrix<T> {
        &self.matrix
    }

    /// The translation part.
    pub fn offset(&self) -> &[T] {
        &self.offset
    }

    /// Applies the map: `matrix·v + offset`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply(&self, v: &[T]) -> Vec<T> {
        let mut out = self.matrix.apply(v);
        for (o, &b) in out.iter_mut().zip(&self.offset) {
            *o = o.add(b);
        }
        out
    }

    /// Sequential composition: the map that applies `self` first, then
    /// `later` (`later ∘ self`): matrix `M₂M₁`, offset `M₂b₁ + b₂`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn then(&self, later: &AffineMap<T>) -> AffineMap<T> {
        let matrix = later.matrix.mul(&self.matrix);
        let mut offset = later.matrix.apply(&self.offset);
        for (o, &b) in offset.iter_mut().zip(&later.offset) {
            *o = o.add(b);
        }
        AffineMap { matrix, offset }
    }

    /// The `(k+1)×(k+1)` homogeneous embedding `[[M, b], [0, 1]]`:
    /// composing affine maps is multiplying these blocks, and applying
    /// one is multiplying against `(v, 1)`.
    pub fn to_homogeneous(&self) -> Matrix<T> {
        let k = self.dim();
        let h = k + 1;
        let mut data = vec![T::zero(); h * h];
        for i in 0..k {
            for j in 0..k {
                data[i * h + j] = self.matrix.get(i, j);
            }
            data[i * h + k] = self.offset[i];
        }
        data[k * h + k] = T::one();
        Matrix::from_parts(h, data)
    }
}

/// The state after running `chunk` from `prev`: the chunk's last
/// `min(k, len)` outputs (most recent first), back-filled from `prev` when
/// the chunk is shorter than the order.
pub fn advance_state<T: Element>(prev: &[T], chunk: &[T], k: usize) -> Vec<T> {
    let take = k.min(chunk.len());
    let mut state: Vec<T> = chunk.iter().rev().take(take).copied().collect();
    state.extend_from_slice(&prev[..k - take]);
    state
}

/// Solves the varying recurrence over `data` in place, continuing from
/// `state` (`state[0]` is the value just before `data[0]`, `k` entries;
/// zeros for a cold start). `start` is `data[0]`'s global index into the
/// signature.
fn solve_span<T: Element>(sig: &VaryingSignature<T>, start: usize, state: &[T], data: &mut [T]) {
    let k = sig.order();
    if k == 1 {
        // The order-1 fused scan fast path: one scalar of state.
        let a = sig.coeffs();
        let mut prev = state[0];
        match sig.offsets() {
            Some(d) => {
                for (i, y) in data.iter_mut().enumerate() {
                    let gi = start + i;
                    prev = y.add(d[gi]).add(a[gi].mul(prev));
                    *y = prev;
                }
            }
            None => {
                for (i, y) in data.iter_mut().enumerate() {
                    prev = y.add(a[start + i].mul(prev));
                    *y = prev;
                }
            }
        }
        return;
    }
    let head = k.min(data.len());
    for i in 0..head {
        let gi = start + i;
        let mut acc = data[i];
        if let Some(d) = sig.offsets() {
            acc = acc.add(d[gi]);
        }
        for (j, &a) in sig.row(gi).iter().enumerate() {
            let v = if j < i { data[i - 1 - j] } else { state[j - i] };
            acc = acc.add(a.mul(v));
        }
        data[i] = acc;
    }
    for i in head..data.len() {
        let gi = start + i;
        let mut acc = data[i];
        if let Some(d) = sig.offsets() {
            acc = acc.add(d[gi]);
        }
        for (j, &a) in sig.row(gi).iter().enumerate() {
            acc = acc.add(a.mul(data[i - 1 - j]));
        }
        data[i] = acc;
    }
}

/// Outcome of [`VaryingPlan::solve_chunk`].
#[derive(Debug, Clone, PartialEq)]
pub struct VaryingSolve<T> {
    /// `false` when the poll callback stopped the solve early (solved
    /// prefix, untouched remainder — mirrors
    /// [`crate::blocked::SlicedSolve`]).
    pub completed: bool,
    /// Poll slices processed.
    pub slices: u64,
    /// Which kernel class solved this chunk: a constant-row
    /// blocked/SIMD/scalar kernel, or [`KernelKind::Scalar`] for the
    /// varying loop.
    pub kernel: KernelKind,
    /// The carry state after the chunk (meaningless when
    /// `completed == false`).
    pub state: Vec<T>,
}

/// Per-chunk geometry of a [`VaryingSignature`], with everything that
/// depends only on the coefficients hoisted out of the run path: the
/// chunk transition matrices (the generalized carries) and, for chunks
/// whose rows are all equal, a constant-coefficient [`SolveKernel`].
///
/// Kernels are selected directly — a varying plan never consults (or
/// populates) the constant path's correction-plan cache.
#[derive(Debug)]
pub struct VaryingPlan<T> {
    sig: VaryingSignature<T>,
    chunk_size: usize,
    matrices: Vec<Matrix<T>>,
    kernels: Vec<SolveKernel<T>>,
    chunk_kernel: Vec<Option<u16>>,
}

impl<T: Element> VaryingPlan<T> {
    /// Builds the plan: classifies every chunk (constant rows → kernel)
    /// and composes every chunk's transition matrix.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidChunkSize`] when `chunk_size` is zero or
    /// smaller than the order; [`EngineError::InputTooLarge`] when the
    /// signature's bound length exceeds [`MAX_INPUT_LEN`].
    pub fn build(sig: VaryingSignature<T>, chunk_size: usize) -> Result<Self, EngineError> {
        if chunk_size == 0 || chunk_size < sig.order() {
            return Err(EngineError::InvalidChunkSize { chunk_size });
        }
        if sig.len() > MAX_INPUT_LEN {
            return Err(EngineError::InputTooLarge {
                len: sig.len(),
                max: MAX_INPUT_LEN,
            });
        }
        let k = sig.order();
        let n = sig.len();
        let m = chunk_size;
        let num_chunks = n.div_ceil(m);
        let mut matrices = Vec::with_capacity(num_chunks);
        let mut kernels: Vec<SolveKernel<T>> = Vec::new();
        let mut chunk_kernel = Vec::with_capacity(num_chunks);
        for c in 0..num_chunks {
            let start = c * m;
            let len = m.min(n - start);
            let constant = sig.constant_row_in(start, start + len);
            let kernel = match constant {
                Some(row) if T::BLOCKABLE && k <= MAX_BLOCKED_ORDER => {
                    match kernels.iter().position(|kn| kn.feedback() == row) {
                        Some(i) => Some(i as u16),
                        None if kernels.len() < MAX_DISTINCT_KERNELS => {
                            kernels.push(SolveKernel::select(row));
                            Some((kernels.len() - 1) as u16)
                        }
                        None => None,
                    }
                }
                _ => None,
            };
            chunk_kernel.push(kernel);
            let matrix = match constant {
                // A constant chunk's transition is a companion power.
                Some(row) => Matrix::companion(row).pow(len as u64),
                None => {
                    let mut mtx = Matrix::identity(k);
                    for i in start..start + len {
                        mtx.companion_push(sig.row(i));
                    }
                    mtx
                }
            };
            matrices.push(matrix);
        }
        Ok(VaryingPlan {
            sig,
            chunk_size,
            matrices,
            kernels,
            chunk_kernel,
        })
    }

    /// The signature this plan lowers.
    pub fn signature(&self) -> &VaryingSignature<T> {
        &self.sig
    }

    /// The recurrence order `k`.
    pub fn order(&self) -> usize {
        self.sig.order()
    }

    /// The bound input length.
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// Whether the bound length is zero.
    pub fn is_empty(&self) -> bool {
        self.sig.is_empty()
    }

    /// The chunk size the matrices were composed for.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.matrices.len()
    }

    /// Chunk `c`'s precomputed transition matrix `M_c`.
    pub fn matrix(&self, c: usize) -> &Matrix<T> {
        &self.matrices[c]
    }

    /// The kernel class chunk `c`'s local solve dispatches to.
    pub fn chunk_kernel_kind(&self, c: usize) -> KernelKind {
        match self.chunk_kernel[c] {
            Some(i) => self.kernels[i as usize].kind(),
            None => KernelKind::Scalar,
        }
    }

    /// The kernel summary across chunks: the single class every chunk
    /// shares, or [`KernelKind::Mixed`] when constant-row kernels and the
    /// varying scalar loop both appear.
    pub fn aggregate_kernel_kind(&self) -> KernelKind {
        let mut agg: Option<KernelKind> = None;
        for c in 0..self.num_chunks() {
            let k = self.chunk_kernel_kind(c);
            agg = match agg {
                None => Some(k),
                Some(prev) if prev == k => Some(k),
                Some(_) => return KernelKind::Mixed,
            };
        }
        agg.unwrap_or(KernelKind::Scalar)
    }

    /// Chunk `c`'s action on the incoming carry state once its local
    /// state is known: `g ↦ M_c·g + local`.
    pub fn chunk_map(&self, c: usize, local: Vec<T>) -> AffineMap<T> {
        AffineMap::new(self.matrices[c].clone(), local)
    }

    /// Fixes chunk `c`'s incoming global state forward: `M_c·prev + local`
    /// (the in-place form of [`Self::chunk_map`]'s application).
    pub fn fixup_state(&self, c: usize, prev: &[T], local: &[T]) -> Vec<T> {
        let mut g = self.matrices[c].apply(prev);
        for (g, &l) in g.iter_mut().zip(local) {
            *g = g.add(l);
        }
        g
    }

    /// Solves chunk `c` in place, continuing from `state` (`None` for the
    /// decoupled zero-state local solve). Offsets are folded into the
    /// input on the fly; constant-row chunks dispatch to their selected
    /// kernel. Time-sliced: `keep_going` is polled between
    /// [`SOLVE_SLICE`]-element slices so cancels land mid-chunk.
    pub fn solve_chunk(
        &self,
        c: usize,
        state: Option<&[T]>,
        data: &mut [T],
        keep_going: &mut dyn FnMut() -> bool,
    ) -> VaryingSolve<T> {
        let k = self.sig.order();
        let start = c * self.chunk_size;
        let kernel = self.chunk_kernel[c].map(|i| &self.kernels[i as usize]);
        let kind = kernel.map_or(KernelKind::Scalar, |kn| kn.kind());
        let mut st: Vec<T> = match state {
            Some(s) => s.to_vec(),
            None => vec![T::zero(); k],
        };
        let mut slices = 0u64;
        let mut off = 0;
        while off < data.len() {
            if slices > 0 && !keep_going() {
                return VaryingSolve {
                    completed: false,
                    slices,
                    kernel: kind,
                    state: st,
                };
            }
            let end = (off + SOLVE_SLICE).min(data.len());
            let window = &mut data[off..end];
            match kernel {
                Some(kn) => {
                    if let Some(d) = self.sig.offsets() {
                        let d = &d[start + off..start + end];
                        for (w, &dd) in window.iter_mut().zip(d) {
                            *w = w.add(dd);
                        }
                    }
                    kn.solve_in_place_with_history(&st, window);
                }
                None => solve_span(&self.sig, start + off, &st, window),
            }
            st = advance_state(&st, window, k);
            off = end;
            slices += 1;
        }
        VaryingSolve {
            completed: true,
            slices,
            kernel: kind,
            state: st,
        }
    }

    /// Adds the boundary correction to a locally-solved chunk `c`: the
    /// forward companion pass `v ← C_i·v`, `y[i] += v[0]`, seeded with
    /// the predecessor's global state. `O(k)` per element; the order-1
    /// fast path is the scalar loop `v *= a[i]; y[i] += v`.
    pub fn correct_chunk(&self, c: usize, carry: &[T], data: &mut [T]) {
        let k = self.sig.order();
        let start = c * self.chunk_size;
        if k == 1 {
            let a = self.sig.coeffs();
            let mut v = carry[0];
            for (i, y) in data.iter_mut().enumerate() {
                v = v.mul(a[start + i]);
                *y = y.add(v);
            }
            return;
        }
        let mut v = carry.to_vec();
        for (i, y) in data.iter_mut().enumerate() {
            let row = self.sig.row(start + i);
            let mut head = T::zero();
            for (j, &a) in row.iter().enumerate() {
                head = head.add(a.mul(v[j]));
            }
            for j in (1..k).rev() {
                v[j] = v[j - 1];
            }
            v[0] = head;
            *y = y.add(head);
        }
    }
}

/// The serial chunked executor for time-varying recurrences — the
/// single-thread counterpart of the parallel varying runner, wired
/// through the same [`EngineConfig`] the constant [`crate::Engine`]
/// takes.
///
/// `carry_propagation` selects between the fused sequential sweep
/// (chunks continue from real state — no corrections at all) and the
/// decoupled three-stage form (local solves, matrix carry chain,
/// per-chunk corrections) that the parallel strategies distribute.
/// `local_solve` and `flush_denormals` are inert here: within a chunk
/// there are no lanes to double across, and varying coefficients are
/// used exactly as given.
#[derive(Debug)]
pub struct VaryingEngine<T> {
    plan: Arc<VaryingPlan<T>>,
    config: EngineConfig,
}

impl<T: Element> VaryingEngine<T> {
    /// Creates an engine with the default configuration.
    ///
    /// # Errors
    ///
    /// See [`VaryingPlan::build`].
    pub fn new(signature: VaryingSignature<T>) -> Result<Self, EngineError> {
        Self::with_config(signature, EngineConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    ///
    /// # Errors
    ///
    /// See [`VaryingPlan::build`].
    pub fn with_config(
        signature: VaryingSignature<T>,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let plan = VaryingPlan::build(signature, config.chunk_size)?;
        Ok(VaryingEngine {
            plan: Arc::new(plan),
            config,
        })
    }

    /// The signature this engine is bound to.
    pub fn signature(&self) -> &VaryingSignature<T> {
        self.plan.signature()
    }

    /// The underlying chunk plan.
    pub fn plan(&self) -> &Arc<VaryingPlan<T>> {
        &self.plan
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs the recurrence over `input`.
    ///
    /// # Errors
    ///
    /// See [`Self::run_in_place`].
    pub fn run(&self, input: &[T]) -> Result<Vec<T>, EngineError> {
        let mut data = input.to_vec();
        self.run_in_place(&mut data)?;
        Ok(data)
    }

    /// Runs the recurrence in place.
    ///
    /// # Errors
    ///
    /// [`EngineError::LengthMismatch`] when `data.len()` differs from the
    /// signature's bound length.
    pub fn run_in_place(&self, data: &mut [T]) -> Result<(), EngineError> {
        if data.len() != self.plan.len() {
            return Err(EngineError::LengthMismatch {
                expected: self.plan.len(),
                got: data.len(),
            });
        }
        if data.is_empty() {
            return Ok(());
        }
        let k = self.plan.order();
        let m = self.plan.chunk_size();
        let n = data.len();
        let num_chunks = self.plan.num_chunks();
        match self.config.carry_propagation {
            CarryPropagation::Sequential => {
                let mut state = vec![T::zero(); k];
                for c in 0..num_chunks {
                    let start = c * m;
                    let chunk = &mut data[start..(start + m).min(n)];
                    state = self
                        .plan
                        .solve_chunk(c, Some(&state), chunk, &mut || true)
                        .state;
                }
            }
            CarryPropagation::Decoupled => {
                let mut locals: Vec<Vec<T>> = Vec::with_capacity(num_chunks);
                for c in 0..num_chunks {
                    let start = c * m;
                    let chunk = &mut data[start..(start + m).min(n)];
                    locals.push(self.plan.solve_chunk(c, None, chunk, &mut || true).state);
                }
                let mut globals: Vec<Vec<T>> = Vec::with_capacity(num_chunks);
                globals.push(locals[0].clone());
                for c in 1..num_chunks {
                    globals.push(self.plan.fixup_state(c, &globals[c - 1], &locals[c]));
                }
                for c in 1..num_chunks {
                    let start = c * m;
                    let chunk = &mut data[start..(start + m).min(n)];
                    self.plan.correct_chunk(c, &globals[c - 1], chunk);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LocalSolve;
    use crate::serial;

    /// Deterministic pseudo-random stream without any RNG dependency.
    fn pattern(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect()
    }

    fn int_pattern(seed: u64, n: usize, span: i64) -> Vec<i64> {
        pattern(seed, n)
            .into_iter()
            .map(|v| (v * 2.0 * span as f64) as i64)
            .collect()
    }

    fn decoupled(chunk: usize) -> EngineConfig {
        EngineConfig {
            chunk_size: chunk,
            carry_propagation: CarryPropagation::Decoupled,
            local_solve: LocalSolve::Serial,
            flush_denormals: false,
        }
    }

    fn sequential(chunk: usize) -> EngineConfig {
        EngineConfig {
            carry_propagation: CarryPropagation::Sequential,
            ..decoupled(chunk)
        }
    }

    #[test]
    fn signature_shape_validation() {
        assert!(matches!(
            VaryingSignature::new(0, vec![1i64]),
            Err(EngineError::UnsupportedSignature { .. })
        ));
        assert!(matches!(
            VaryingSignature::new(2, vec![1i64, 2, 3]),
            Err(EngineError::UnsupportedSignature { .. })
        ));
        let sig = VaryingSignature::new(2, vec![1i64, 2, 3, 4]).unwrap();
        assert_eq!(sig.order(), 2);
        assert_eq!(sig.len(), 2);
        assert_eq!(sig.row(1), &[3, 4]);
        assert!(matches!(
            VaryingSignature::first_order(vec![1i64, 2])
                .unwrap()
                .with_offsets(vec![5]),
            Err(EngineError::LengthMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn reference_matches_hand_computed_affine_scan() {
        // y[i] = a[i]·y[i-1] + x[i] + d[i] by hand.
        let sig = VaryingSignature::first_order(vec![2i64, 3, 0, 1])
            .unwrap()
            .with_offsets(vec![10, 0, 0, 5])
            .unwrap();
        let out = reference(&sig, &[1, 1, 1, 1]).unwrap();
        // y0 = 1+10 = 11; y1 = 3·11 + 1 = 34; y2 = 0·34 + 1 = 1; y3 = 1·1 + 1 + 5 = 7.
        assert_eq!(out, vec![11, 34, 1, 7]);
    }

    #[test]
    fn constant_rows_match_the_constant_serial_path() {
        // A varying signature whose rows are all equal is the constant
        // recurrence; the reference must agree with serial::recursive.
        let n = 300;
        for fb in [&[2i64][..], &[1, 1][..], &[2, -1, 3][..]] {
            let coeffs: Vec<i64> = (0..n).flat_map(|_| fb.iter().copied()).collect();
            let sig = VaryingSignature::new(fb.len(), coeffs).unwrap();
            let input = int_pattern(9, n, 50);
            let expect = {
                let mut d = input.clone();
                serial::recursive_in_place(fb, &mut d);
                d
            };
            assert_eq!(reference(&sig, &input).unwrap(), expect);
        }
    }

    #[test]
    fn engines_match_reference_across_orders_and_chunks() {
        let n = 517; // deliberately ragged against every chunk size below
        for k in 1..=4usize {
            let coeffs = int_pattern(k as u64, n * k, 3);
            let offsets = int_pattern(40 + k as u64, n, 20);
            let sig = VaryingSignature::new(k, coeffs)
                .unwrap()
                .with_offsets(offsets)
                .unwrap();
            let input = int_pattern(7, n, 100);
            let expect = reference(&sig, &input).unwrap();
            for chunk in [k.max(1), 8, 64, 512, 1024] {
                if chunk < k {
                    continue;
                }
                for config in [sequential(chunk), decoupled(chunk)] {
                    let engine = VaryingEngine::with_config(sig.clone(), config).unwrap();
                    assert_eq!(
                        engine.run(&input).unwrap(),
                        expect,
                        "order {k}, chunk {chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn float_engines_match_reference_closely() {
        let n = 2048;
        let gates: Vec<f64> = pattern(3, n).iter().map(|v| 0.3 + 0.4 * v).collect();
        let sig = VaryingSignature::first_order(gates)
            .unwrap()
            .with_offsets(pattern(5, n))
            .unwrap();
        let input = pattern(11, n);
        let expect = reference(&sig, &input).unwrap();
        for config in [sequential(64), decoupled(64)] {
            let engine = VaryingEngine::with_config(sig.clone(), config).unwrap();
            let got = engine.run(&input).unwrap();
            for (i, (&g, &e)) in got.iter().zip(&expect).enumerate() {
                assert!(
                    (g - e).abs() <= 1e-9 * e.abs().max(1.0),
                    "index {i}: {g} vs {e}"
                );
            }
        }
    }

    #[test]
    fn affine_maps_compose_like_homogeneous_matrices() {
        let k = 3;
        let mats: Vec<AffineMap<i64>> = (0..4)
            .map(|s| {
                let m = Matrix::from_parts(k, int_pattern(s, k * k, 4));
                AffineMap::new(m, int_pattern(90 + s, k, 6))
            })
            .collect();
        for a in &mats {
            for b in &mats {
                let composed = a.then(b);
                assert_eq!(
                    composed.to_homogeneous(),
                    b.to_homogeneous().mul(&a.to_homogeneous())
                );
                // Application agrees with applying in sequence.
                let v = int_pattern(77, k, 9);
                assert_eq!(composed.apply(&v), b.apply(&a.apply(&v)));
                for c in &mats {
                    // Associativity — what makes the carry chain parallel.
                    assert_eq!(a.then(b).then(c), a.then(&b.then(c)));
                }
            }
        }
        // Identity behaves.
        let id = AffineMap::<i64>::identity(k);
        let v = int_pattern(1, k, 9);
        assert_eq!(id.apply(&v), v);
        assert_eq!(mats[0].then(&id), mats[0]);
        assert_eq!(id.then(&mats[0]), mats[0]);
    }

    #[test]
    fn chunk_map_reproduces_the_carry_chain() {
        // Composing the chunk maps and applying once equals walking the
        // chain chunk by chunk.
        let n = 300;
        let k = 2;
        let sig = VaryingSignature::new(k, int_pattern(2, n * k, 3)).unwrap();
        let plan = VaryingPlan::build(sig.clone(), 64).unwrap();
        let mut data = int_pattern(3, n, 40);
        let mut locals = Vec::new();
        for c in 0..plan.num_chunks() {
            let start = c * 64;
            let chunk = &mut data[start..(start + 64).min(n)];
            locals.push(plan.solve_chunk(c, None, chunk, &mut || true).state);
        }
        let mut chained = locals[0].clone();
        let mut composed = plan.chunk_map(0, locals[0].clone());
        for (c, local) in locals.iter().enumerate().skip(1) {
            chained = plan.fixup_state(c, &chained, local);
            composed = composed.then(&plan.chunk_map(c, local.clone()));
        }
        assert_eq!(chained, composed.apply(&vec![0i64; k]));
    }

    #[test]
    fn constant_chunks_get_kernels_varying_chunks_do_not() {
        let n = 256;
        let m = 64;
        // First two chunks constant (same row), third constant with a
        // different row, last genuinely varying.
        let mut gates = vec![0.5f64; 2 * m];
        gates.extend(vec![0.25f64; m]);
        gates.extend(pattern(8, m).iter().map(|v| 0.3 + 0.2 * v));
        let sig = VaryingSignature::first_order(gates).unwrap();
        let plan = VaryingPlan::build(sig, m).unwrap();
        assert_eq!(plan.num_chunks(), 4);
        assert_ne!(plan.chunk_kernel_kind(0), KernelKind::Unknown);
        assert_eq!(plan.chunk_kernel_kind(0), plan.chunk_kernel_kind(1));
        assert_eq!(plan.chunk_kernel_kind(3), KernelKind::Scalar);
        let _ = plan.aggregate_kernel_kind();
        // Differential: the kernel-dispatched plan still matches the
        // reference (constant chunks run the blocked/SIMD kernel).
        let input = pattern(9, n);
        let sig = plan.signature().clone();
        let expect = reference(&sig, &input).unwrap();
        let engine = VaryingEngine::with_config(sig, decoupled(m)).unwrap();
        let got = engine.run(&input).unwrap();
        for (i, (&g, &e)) in got.iter().zip(&expect).enumerate() {
            assert!((g - e).abs() <= 1e-9 * e.abs().max(1.0), "index {i}");
        }
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let sig = VaryingSignature::first_order(vec![1i64; 10]).unwrap();
        let engine = VaryingEngine::with_config(sig.clone(), sequential(4)).unwrap();
        assert!(matches!(
            engine.run(&[1i64; 9]),
            Err(EngineError::LengthMismatch {
                expected: 10,
                got: 9
            })
        ));
        assert!(matches!(
            reference(&sig, &[1i64; 11]),
            Err(EngineError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn invalid_chunk_sizes_are_rejected() {
        let sig = VaryingSignature::new(3, vec![1i64; 30]).unwrap();
        assert!(matches!(
            VaryingPlan::build(sig.clone(), 0),
            Err(EngineError::InvalidChunkSize { chunk_size: 0 })
        ));
        assert!(matches!(
            VaryingPlan::build(sig, 2),
            Err(EngineError::InvalidChunkSize { chunk_size: 2 })
        ));
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let sig = VaryingSignature::first_order(Vec::<i64>::new()).unwrap();
        let engine = VaryingEngine::with_config(sig, sequential(8)).unwrap();
        assert_eq!(engine.run(&[]).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn sliced_solve_reports_slices_and_stops_on_poll() {
        let n = SOLVE_SLICE * 2 + 100;
        let sig = VaryingSignature::first_order(vec![1i64; n]).unwrap();
        let plan = VaryingPlan::build(sig, n).unwrap();
        let mut data = vec![1i64; n];
        let full = plan.solve_chunk(0, None, &mut data, &mut || true);
        assert!(full.completed);
        assert_eq!(full.slices, 3);
        assert_eq!(full.state[0], n as i64); // prefix sum of ones
        let mut data = vec![1i64; n];
        let mut polls = 0;
        let stopped = plan.solve_chunk(0, None, &mut data, &mut || {
            polls += 1;
            polls < 2
        });
        assert!(!stopped.completed);
        assert_eq!(stopped.slices, 2);
    }
}
