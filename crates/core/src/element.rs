//! The scalar element abstraction shared by every recurrence algorithm.
//!
//! The paper evaluates 32-bit integer and 32-bit floating-point sequences;
//! we additionally support the 64-bit widths. Integer arithmetic uses
//! two's-complement wrapping semantics, matching what GPU hardware (and the
//! paper's CUDA kernels) compute on overflow. Floating-point arithmetic is
//! IEEE-754 with an optional flush-to-zero of denormal values, which the
//! paper uses to truncate decaying correction factors (Section 3.1).

use core::fmt::{Debug, Display};

/// A scalar value a linear recurrence can be computed over.
///
/// This trait is sealed in spirit: the four provided implementations
/// (`i32`, `i64`, `f32`, `f64`) cover the paper's evaluation space, and the
/// algorithms in this workspace are only tested against these. The trait
/// deliberately avoids operator overloading so that integer wrapping
/// semantics are explicit at every call site.
///
/// # Examples
///
/// ```
/// use plr_core::element::Element;
///
/// let a = 3i32;
/// let b = i32::MAX;
/// // Wrapping semantics, like the GPU hardware the paper targets.
/// assert_eq!(a.add(b), i32::MIN.add(2));
/// assert!(0.5f32.mul(0.5).approx_eq(0.25, 1e-6));
/// ```
pub trait Element:
    Copy + PartialEq + PartialOrd + Debug + Display + Default + Send + Sync + 'static
{
    /// `true` for IEEE-754 types, `false` for two's-complement integers.
    const IS_FLOAT: bool;
    /// Whether the register-blocked kernels in [`crate::blocked`] may be
    /// used for this type. Blocking reorders additions — an identity for
    /// the wrapping integers, ULP-level reassociation for IEEE floats —
    /// so the built-in scalars opt in; exotic semiring elements (e.g. the
    /// max-plus numbers of [`crate::tropical`]) keep the default `false`
    /// and take the scalar reference path verbatim.
    const BLOCKABLE: bool = false;
    /// Width of the element in bytes (used by the memory-traffic model).
    const BYTES: usize;
    /// Human-readable type name used by the CUDA emitter (`"int"`, `"float"`, ...).
    const CUDA_NAME: &'static str;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Addition; wrapping for integers.
    fn add(self, rhs: Self) -> Self;
    /// Subtraction; wrapping for integers.
    fn sub(self, rhs: Self) -> Self;
    /// Multiplication; wrapping for integers.
    fn mul(self, rhs: Self) -> Self;
    /// Negation; wrapping for integers.
    fn neg(self) -> Self;

    /// Conversion from a small integer constant (exact for every impl).
    fn from_i32(v: i32) -> Self;
    /// Lossy conversion from `f64`; used when instantiating a generic
    /// signature (e.g. filter designs are computed in `f64`).
    fn from_f64(v: f64) -> Self;
    /// Lossy widening to `f64` for reporting and tolerance checks.
    fn to_f64(self) -> f64;

    /// Parse a single signature token (e.g. `"-1"`, `"0.8"`).
    fn parse_token(tok: &str) -> Option<Self>;

    /// A stable 64-bit fingerprint of the value, used to key caches
    /// (distinct values must map to distinct bits *within one type*; the
    /// cache key also carries the `TypeId`, so cross-type collisions are
    /// harmless). Floats use their IEEE bit pattern — `0.0` and `-0.0` are
    /// deliberately distinct, and every NaN payload keys separately.
    fn key_bits(self) -> u64;

    /// The positive underflow threshold below which [`flush_denormal`]
    /// zeroes a value (`f32::MIN_POSITIVE` / `f64::MIN_POSITIVE`), widened
    /// to `f64`. Zero for integers, which never flush.
    ///
    /// [`flush_denormal`]: Element::flush_denormal
    const FLUSH_THRESHOLD: f64 = 0.0;

    /// `self == 0`.
    fn is_zero(self) -> bool {
        self == Self::zero()
    }
    /// `self == 1`.
    fn is_one(self) -> bool {
        self == Self::one()
    }

    /// Flush denormal floating-point values to zero; identity for integers.
    ///
    /// The paper's most effective optimization relies on stable-filter
    /// correction factors decaying below the denormal threshold; flushing
    /// accelerates that decay (Section 3.1).
    fn flush_denormal(self) -> Self {
        self
    }

    /// Whether `self` is within `tol` of `other`.
    ///
    /// Integers require exact equality regardless of `tol`, matching the
    /// paper's validation methodology (exact for ints, `1e-3` discrepancy
    /// bound for floats relative to the magnitude of the values involved).
    fn approx_eq(self, other: Self, tol: f64) -> bool;
}

macro_rules! impl_int_element {
    ($t:ty, $bytes:expr, $cuda:expr) => {
        impl Element for $t {
            const IS_FLOAT: bool = false;
            const BLOCKABLE: bool = true;
            const BYTES: usize = $bytes;
            const CUDA_NAME: &'static str = $cuda;

            fn zero() -> Self {
                0
            }
            fn one() -> Self {
                1
            }
            fn add(self, rhs: Self) -> Self {
                self.wrapping_add(rhs)
            }
            fn sub(self, rhs: Self) -> Self {
                self.wrapping_sub(rhs)
            }
            fn mul(self, rhs: Self) -> Self {
                self.wrapping_mul(rhs)
            }
            fn neg(self) -> Self {
                self.wrapping_neg()
            }
            fn from_i32(v: i32) -> Self {
                v as $t
            }
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            fn to_f64(self) -> f64 {
                self as f64
            }
            fn parse_token(tok: &str) -> Option<Self> {
                tok.parse().ok()
            }
            fn key_bits(self) -> u64 {
                self as i64 as u64
            }
            fn approx_eq(self, other: Self, _tol: f64) -> bool {
                self == other
            }
        }
    };
}

macro_rules! impl_float_element {
    ($t:ty, $bytes:expr, $cuda:expr, $min_positive:expr) => {
        impl Element for $t {
            const IS_FLOAT: bool = true;
            const BLOCKABLE: bool = true;
            const BYTES: usize = $bytes;
            const CUDA_NAME: &'static str = $cuda;

            fn zero() -> Self {
                0.0
            }
            fn one() -> Self {
                1.0
            }
            fn add(self, rhs: Self) -> Self {
                self + rhs
            }
            fn sub(self, rhs: Self) -> Self {
                self - rhs
            }
            fn mul(self, rhs: Self) -> Self {
                self * rhs
            }
            fn neg(self) -> Self {
                -self
            }
            fn from_i32(v: i32) -> Self {
                v as $t
            }
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            fn to_f64(self) -> f64 {
                self as f64
            }
            fn parse_token(tok: &str) -> Option<Self> {
                tok.parse().ok()
            }
            fn key_bits(self) -> u64 {
                self.to_bits() as u64
            }
            const FLUSH_THRESHOLD: f64 = $min_positive as f64;
            fn flush_denormal(self) -> Self {
                if self != 0.0 && self.abs() < $min_positive {
                    0.0
                } else {
                    self
                }
            }
            fn approx_eq(self, other: Self, tol: f64) -> bool {
                let (a, b) = (self.to_f64(), other.to_f64());
                if a == b {
                    return true;
                }
                if !a.is_finite() || !b.is_finite() {
                    return false;
                }
                let scale = a.abs().max(b.abs()).max(1.0);
                (a - b).abs() <= tol * scale
            }
        }
    };
}

impl_int_element!(i32, 4, "int");
impl_int_element!(i64, 8, "long long");
impl_float_element!(f32, 4, "float", f32::MIN_POSITIVE);
impl_float_element!(f64, 8, "double", f64::MIN_POSITIVE);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_wrapping_add() {
        assert_eq!(i32::MAX.add(1), i32::MIN);
        assert_eq!(i64::MIN.sub(1), i64::MAX);
    }

    #[test]
    fn int_wrapping_mul() {
        assert_eq!((1i32 << 30).mul(4), 0);
        assert_eq!(i32::MIN.neg(), i32::MIN);
    }

    #[test]
    fn identities() {
        assert!(0i32.is_zero());
        assert!(1i64.is_one());
        assert!(0.0f32.is_zero());
        assert!(1.0f64.is_one());
        assert!(!0.5f32.is_one());
    }

    #[test]
    fn from_conversions_are_exact_for_small_ints() {
        assert_eq!(i32::from_i32(-7), -7);
        assert_eq!(i64::from_i32(-7), -7);
        assert_eq!(f32::from_i32(-7), -7.0);
        assert_eq!(f64::from_i32(-7), -7.0);
        assert_eq!(f32::from_f64(0.8), 0.8f32);
    }

    #[test]
    fn parse_tokens() {
        assert_eq!(i32::parse_token("-12"), Some(-12));
        assert_eq!(i32::parse_token("0.5"), None);
        assert_eq!(f64::parse_token("-0.64"), Some(-0.64));
        assert_eq!(f32::parse_token("x"), None);
    }

    #[test]
    fn denormal_flush() {
        let tiny = f32::MIN_POSITIVE / 2.0;
        assert!(tiny != 0.0);
        assert_eq!(tiny.flush_denormal(), 0.0);
        assert_eq!((-tiny).flush_denormal(), 0.0);
        assert_eq!(1.0f32.flush_denormal(), 1.0);
        assert_eq!(0i32.flush_denormal(), 0);
        // Normal values pass through untouched.
        assert_eq!(f32::MIN_POSITIVE.flush_denormal(), f32::MIN_POSITIVE);
    }

    #[test]
    fn approx_eq_ints_exact() {
        assert!(5i32.approx_eq(5, 1e-3));
        assert!(!5i32.approx_eq(6, 1e3));
    }

    #[test]
    fn approx_eq_floats_relative() {
        assert!(1000.0f32.approx_eq(1000.5, 1e-3));
        assert!(!1000.0f32.approx_eq(1002.0, 1e-3));
        assert!(0.0f64.approx_eq(1e-9, 1e-3)); // absolute floor near zero
        assert!(!f32::NAN.approx_eq(f32::NAN, 1.0));
        assert!(!f32::INFINITY.approx_eq(1.0, 1.0));
    }

    #[test]
    fn cuda_names() {
        assert_eq!(i32::CUDA_NAME, "int");
        assert_eq!(f32::CUDA_NAME, "float");
        assert_eq!(i64::CUDA_NAME, "long long");
        assert_eq!(f64::CUDA_NAME, "double");
    }

    #[test]
    fn byte_widths_match_memory_model_expectations() {
        assert_eq!(i32::BYTES, 4);
        assert_eq!(f32::BYTES, 4);
        assert_eq!(i64::BYTES, 8);
        assert_eq!(f64::BYTES, 8);
    }
}
