//! Tropical (max-plus) recurrences — "operators other than addition".
//!
//! The paper's future work includes supporting operators other than
//! addition. The entire correction-factor theory only ever uses the
//! semiring operations (⊕ = add, ⊗ = mul with distributivity, and the two
//! identities); no algorithm path subtracts or negates. [`MaxPlus`]
//! instantiates the machinery over the tropical semiring
//! `(max, +, -∞, 0)`, where a "linear recurrence" becomes
//!
//! ```text
//! y[i] = max(a0 + x[i], …, b1 + y[i-1], b2 + y[i-2], …)
//! ```
//!
//! This family includes the audio peak-envelope follower (a running
//! maximum with linear decay, `(0 : -λ)` in tropical notation), Viterbi-
//! style best-path scores, and max-plus system dynamics — all of which the
//! same Phase 1 / Phase 2 code now computes in parallel, correction
//! factors and all (the factors become the *n-nacci numbers of the
//! tropical semiring*: maximal path weights).

use crate::element::Element;
use core::fmt;

/// An element of the max-plus (tropical) semiring over `f64`.
///
/// * ⊕ (`Element::add`) is `max`;
/// * ⊗ (`Element::mul`) is `+`;
/// * zero is `-∞` (identity of max, annihilator of +);
/// * one is `0.0` (identity of +).
///
/// # Examples
///
/// ```
/// use plr_core::tropical::MaxPlus;
/// use plr_core::{serial, Element, Signature};
///
/// // Peak envelope: y[i] = max(x[i], y[i-1] - 0.5).
/// let sig: Signature<MaxPlus> = Signature::new(
///     vec![MaxPlus::one()],
///     vec![MaxPlus::new(-0.5)],
/// )?;
/// let x = [1.0, 0.0, 0.0, 2.0, 0.0].map(MaxPlus::new);
/// let y = serial::run(&sig, &x);
/// assert_eq!(y[1], MaxPlus::new(0.5)); // decayed peak beats the new sample
/// assert_eq!(y[3], MaxPlus::new(2.0)); // new peak
/// # Ok::<(), plr_core::error::SignatureError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct MaxPlus(pub f64);

impl MaxPlus {
    /// Wraps a value.
    pub fn new(v: f64) -> Self {
        MaxPlus(v)
    }

    /// The wrapped value (`-∞` for the semiring zero).
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for MaxPlus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == f64::NEG_INFINITY {
            write!(f, "-inf")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl Element for MaxPlus {
    const IS_FLOAT: bool = true;
    const BYTES: usize = 8;
    const CUDA_NAME: &'static str = "double /* max-plus */";

    fn zero() -> Self {
        MaxPlus(f64::NEG_INFINITY)
    }
    fn one() -> Self {
        MaxPlus(0.0)
    }
    fn add(self, rhs: Self) -> Self {
        MaxPlus(self.0.max(rhs.0))
    }
    fn sub(self, _rhs: Self) -> Self {
        // The tropical semiring has no subtraction; the recurrence
        // machinery never calls this (verified by the test suite), but the
        // trait requires an implementation.
        unimplemented!("max-plus has no subtraction")
    }
    fn mul(self, rhs: Self) -> Self {
        MaxPlus(self.0 + rhs.0)
    }
    fn neg(self) -> Self {
        unimplemented!("max-plus has no negation")
    }
    fn from_i32(v: i32) -> Self {
        MaxPlus(v as f64)
    }
    fn from_f64(v: f64) -> Self {
        MaxPlus(v)
    }
    fn to_f64(self) -> f64 {
        self.0
    }
    fn parse_token(tok: &str) -> Option<Self> {
        if tok == "-inf" {
            return Some(Self::zero());
        }
        tok.parse().ok().map(MaxPlus)
    }
    fn key_bits(self) -> u64 {
        self.0.to_bits()
    }
    fn approx_eq(self, other: Self, tol: f64) -> bool {
        if self.0 == other.0 {
            return true; // covers -inf == -inf
        }
        if !self.0.is_finite() || !other.0.is_finite() {
            return false;
        }
        let scale = self.0.abs().max(other.0.abs()).max(1.0);
        (self.0 - other.0).abs() <= tol * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CarryPropagation, Engine, EngineConfig, LocalSolve};
    use crate::nacci::CorrectionTable;
    use crate::serial;
    use crate::signature::Signature;
    use crate::validate::validate;

    fn envelope_sig(decay: f64) -> Signature<MaxPlus> {
        Signature::new(vec![MaxPlus::one()], vec![MaxPlus::new(-decay)]).unwrap()
    }

    /// Naive tropical recurrence, written independently of the Element
    /// machinery.
    fn naive(feedback: &[f64], input: &[f64]) -> Vec<f64> {
        let mut y: Vec<f64> = Vec::with_capacity(input.len());
        for i in 0..input.len() {
            let mut acc = input[i];
            for (j, &b) in feedback.iter().enumerate() {
                if j < i {
                    acc = acc.max(b + y[i - j - 1]);
                }
            }
            y.push(acc);
        }
        y
    }

    #[test]
    fn semiring_laws() {
        let a = MaxPlus::new(2.0);
        let b = MaxPlus::new(-1.0);
        let c = MaxPlus::new(5.5);
        assert_eq!(a.add(b), b.add(a));
        assert_eq!(a.add(b.add(c)), a.add(b).add(c));
        assert_eq!(a.mul(b.mul(c)), a.mul(b).mul(c));
        // Distributivity: a⊗(b⊕c) = a⊗b ⊕ a⊗c.
        assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
        // Identities and annihilation.
        assert_eq!(a.add(MaxPlus::zero()), a);
        assert_eq!(a.mul(MaxPlus::one()), a);
        assert_eq!(a.mul(MaxPlus::zero()), MaxPlus::zero());
    }

    #[test]
    fn serial_matches_the_naive_tropical_loop() {
        let input: Vec<f64> = (0..200).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
        let sig = envelope_sig(0.25);
        let wrapped: Vec<MaxPlus> = input.iter().map(|&v| MaxPlus(v)).collect();
        let got = serial::run(&sig, &wrapped);
        let expect = naive(&[-0.25], &input);
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g.value(), *e);
        }
    }

    #[test]
    fn tropical_correction_factors_are_path_weights() {
        // For (… : -λ), factor i is -(i+1)·λ: the weight of the best (only)
        // path of length i+1 — the decayed influence of the carry.
        let t = CorrectionTable::generate(&[MaxPlus::new(-0.5)], 6);
        for (i, f) in t.list(0).iter().enumerate() {
            assert_eq!(f.value(), -0.5 * (i as f64 + 1.0));
        }
    }

    #[test]
    fn engine_computes_tropical_recurrences_in_chunks() {
        // The full two-phase machinery over the tropical semiring.
        let input: Vec<MaxPlus> = (0..5000)
            .map(|i| MaxPlus(((i * 131) % 47) as f64 - 23.0))
            .collect();
        for fb in [
            vec![MaxPlus::new(-0.5)],
            vec![MaxPlus::new(-0.3), MaxPlus::new(-1.1)],
        ] {
            let sig = Signature::new(vec![MaxPlus::one()], fb).unwrap();
            let expect = serial::run(&sig, &input);
            for carry in [CarryPropagation::Sequential, CarryPropagation::Decoupled] {
                let engine = Engine::with_config(
                    sig.clone(),
                    EngineConfig {
                        chunk_size: 64,
                        local_solve: LocalSolve::HierarchicalDoubling,
                        carry_propagation: carry,
                        flush_denormals: false,
                    },
                )
                .unwrap();
                let got = engine.run(&input).unwrap();
                validate(&expect, &got, 1e-12).unwrap_or_else(|e| panic!("{sig} {carry:?}: {e}"));
            }
        }
    }

    #[test]
    fn envelope_follower_decays_between_peaks() {
        let sig = envelope_sig(1.0);
        let x: Vec<MaxPlus> = [10.0, 0.0, 0.0, 0.0, 12.0, 0.0].map(MaxPlus).to_vec();
        let y = serial::run(&sig, &x);
        let values: Vec<f64> = y.iter().map(|v| v.value()).collect();
        assert_eq!(values, vec![10.0, 9.0, 8.0, 7.0, 12.0, 11.0]);
    }

    #[test]
    fn parse_and_display_round_trip() {
        let sig: Signature<MaxPlus> = "0 : -0.5".parse().unwrap();
        assert_eq!(sig.feedback()[0], MaxPlus::new(-0.5));
        assert_eq!(MaxPlus::zero().to_string(), "-inf");
        assert_eq!(MaxPlus::parse_token("-inf"), Some(MaxPlus::zero()));
    }

    #[test]
    fn fir_part_works_too() {
        // y[i] = max(x[i] + 1, x[i-1] + 3, y[i-1] - 2):
        let sig = Signature::new(
            vec![MaxPlus::new(1.0), MaxPlus::new(3.0)],
            vec![MaxPlus::new(-2.0)],
        )
        .unwrap();
        let x = [0.0, 0.0, -10.0].map(MaxPlus);
        let y = serial::run(&sig, &x);
        assert_eq!(y[0].value(), 1.0); // max(0+1)
        assert_eq!(y[1].value(), 3.0); // max(0+1, 0+3, 1-2)
        assert_eq!(y[2].value(), 3.0); // max(-10+1, 0+3, 3-2)
    }
}
