//! Anticausal (right-to-left) and bidirectional evaluation.
//!
//! Image-processing filter stacks (Nehab et al.'s Alg3, the paper's
//! Section 5 comparison) run each filter twice: a *causal* left-to-right
//! pass and an *anticausal* right-to-left pass, producing a zero-phase
//! response. An anticausal recurrence is the causal one on the reversed
//! sequence, so every engine in this workspace can compute it; these
//! helpers package that (with the reversal hidden) and the common
//! forward-backward combination.

use crate::element::Element;
use crate::engine::Engine;
use crate::error::EngineError;
use crate::serial;
use crate::signature::Signature;

/// Computes the recurrence right-to-left (serially):
/// `y[i] = Σ a-j·x[i+j] + Σ b-j·y[i+j]`.
pub fn run_serial<T: Element>(sig: &Signature<T>, input: &[T]) -> Vec<T> {
    let mut reversed: Vec<T> = input.iter().rev().copied().collect();
    let mut out = serial::run(sig, &reversed);
    out.reverse();
    reversed.clear();
    out
}

/// Computes the recurrence right-to-left with a two-phase [`Engine`].
///
/// # Errors
///
/// Propagates the engine's errors (input too large).
pub fn run_engine<T: Element>(engine: &Engine<T>, input: &[T]) -> Result<Vec<T>, EngineError> {
    let reversed: Vec<T> = input.iter().rev().copied().collect();
    let mut out = engine.run(&reversed)?;
    out.reverse();
    Ok(out)
}

/// The forward-backward (zero-phase) application: causal pass, then the
/// anticausal pass over its output — exactly what Alg3 computes per row.
pub fn forward_backward<T: Element>(sig: &Signature<T>, input: &[T]) -> Vec<T> {
    let causal = serial::run(sig, input);
    run_serial(sig, &causal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters;
    use crate::response;
    use crate::validate::validate;

    #[test]
    fn anticausal_is_the_mirrored_causal() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let input: Vec<i64> = vec![1, 2, 3, 4];
        // Reverse prefix sum: suffix sums.
        assert_eq!(run_serial(&sig, &input), vec![10, 9, 7, 4]);
    }

    #[test]
    fn engine_matches_serial_anticausal() {
        let sig: Signature<f32> = filters::low_pass(0.8, 2).cast();
        let input: Vec<f32> = (0..10_000).map(|i| ((i % 17) as f32) - 8.0).collect();
        let engine = Engine::new(sig.clone()).unwrap();
        let got = run_engine(&engine, &input).unwrap();
        validate(&run_serial(&sig, &input), &got, 1e-3).unwrap();
    }

    #[test]
    fn forward_backward_matches_the_alg3_row_semantics() {
        let sig: Signature<f32> = filters::low_pass(0.8, 1).cast();
        let input: Vec<f32> = (0..64).map(|i| ((i % 7) as f32) - 3.0).collect();
        // Same computation the Alg3 baseline defines as its row reference.
        let alg3_style = {
            let causal = serial::run(&sig, &input);
            let mut rev: Vec<f32> = causal.iter().rev().copied().collect();
            rev = serial::run(&sig, &rev);
            rev.reverse();
            rev
        };
        validate(&alg3_style, &forward_backward(&sig, &input), 1e-6).unwrap();
    }

    #[test]
    fn forward_backward_squares_the_magnitude_response() {
        // Zero-phase filtering: |H_fb(ω)| = |H(ω)|² on long signals.
        // Check on a pure tone: steady-state amplitude ratio ≈ |H(ω)|².
        let sig = filters::low_pass(0.8, 1);
        let omega = 0.3f64;
        let n = 4000;
        let tone: Vec<f64> = (0..n).map(|i| (omega * i as f64).sin()).collect();
        let filtered = forward_backward(&sig, &tone);
        // Measure the output amplitude in the steady-state middle.
        let mid = &filtered[n / 4..3 * n / 4];
        let amp = mid.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        let expect = response::magnitude(&sig, omega).powi(2);
        assert!(
            (amp - expect).abs() < 0.05 * expect.max(0.05),
            "amplitude {amp:.4} vs |H|² {expect:.4}"
        );
    }

    #[test]
    fn empty_input() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        assert!(run_serial(&sig, &[]).is_empty());
        assert!(forward_backward(&sig, &[]).is_empty());
    }
}
