//! Stability analysis of feedback recurrences.
//!
//! A recurrence `(1 : b-1, …, b-k)` is stable exactly when every root of its
//! characteristic polynomial `z^k - b-1·z^(k-1) - … - b-k` lies strictly
//! inside the unit circle. Stability determines whether the correction
//! factors decay — the property behind the paper's most effective
//! optimization (truncating factor arrays once they underflow).
//!
//! Roots are found with the Durand–Kerner iteration over a hand-rolled
//! complex type (no external numerics dependency).

use crate::element::Element;

/// A complex number, just enough for root finding.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }

    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    fn div(self, o: Complex) -> Complex {
        let d = o.re * o.re + o.im * o.im;
        Complex::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

/// Result of analysing a feedback coefficient list.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityReport {
    /// Roots of the characteristic polynomial (the recurrence's poles).
    pub poles: Vec<Complex>,
    /// Largest pole magnitude.
    pub spectral_radius: f64,
    /// `true` when the Durand–Kerner iteration reached its step tolerance.
    /// When `false` the poles (and everything derived from them, including
    /// [`decay_length`]) are untrusted estimates; callers that would commit
    /// to an irreversible rewrite — truncating factor tables, skipping
    /// look-back — must fall back to the dense path instead.
    ///
    /// [`decay_length`]: StabilityReport::decay_length
    pub converged: bool,
    /// Residual of the final Durand–Kerner step (the largest per-root
    /// correction in the last iteration). Small (`< 1e-9`) when
    /// [`converged`](StabilityReport::converged) is `true`.
    pub residual: f64,
    /// `Σ|b_j|` over the feedback coefficients, used as a seed-magnitude
    /// margin when bounding the correction factors (every factor list is a
    /// homogeneous solution whose seeds are drawn from the coefficients).
    pub coeff_l1: f64,
}

impl StabilityReport {
    /// `true` when every pole lies strictly inside the unit circle, i.e.
    /// the impulse response (and the correction factors) decay to zero.
    pub fn is_stable(&self) -> bool {
        self.spectral_radius < 1.0
    }

    /// Conservatively estimates after how many elements the correction
    /// factors decay below `threshold`, or `None` for non-decaying
    /// recurrences (or when root finding did not converge).
    ///
    /// The paper notes stable IIR impulse responses "decay below the
    /// arithmetic precision after a few hundred elements". A naive estimate
    /// is `log(threshold) / log(ρ)` with ρ the spectral radius, but that
    /// ignores pole multiplicity: for a double pole the impulse response
    /// grows like `n·ρⁿ` before decaying, so truncating at the naive depth
    /// would drop non-zero factors. Instead we use the exact monomial-count
    /// bound: the impulse response of an order-`k` all-pole recurrence is
    /// the complete homogeneous symmetric polynomial of its poles,
    ///
    /// ```text
    /// |h_n| ≤ C(n+k-1, k-1) · ρⁿ
    /// ```
    ///
    /// which is uniform over every pole configuration — distinct, repeated,
    /// or clustered. Solving `C(n+k-1,k-1)·B·ρⁿ ≤ threshold` in log space
    /// (with `B = max(1, Σ|b_j|)` covering the factor-list seeds) by
    /// fixed-point iteration gives the bound; `k` extra elements absorb the
    /// seed offsets between the `k` factor lists, plus a small slack for
    /// rounding in the pole magnitudes themselves.
    pub fn decay_length(&self, threshold: f64) -> Option<usize> {
        let k = self.poles.len();
        if self.spectral_radius == 0.0 {
            return Some(k + 1);
        }
        // `is_finite && > 0` rather than `!(> 0)` so a NaN threshold
        // (possible from an exotic Element's FLUSH_THRESHOLD) refuses too.
        let usable_threshold = threshold.is_finite() && threshold > 0.0;
        if !self.is_stable() || !self.converged || !usable_threshold {
            return None;
        }
        // Inflate ρ slightly: Durand–Kerner magnitudes carry rounding error
        // (worse for clustered roots). If the inflated radius reaches 1 the
        // bound would never terminate — report "no usable decay".
        let rho = self.spectral_radius * (1.0 + 1e-6) + 1e-12;
        if rho >= 1.0 {
            return None;
        }
        let ln_rho = rho.ln(); // < 0
        let ln_th = threshold.ln();
        let ln_b = self.coeff_l1.max(1.0).ln();
        let kf = k as f64;
        // Fixed point of n = (ln th - ln B - (k-1)·ln(n+k)) / ln ρ. The
        // right-hand side is increasing and concave in n (log growth), so
        // iterating from the margin-free solution converges from below.
        let mut n = (ln_th / ln_rho).max(1.0);
        for _ in 0..64 {
            let margin = (kf - 1.0) * (n + kf).ln() + ln_b;
            let next = ((ln_th - margin) / ln_rho).max(1.0);
            if (next - n).abs() < 0.5 {
                n = next;
                break;
            }
            n = next;
        }
        Some(n.ceil() as usize + k + 2)
    }
}

/// Analyses the feedback coefficients of a recurrence.
///
/// # Panics
///
/// Panics if `feedback` is empty.
pub fn analyze<T: Element>(feedback: &[T]) -> StabilityReport {
    assert!(
        !feedback.is_empty(),
        "stability analysis needs at least one coefficient"
    );
    // Characteristic polynomial, monic, highest degree first:
    // z^k - b1 z^(k-1) - ... - bk
    let k = feedback.len();
    let mut coeffs = vec![1.0];
    coeffs.extend(feedback.iter().map(|b| -b.to_f64()));
    let (poles, residual) = roots(&coeffs, k);
    let spectral_radius = poles.iter().map(|p| p.abs()).fold(0.0, f64::max);
    let coeff_l1 = feedback.iter().map(|b| b.to_f64().abs()).sum();
    StabilityReport {
        poles,
        spectral_radius,
        converged: residual < CONVERGENCE_RESIDUAL && residual.is_finite(),
        residual,
        coeff_l1,
    }
}

/// Largest final Durand–Kerner step still considered converged. Looser than
/// the iteration's own stopping tolerance (`1e-13`) so near-machine-precision
/// stalls on clustered roots still count, but tight enough that a genuinely
/// wandering iteration (or one that exhausted its 200 iterations far from a
/// root) is flagged.
const CONVERGENCE_RESIDUAL: f64 = 1e-8;

/// Durand–Kerner root finding for a monic polynomial given highest-degree
/// first coefficients (`coeffs[0] == 1`), of degree `deg`. Returns the root
/// estimates and the final iteration's largest per-root step (the
/// convergence residual; `0.0` for degree zero).
fn roots(coeffs: &[f64], deg: usize) -> (Vec<Complex>, f64) {
    if deg == 0 {
        return (vec![], 0.0);
    }
    // Initial guesses: points on a non-real spiral (the classic choice).
    let mut z: Vec<Complex> = (0..deg)
        .map(|i| {
            let angle = 0.4 + 2.0 * std::f64::consts::PI * (i as f64) / (deg as f64);
            let radius = 1.0 + 0.1 * (i as f64) / (deg as f64);
            Complex::new(radius * angle.cos(), radius * angle.sin())
        })
        .collect();
    let eval = |x: Complex| -> Complex {
        coeffs.iter().fold(Complex::default(), |acc, &c| {
            acc.mul(x).add(Complex::new(c, 0.0))
        })
    };
    let mut residual = f64::INFINITY;
    for _ in 0..200 {
        let mut max_step = 0.0f64;
        for i in 0..deg {
            let mut denom = Complex::new(1.0, 0.0);
            for j in 0..deg {
                if j != i {
                    denom = denom.mul(z[i].sub(z[j]));
                }
            }
            let step = eval(z[i]).div(denom);
            z[i] = z[i].sub(step);
            max_step = max_step.max(step.abs());
        }
        residual = max_step;
        if max_step < 1e-13 {
            break;
        }
    }
    (z, residual)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_magnitudes(report: &StabilityReport) -> Vec<f64> {
        let mut m: Vec<f64> = report.poles.iter().map(|p| p.abs()).collect();
        m.sort_by(|a, b| a.partial_cmp(b).unwrap());
        m
    }

    #[test]
    fn prefix_sum_pole_at_one() {
        let r = analyze(&[1.0f64]);
        assert!((r.spectral_radius - 1.0).abs() < 1e-9);
        assert!(!r.is_stable());
        assert_eq!(r.decay_length(1e-7), None);
    }

    #[test]
    fn single_pole_filter() {
        let r = analyze(&[0.8f64]);
        assert!((r.spectral_radius - 0.8).abs() < 1e-9);
        assert!(r.is_stable());
        assert!(r.converged);
        // 0.8^n < 1e-7 at n ≈ 72.3; the conservative bound adds a small
        // slack but must stay within a handful of elements for a single
        // well-separated pole.
        let est = r.decay_length(1e-7).unwrap();
        assert!((73..=80).contains(&est), "estimate {est}");
    }

    #[test]
    fn repeated_pole_two_stage_low_pass() {
        // (1: 1.6, -0.64): (z - 0.8)².
        let r = analyze(&[1.6f64, -0.64]);
        let mags = sorted_magnitudes(&r);
        assert!((mags[0] - 0.8).abs() < 1e-5);
        assert!((mags[1] - 0.8).abs() < 1e-5);
        assert!(r.is_stable());
    }

    #[test]
    fn second_order_prefix_sum_double_pole_at_one() {
        // (1: 2, -1): (z - 1)².
        let r = analyze(&[2.0f64, -1.0]);
        assert!((r.spectral_radius - 1.0).abs() < 1e-5);
        assert!(!r.is_stable());
    }

    #[test]
    fn fibonacci_golden_ratio_growth() {
        let r = analyze(&[1.0f64, 1.0]);
        let phi = (1.0 + 5.0f64.sqrt()) / 2.0;
        assert!((r.spectral_radius - phi).abs() < 1e-9);
        assert!(!r.is_stable());
    }

    #[test]
    fn tuple_prefix_sum_roots_on_unit_circle() {
        // (1: 0, 1): z² = 1, poles ±1.
        let r = analyze(&[0.0f64, 1.0]);
        let mags = sorted_magnitudes(&r);
        assert!((mags[0] - 1.0).abs() < 1e-9);
        assert!((mags[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn complex_pole_pair() {
        // z² - z + 0.5: poles 0.5 ± 0.5i, |z| = 1/√2.
        let r = analyze(&[1.0f64, -0.5]);
        assert!((r.spectral_radius - 0.5f64.sqrt()).abs() < 1e-9);
        assert!(r.is_stable());
        assert!(r.poles.iter().any(|p| p.im.abs() > 0.1));
    }

    #[test]
    fn decay_length_tracks_factor_table() {
        use crate::nacci::CorrectionTable;
        let fb = [0.8f32];
        let est = analyze(&fb).decay_length(f32::MIN_POSITIVE as f64).unwrap();
        let table = CorrectionTable::generate_with(&fb, 2 * est, true);
        let first_zero = table.list(0).iter().position(|&v| v == 0.0).unwrap();
        // The estimate must be conservative (truncating at `est` must not
        // drop non-zero factors) but stay close to the actual underflow
        // point for a single well-separated pole.
        assert!(est >= first_zero, "estimate {est}, actual {first_zero}");
        assert!(
            est <= first_zero + 16,
            "estimate {est}, actual {first_zero}"
        );
    }

    #[test]
    fn decay_length_covers_repeated_pole() {
        use crate::nacci::CorrectionTable;
        // (1: 1.6, -0.64): double pole at 0.8. The impulse response grows
        // like n·0.8ⁿ, so the naive log(th)/log(ρ) estimate (~391 for f32)
        // undershoots the actual underflow index (~418).
        let fb = [1.6f32, -0.64];
        let report = analyze(&fb);
        assert!(report.converged);
        let est = report.decay_length(f32::MIN_POSITIVE as f64).unwrap();
        let table = CorrectionTable::generate_with(&fb, 2 * est, true);
        for r in 0..table.order() {
            let tail_start = table
                .list(r)
                .iter()
                .rposition(|&v| v != 0.0)
                .map_or(0, |i| i + 1);
            assert!(
                est >= tail_start,
                "list {r}: estimate {est} < actual {tail_start}"
            );
        }
        // Naive estimate for reference: this is the undershoot being fixed.
        let naive = (f32::MIN_POSITIVE as f64).ln() / 0.8f64.ln();
        let actual = table.list(0).iter().rposition(|&v| v != 0.0).unwrap() + 1;
        assert!(
            (naive as usize) < actual,
            "naive {naive} unexpectedly covers actual {actual}"
        );
    }

    #[test]
    fn decay_length_refuses_non_converged_reports() {
        let mut r = analyze(&[0.8f64]);
        assert!(r.decay_length(1e-7).is_some());
        r.converged = false;
        assert_eq!(r.decay_length(1e-7), None);
    }

    #[test]
    fn integer_coefficients_accepted() {
        let r = analyze(&[2i32, -1]);
        assert!(!r.is_stable());
    }
}
