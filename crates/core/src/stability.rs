//! Stability analysis of feedback recurrences.
//!
//! A recurrence `(1 : b-1, …, b-k)` is stable exactly when every root of its
//! characteristic polynomial `z^k - b-1·z^(k-1) - … - b-k` lies strictly
//! inside the unit circle. Stability determines whether the correction
//! factors decay — the property behind the paper's most effective
//! optimization (truncating factor arrays once they underflow).
//!
//! Roots are found with the Durand–Kerner iteration over a hand-rolled
//! complex type (no external numerics dependency).

use crate::element::Element;

/// A complex number, just enough for root finding.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }

    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    fn div(self, o: Complex) -> Complex {
        let d = o.re * o.re + o.im * o.im;
        Complex::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

/// Result of analysing a feedback coefficient list.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityReport {
    /// Roots of the characteristic polynomial (the recurrence's poles).
    pub poles: Vec<Complex>,
    /// Largest pole magnitude.
    pub spectral_radius: f64,
}

impl StabilityReport {
    /// `true` when every pole lies strictly inside the unit circle, i.e.
    /// the impulse response (and the correction factors) decay to zero.
    pub fn is_stable(&self) -> bool {
        self.spectral_radius < 1.0
    }

    /// Estimates after how many elements the correction factors decay below
    /// `threshold`, or `None` for non-decaying recurrences.
    ///
    /// The paper notes stable IIR impulse responses "decay below the
    /// arithmetic precision after a few hundred elements"; this estimate is
    /// `log(threshold) / log(ρ)` with ρ the spectral radius.
    pub fn decay_length(&self, threshold: f64) -> Option<usize> {
        if !self.is_stable() || self.spectral_radius == 0.0 {
            return if self.spectral_radius == 0.0 {
                Some(self.poles.len() + 1)
            } else {
                None
            };
        }
        let n = threshold.ln() / self.spectral_radius.ln();
        Some(n.ceil().max(1.0) as usize)
    }
}

/// Analyses the feedback coefficients of a recurrence.
///
/// # Panics
///
/// Panics if `feedback` is empty.
pub fn analyze<T: Element>(feedback: &[T]) -> StabilityReport {
    assert!(
        !feedback.is_empty(),
        "stability analysis needs at least one coefficient"
    );
    // Characteristic polynomial, monic, highest degree first:
    // z^k - b1 z^(k-1) - ... - bk
    let k = feedback.len();
    let mut coeffs = vec![1.0];
    coeffs.extend(feedback.iter().map(|b| -b.to_f64()));
    let poles = roots(&coeffs, k);
    let spectral_radius = poles.iter().map(|p| p.abs()).fold(0.0, f64::max);
    StabilityReport {
        poles,
        spectral_radius,
    }
}

/// Durand–Kerner root finding for a monic polynomial given highest-degree
/// first coefficients (`coeffs[0] == 1`), of degree `deg`.
fn roots(coeffs: &[f64], deg: usize) -> Vec<Complex> {
    if deg == 0 {
        return vec![];
    }
    // Initial guesses: points on a non-real spiral (the classic choice).
    let mut z: Vec<Complex> = (0..deg)
        .map(|i| {
            let angle = 0.4 + 2.0 * std::f64::consts::PI * (i as f64) / (deg as f64);
            let radius = 1.0 + 0.1 * (i as f64) / (deg as f64);
            Complex::new(radius * angle.cos(), radius * angle.sin())
        })
        .collect();
    let eval = |x: Complex| -> Complex {
        coeffs.iter().fold(Complex::default(), |acc, &c| {
            acc.mul(x).add(Complex::new(c, 0.0))
        })
    };
    for _ in 0..200 {
        let mut max_step = 0.0f64;
        for i in 0..deg {
            let mut denom = Complex::new(1.0, 0.0);
            for j in 0..deg {
                if j != i {
                    denom = denom.mul(z[i].sub(z[j]));
                }
            }
            let step = eval(z[i]).div(denom);
            z[i] = z[i].sub(step);
            max_step = max_step.max(step.abs());
        }
        if max_step < 1e-13 {
            break;
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_magnitudes(report: &StabilityReport) -> Vec<f64> {
        let mut m: Vec<f64> = report.poles.iter().map(|p| p.abs()).collect();
        m.sort_by(|a, b| a.partial_cmp(b).unwrap());
        m
    }

    #[test]
    fn prefix_sum_pole_at_one() {
        let r = analyze(&[1.0f64]);
        assert!((r.spectral_radius - 1.0).abs() < 1e-9);
        assert!(!r.is_stable());
        assert_eq!(r.decay_length(1e-7), None);
    }

    #[test]
    fn single_pole_filter() {
        let r = analyze(&[0.8f64]);
        assert!((r.spectral_radius - 0.8).abs() < 1e-9);
        assert!(r.is_stable());
        // 0.8^n < 1e-7 at n ≈ 72.3 -> 73.
        assert_eq!(r.decay_length(1e-7), Some(73));
    }

    #[test]
    fn repeated_pole_two_stage_low_pass() {
        // (1: 1.6, -0.64): (z - 0.8)².
        let r = analyze(&[1.6f64, -0.64]);
        let mags = sorted_magnitudes(&r);
        assert!((mags[0] - 0.8).abs() < 1e-5);
        assert!((mags[1] - 0.8).abs() < 1e-5);
        assert!(r.is_stable());
    }

    #[test]
    fn second_order_prefix_sum_double_pole_at_one() {
        // (1: 2, -1): (z - 1)².
        let r = analyze(&[2.0f64, -1.0]);
        assert!((r.spectral_radius - 1.0).abs() < 1e-5);
        assert!(!r.is_stable());
    }

    #[test]
    fn fibonacci_golden_ratio_growth() {
        let r = analyze(&[1.0f64, 1.0]);
        let phi = (1.0 + 5.0f64.sqrt()) / 2.0;
        assert!((r.spectral_radius - phi).abs() < 1e-9);
        assert!(!r.is_stable());
    }

    #[test]
    fn tuple_prefix_sum_roots_on_unit_circle() {
        // (1: 0, 1): z² = 1, poles ±1.
        let r = analyze(&[0.0f64, 1.0]);
        let mags = sorted_magnitudes(&r);
        assert!((mags[0] - 1.0).abs() < 1e-9);
        assert!((mags[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn complex_pole_pair() {
        // z² - z + 0.5: poles 0.5 ± 0.5i, |z| = 1/√2.
        let r = analyze(&[1.0f64, -0.5]);
        assert!((r.spectral_radius - 0.5f64.sqrt()).abs() < 1e-9);
        assert!(r.is_stable());
        assert!(r.poles.iter().any(|p| p.im.abs() > 0.1));
    }

    #[test]
    fn decay_length_tracks_factor_table() {
        use crate::nacci::CorrectionTable;
        let fb = [0.8f32];
        let est = analyze(&fb).decay_length(f32::MIN_POSITIVE as f64).unwrap();
        let table = CorrectionTable::generate_with(&fb, 2 * est, true);
        let first_zero = table.list(0).iter().position(|&v| v == 0.0).unwrap();
        // The estimate should land within a few elements of the actual
        // underflow point (flush-to-zero can only shorten it).
        assert!(first_zero <= est + 2, "estimate {est}, actual {first_zero}");
        assert!(first_zero + 8 >= est, "estimate {est}, actual {first_zero}");
    }

    #[test]
    fn integer_coefficients_accepted() {
        let r = analyze(&[2i32, -1]);
        assert!(!r.is_stable());
    }
}
