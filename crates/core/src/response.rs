//! Frequency- and impulse-response analysis of recurrences.
//!
//! The digital-filter half of the paper's evaluation (Smith's low-/high-
//! pass designs) is characterized by its frequency response; this module
//! evaluates `H(e^{jω})` for any signature, plus the impulse response —
//! which for a pure-feedback recurrence is exactly the first correction-
//! factor list, the fact behind the paper's decay-truncation optimization.

use crate::element::Element;
use crate::signature::Signature;
use crate::stability::Complex;

/// Magnitude and phase of the transfer function at angular frequency `ω`
/// (radians/sample, `0..=π`).
///
/// `H(z) = (Σ a_j z^{-j}) / (1 - Σ b_j z^{-j})` evaluated at `z = e^{jω}`.
///
/// # Examples
///
/// ```
/// use plr_core::{filters, response};
///
/// let lp = filters::low_pass(0.8, 1);
/// // Unity at DC, strongly attenuated at Nyquist.
/// assert!((response::magnitude(&lp, 0.0) - 1.0).abs() < 1e-12);
/// assert!(response::magnitude(&lp, std::f64::consts::PI) < 0.2);
/// ```
pub fn evaluate<T: Element>(sig: &Signature<T>, omega: f64) -> Complex {
    // Numerator: Σ a_j e^{-jωj}, j = 0..=p.
    let mut num = Complex::new(0.0, 0.0);
    for (j, a) in sig.feedforward().iter().enumerate() {
        let ang = -omega * j as f64;
        num = add(num, scale(Complex::new(ang.cos(), ang.sin()), a.to_f64()));
    }
    // Denominator: 1 - Σ b_j e^{-jωj}, j = 1..=k.
    let mut den = Complex::new(1.0, 0.0);
    for (j, b) in sig.feedback().iter().enumerate() {
        let ang = -omega * (j as f64 + 1.0);
        den = sub(den, scale(Complex::new(ang.cos(), ang.sin()), b.to_f64()));
    }
    div(num, den)
}

/// `|H(e^{jω})|`.
pub fn magnitude<T: Element>(sig: &Signature<T>, omega: f64) -> f64 {
    evaluate(sig, omega).abs()
}

/// Magnitude response in decibels.
pub fn magnitude_db<T: Element>(sig: &Signature<T>, omega: f64) -> f64 {
    20.0 * magnitude(sig, omega).log10()
}

/// The -3 dB cutoff frequency (radians/sample) found by bisection between
/// DC and Nyquist, or `None` when the response never crosses -3 dB
/// relative to its larger band edge.
pub fn cutoff_3db<T: Element>(sig: &Signature<T>) -> Option<f64> {
    let lo = magnitude(sig, 1e-9);
    let hi = magnitude(sig, std::f64::consts::PI);
    let reference = lo.max(hi);
    let target = reference / 2.0f64.sqrt();
    let f = |w: f64| magnitude(sig, w) - target;
    let (mut a, mut b) = (1e-9, std::f64::consts::PI);
    let (fa, fb) = (f(a), f(b));
    if fa.signum() == fb.signum() {
        return None;
    }
    let rising = fa < 0.0;
    for _ in 0..200 {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if (fm < 0.0) == rising {
            a = m;
        } else {
            b = m;
        }
    }
    Some(0.5 * (a + b))
}

/// The first `len` values of the impulse response (the output for input
/// `1, 0, 0, …`).
pub fn impulse_response<T: Element>(sig: &Signature<T>, len: usize) -> Vec<T> {
    let mut input = vec![T::zero(); len];
    if len > 0 {
        input[0] = T::one();
    }
    crate::serial::run(sig, &input)
}

fn add(a: Complex, b: Complex) -> Complex {
    Complex::new(a.re + b.re, a.im + b.im)
}
fn sub(a: Complex, b: Complex) -> Complex {
    Complex::new(a.re - b.re, a.im - b.im)
}
fn scale(a: Complex, s: f64) -> Complex {
    Complex::new(a.re * s, a.im * s)
}
fn div(a: Complex, b: Complex) -> Complex {
    let d = b.re * b.re + b.im * b.im;
    Complex::new(
        (a.re * b.re + a.im * b.im) / d,
        (a.im * b.re - a.re * b.im) / d,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters;
    use crate::nacci::CorrectionTable;
    use std::f64::consts::PI;

    #[test]
    fn low_pass_passes_dc_and_blocks_nyquist() {
        for stages in 1..=3 {
            let lp = filters::low_pass(0.8, stages);
            assert!(
                (magnitude(&lp, 0.0) - 1.0).abs() < 1e-12,
                "{stages} stages at DC"
            );
            let nyq = magnitude(&lp, PI);
            assert!(
                nyq < 0.12f64.powi(stages as i32 - 1) * 0.12,
                "{stages} stages: {nyq}"
            );
        }
    }

    #[test]
    fn high_pass_mirrors_low_pass() {
        let hp = filters::high_pass(0.8, 1);
        assert!(magnitude(&hp, 0.0) < 1e-12);
        assert!((magnitude(&hp, PI) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn magnitude_is_monotone_for_single_pole_low_pass() {
        let lp = filters::low_pass(0.8, 1);
        let mut last = f64::INFINITY;
        for i in 0..=32 {
            let w = PI * i as f64 / 32.0;
            let m = magnitude(&lp, w.max(1e-12));
            assert!(m <= last + 1e-12, "not monotone at ω={w}");
            last = m;
        }
    }

    #[test]
    fn cutoff_found_for_filters_and_absent_for_allpass() {
        let lp = filters::low_pass(0.8, 1);
        let wc = cutoff_3db(&lp).expect("low-pass has a cutoff");
        assert!((magnitude(&lp, wc) - 1.0 / 2.0f64.sqrt()).abs() < 1e-6);
        // Higher stages narrow the passband.
        let wc2 = cutoff_3db(&filters::low_pass(0.8, 2)).unwrap();
        assert!(wc2 < wc);
        // A pure delay-feedback "allpass-ish" recurrence that never crosses:
        // identity map (1 : tiny feedback) stays near 1 everywhere…
        let flat = crate::signature::Signature::new(vec![1.0], vec![1e-9]).unwrap();
        assert!(cutoff_3db(&flat).is_none());
    }

    #[test]
    fn impulse_response_equals_first_correction_factor_list_shifted() {
        // For (1 : b…): y(impulse) = 1, F0, F1, F2, … where F is the
        // distance-1 n-nacci factor list — the identity behind the decay
        // optimization.
        let sig = crate::signature::Signature::new(vec![1.0f64], vec![1.6, -0.64]).unwrap();
        let h = impulse_response(&sig, 16);
        let table = CorrectionTable::generate(&[1.6f64, -0.64], 15);
        assert!((h[0] - 1.0).abs() < 1e-12);
        for i in 0..15 {
            assert!(
                (h[i + 1] - table.list(0)[i]).abs() < 1e-9,
                "index {i}: {} vs {}",
                h[i + 1],
                table.list(0)[i]
            );
        }
    }

    #[test]
    fn impulse_response_of_fir_part_shows_through() {
        let hp = filters::high_pass(0.8, 1); // (0.9, -0.9 : 0.8)
        let h = impulse_response(&hp, 4);
        assert!((h[0] - 0.9).abs() < 1e-12);
        // h[1] = -0.9 + 0.8·0.9
        assert!((h[1] - (-0.9 + 0.72)).abs() < 1e-12);
    }

    #[test]
    fn smith_cutoff_formula_round_trips() {
        // x = e^{-2π fc}: the -3 dB point of the single-pole design should
        // land in the right neighbourhood of fc (the single-pole design is
        // approximate, so allow slack).
        let fc = 0.05;
        let d = filters::SinglePole::from_cutoff(fc);
        let lp = d.low_pass_stage().repeat(1).to_signature();
        let wc = cutoff_3db(&lp).unwrap() / (2.0 * PI); // cycles/sample
        assert!((wc - fc).abs() < 0.02, "fc {fc} vs measured {wc}");
    }
}
