//! Phase 1: hierarchical doubling merge of local solutions.
//!
//! Starting from chunks of one element (each trivially holding its local
//! solution, since `y[first] = t[first]` for a `(1 : b…)` recurrence),
//! Phase 1 iteratively merges pairs of adjacent chunks. The second chunk of
//! each pair is corrected with the precomputed factors from a
//! [`CorrectionTable`] multiplied by the up-to-`k` carries (last elements)
//! of the first chunk. After `log2(m)` iterations every aligned chunk of
//! size `m` holds its local solution.
//!
//! The invariant maintained after each iteration with chunk size `c`: every
//! aligned window `[j·c, (j+1)·c)` holds the recurrence solution *as if the
//! sequence started at `j·c`* (zero history). Missing carries while `c < k`
//! are therefore genuinely zero — the paper's "all missing terms are zero"
//! remark — so corrections only read carries that physically exist inside
//! the first chunk of the pair.
//!
//! Each element of a second chunk is corrected independently, which is what
//! the GPU mapping exploits: warp shuffles while `c < 32`, shared memory
//! across warps up to the block chunk size (see `plr-codegen`).

use crate::element::Element;
use crate::nacci::CorrectionTable;

/// One doubling iteration: merges adjacent pairs of `chunk`-sized chunks.
///
/// `data` may have a ragged tail; a final partial chunk participates as the
/// second half of its pair (correct-prefix semantics are preserved).
///
/// # Panics
///
/// Panics if `chunk == 0` or `2·chunk` exceeds the table length.
pub fn merge_step<T: Element>(table: &CorrectionTable<T>, data: &mut [T], chunk: usize) {
    assert!(chunk > 0, "chunk size must be positive");
    assert!(
        chunk <= table.len(),
        "doubling past the correction table length"
    );
    let k = table.order();
    let pair = 2 * chunk;
    let n = data.len();
    let mut pair_start = 0;
    while pair_start < n {
        let second_start = pair_start + chunk;
        if second_start >= n {
            break; // lone first chunk at the tail: nothing to correct
        }
        let second_end = (pair_start + pair).min(n);
        // Carries: the last min(k, chunk) elements of the first chunk.
        // Read them before mutating the second chunk (disjoint ranges, but
        // the borrow is simplest via split_at_mut).
        let (first, rest) = data[pair_start..second_end].split_at_mut(chunk);
        let second = rest;
        for r in 0..k.min(chunk) {
            let carry = first[chunk - 1 - r];
            if carry.is_zero() {
                continue;
            }
            let list = table.list(r);
            for (i, v) in second.iter_mut().enumerate() {
                *v = v.add(list[i].mul(carry));
            }
        }
        pair_start += pair;
    }
}

/// Runs Phase 1 from single-element chunks up to `target_chunk`.
///
/// On return, every aligned `target_chunk`-sized window of `data` holds its
/// local solution of the recurrence `(1 : feedback…)` over the original
/// contents of that window.
///
/// # Panics
///
/// Panics if `target_chunk` is not a power of two or exceeds the table
/// length.
pub fn run<T: Element>(table: &CorrectionTable<T>, data: &mut [T], target_chunk: usize) {
    assert!(
        target_chunk.is_power_of_two(),
        "phase 1 doubling requires a power-of-two target chunk size, got {target_chunk}"
    );
    let mut chunk = 1;
    while chunk < target_chunk {
        merge_step(table, data, chunk);
        chunk *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;

    /// Computes the expected Phase 1 result: each aligned chunk solved
    /// locally with the serial loop.
    fn local_solutions<T: Element>(feedback: &[T], input: &[T], chunk: usize) -> Vec<T> {
        let mut out = input.to_vec();
        for c in out.chunks_mut(chunk) {
            serial::recursive_in_place(feedback, c);
        }
        out
    }

    #[test]
    fn paper_example_iteration_by_iteration() {
        // Section 2.3 worked example: (1: 2, -1), n = 20, m = 8.
        let fb = [2i32, -1];
        let table = CorrectionTable::generate(&fb, 8);
        let mut data: Vec<i32> = vec![
            3, -4, 5, -6, 7, -8, 9, -10, 11, -12, 13, -14, 15, -16, 17, -18, 19, -20, 21, -22,
        ];

        merge_step(&table, &mut data, 1);
        assert_eq!(
            data,
            vec![3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14, 17, 16, 19, 18, 21, 20]
        );

        merge_step(&table, &mut data, 2);
        assert_eq!(
            data,
            vec![3, 2, 6, 4, 7, 6, 14, 12, 11, 10, 22, 20, 15, 14, 30, 28, 19, 18, 38, 36]
        );

        merge_step(&table, &mut data, 4);
        assert_eq!(
            data,
            vec![3, 2, 6, 4, 9, 6, 12, 8, 11, 10, 22, 20, 33, 30, 44, 40, 19, 18, 38, 36]
        );
    }

    #[test]
    fn run_matches_per_chunk_serial_solutions() {
        let fb = [2i32, -1];
        let table = CorrectionTable::generate(&fb, 16);
        let input: Vec<i32> = (0..100).map(|i| (i * 7919) % 23 - 11).collect();
        for target in [1usize, 2, 4, 8, 16] {
            let mut data = input.clone();
            run(&table, &mut data, target);
            assert_eq!(
                data,
                local_solutions(&fb, &input, target),
                "target {target}"
            );
        }
    }

    #[test]
    fn prefix_of_sequence_is_globally_correct() {
        // Paper: after iteration s, the first 2^s elements are final.
        let fb = [1i32, 1, 1];
        let table = CorrectionTable::generate(&fb, 32);
        let input: Vec<i32> = (0..50).map(|i| (i % 5) - 2).collect();
        let full = {
            let mut d = input.clone();
            serial::recursive_in_place(&fb, &mut d);
            d
        };
        let mut data = input.clone();
        run(&table, &mut data, 32);
        assert_eq!(&data[..32], &full[..32]);
    }

    #[test]
    fn high_order_with_chunks_smaller_than_k() {
        // Order 4 recurrence: the first two iterations have fewer carries
        // than k; the local-solution invariant must still hold.
        let fb = [1i32, -2, 3, -1];
        let table = CorrectionTable::generate(&fb, 8);
        let input: Vec<i32> = (0..40).map(|i| ((i * 31) % 17) - 8).collect();
        let mut data = input.clone();
        run(&table, &mut data, 8);
        assert_eq!(data, local_solutions(&fb, &input, 8));
    }

    #[test]
    fn ragged_tail_shorter_than_half_pair() {
        let fb = [1i32, 1];
        let table = CorrectionTable::generate(&fb, 8);
        // 11 elements: final pair is (8-chunk, 3-element tail).
        let input: Vec<i32> = (1..=11).collect();
        let mut data = input.clone();
        run(&table, &mut data, 8);
        // After phase 1 with target 8, chunks are [0..8) and [8..11).
        assert_eq!(data, local_solutions(&fb, &input, 8));
    }

    #[test]
    fn lone_tail_chunk_is_left_alone() {
        let fb = [1i32];
        let table = CorrectionTable::generate(&fb, 4);
        // 6 elements with chunk 4: pair is ([0..4), [4..6)); merging at
        // chunk=4 has a second chunk of 2.
        let input = vec![1i32, 1, 1, 1, 1, 1];
        let mut data = input.clone();
        run(&table, &mut data, 4);
        assert_eq!(data, local_solutions(&fb, &input, 4));
    }

    #[test]
    fn float_filter_phase1() {
        let fb = [1.6f64, -0.64];
        let table = CorrectionTable::generate(&fb, 16);
        let input: Vec<f64> = (0..64).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut data = input.clone();
        run(&table, &mut data, 16);
        let expect = local_solutions(&fb, &input, 16);
        for (a, b) in data.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_target_rejected() {
        let table = CorrectionTable::generate(&[1i32], 8);
        run(&table, &mut [1, 2, 3], 3);
    }

    #[test]
    fn empty_data_is_noop() {
        let table = CorrectionTable::generate(&[1i32], 4);
        let mut data: Vec<i32> = vec![];
        run(&table, &mut data, 4);
        assert!(data.is_empty());
    }
}
