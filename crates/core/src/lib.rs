//! # plr-core
//!
//! Core algorithms for the automatic hierarchical parallelization of linear
//! recurrences, reproducing Maleki & Burtscher, *Automatic Hierarchical
//! Parallelization of Linear Recurrences* (ASPLOS 2018).
//!
//! A linear recurrence transforms an input sequence `x` into an output `y`:
//!
//! ```text
//! y[i] = a0·x[i] + … + a-p·x[i-p] + b-1·y[i-1] + … + b-k·y[i-k]
//! ```
//!
//! written compactly as the *signature* `(a0, …, a-p : b-1, …, b-k)`.
//! Prefix sums (`(1:1)`), tuple and higher-order prefix sums, and recursive
//! (IIR) digital filters are all instances.
//!
//! The crate provides, bottom-up:
//!
//! * [`element`] — the scalar abstraction (i32/i64 with GPU-style wrapping,
//!   f32/f64 with flush-to-zero support);
//! * [`signature`] — the signature type and its textual DSL;
//! * [`serial`] — the serial reference implementations;
//! * [`nacci`] — generalized-Fibonacci correction-factor tables, the
//!   paper's key precomputation;
//! * [`blocked`] — register-blocked serial kernels: the carry-correction
//!   trick applied at register-block granularity ("level 0" of the
//!   hierarchy), breaking the per-element dependency for orders ≤ 4;
//! * [`simd`] — explicit `core::arch` vector kernels for the blocked
//!   solve, the FIR map and the correction folds, dispatched at runtime
//!   on the detected ISA (no rebuild flags needed);
//! * [`kernel`] — the kernel-tier knob (`PLR_KERNEL` env/override)
//!   shared by every executor;
//! * [`phase1`] / [`phase2`] — hierarchical doubling merge and chunked
//!   carry propagation (sequential and decoupled-look-back forms);
//! * [`engine`] — the end-to-end two-phase executor;
//! * [`analysis`] — factor-pattern classification backing PLR's
//!   domain-specific optimizations;
//! * [`plan`] — runtime correction plans: cached per-signature strategy
//!   selection (scalar fold / conditional add / periodic / decay-truncated
//!   / dense) consulted by every executor;
//! * [`poly`], [`filters`], [`stability`], [`prefix`] — filter design,
//!   signature catalogs, and stability analysis;
//! * [`compose`] — z-transform combination/decomposition of recurrences
//!   (the paper's "offline" cascade step);
//! * [`response`] — frequency- and impulse-response analysis;
//! * [`companion`] — the companion-matrix view cross-validating the
//!   n-nacci factors against matrix powers;
//! * [`segmented`] — restart boundaries inside one input (segmented
//!   prefix sums generalized to any feedback);
//! * [`tropical`] — the max-plus semiring instantiation ("operators other
//!   than addition").
//!
//! ## Quickstart
//!
//! ```
//! use plr_core::{engine::Engine, signature::Signature};
//!
//! let sig: Signature<i64> = "(1: 2, -1)".parse()?; // 2nd-order prefix sum
//! let engine = Engine::new(sig)?;
//! let y = engine.run(&[1, 1, 1, 1, 1])?;
//! assert_eq!(y, vec![1, 3, 6, 10, 15]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod anticausal;
pub mod blocked;
pub mod companion;
pub mod compose;
pub mod element;
pub mod engine;
pub mod error;
pub mod filters;
pub mod kernel;
pub mod nacci;
pub mod phase1;
pub mod phase2;
pub mod plan;
pub mod poly;
pub mod prefix;
pub mod response;
pub mod segmented;
pub mod serial;
pub mod signature;
pub mod simd;
pub mod stability;
pub mod stream;
pub mod tropical;
pub mod validate;
pub mod varying;

pub use element::Element;
pub use engine::Engine;
pub use kernel::{set_kernel_override, KernelKind, KernelTier};
pub use plan::{CorrectionPlan, PlanKind, PlanMode};
pub use segmented::{SegmentedPlan, Segments};
pub use signature::Signature;
pub use varying::{AffineMap, VaryingEngine, VaryingPlan, VaryingSignature};
