//! Recursive digital filter design in signature form.
//!
//! The paper's Table 1 filter signatures come from Smith's *Digital Signal
//! Processing* single-pole designs, cascaded into multi-stage filters via
//! the z-transform: cascading two filters multiplies their transfer-function
//! numerators and denominators. This module reproduces exactly those
//! designs, so the generated signatures match the paper's table (which
//! truncates some coefficients for readability).
//!
//! Conventions: a signature `(a0, …, a-p : b-1, …, b-k)` corresponds to the
//! transfer function `H(z) = A(z) / D(z)` with `A(z) = a0 + a-1·z + …`
//! (writing `z` for `z⁻¹`) and `D(z) = 1 - b-1·z - … - b-k·z^k`.

use crate::poly::Poly;
use crate::signature::Signature;

/// A single-pole filter design parameter: the pole location `x ∈ (0, 1)`.
///
/// Smith's formulas: the decay parameter `x = e^(-2π·fc)` for cutoff
/// frequency `fc` (fraction of the sampling rate). The paper's examples use
/// `x = 0.8`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinglePole {
    x: f64,
}

impl SinglePole {
    /// Creates a design from the pole location `x`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < x < 1` (the stable, meaningful range).
    pub fn from_pole(x: f64) -> Self {
        assert!(x > 0.0 && x < 1.0, "pole must be in (0, 1), got {x}");
        SinglePole { x }
    }

    /// Creates a design from a cutoff frequency `fc` (cycles per sample,
    /// `0 < fc < 0.5`), using Smith's `x = e^(-2π·fc)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fc < 0.5`.
    pub fn from_cutoff(fc: f64) -> Self {
        assert!(fc > 0.0 && fc < 0.5, "cutoff must be in (0, 0.5), got {fc}");
        Self::from_pole((-2.0 * std::f64::consts::PI * fc).exp())
    }

    /// The pole location `x`.
    pub fn pole(&self) -> f64 {
        self.x
    }

    /// One low-pass stage: `(1-x : x)` — e.g. `(0.2 : 0.8)` for `x = 0.8`.
    pub fn low_pass_stage(&self) -> Stage {
        Stage {
            numerator: Poly::new(vec![1.0 - self.x]),
            denominator: Poly::new(vec![1.0, -self.x]),
        }
    }

    /// One high-pass stage: `((1+x)/2, -(1+x)/2 : x)` — e.g.
    /// `(0.9, -0.9 : 0.8)` for `x = 0.8`.
    pub fn high_pass_stage(&self) -> Stage {
        let g = (1.0 + self.x) / 2.0;
        Stage {
            numerator: Poly::new(vec![g, -g]),
            denominator: Poly::new(vec![1.0, -self.x]),
        }
    }
}

/// A filter stage (or cascade) as a z-domain transfer function.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    numerator: Poly,
    denominator: Poly,
}

impl Stage {
    /// Builds a stage from an existing signature.
    pub fn from_signature(sig: &Signature<f64>) -> Self {
        let numerator = Poly::new(sig.feedforward().to_vec());
        let mut d = vec![1.0];
        d.extend(sig.feedback().iter().map(|&b| -b));
        Stage {
            numerator,
            denominator: Poly::new(d),
        }
    }

    /// Cascades `self` with `other` (series connection): transfer functions
    /// multiply.
    pub fn cascade(&self, other: &Stage) -> Stage {
        Stage {
            numerator: self.numerator.mul(&other.numerator),
            denominator: self.denominator.mul(&other.denominator),
        }
    }

    /// Cascades `self` with itself `n` times total (`n >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn repeat(&self, n: u32) -> Stage {
        assert!(n >= 1, "a cascade needs at least one stage");
        Stage {
            numerator: self.numerator.pow(n),
            denominator: self.denominator.pow(n),
        }
    }

    /// Converts the transfer function back to signature form.
    ///
    /// # Panics
    ///
    /// Panics if the denominator's constant term is not 1 (every stage
    /// produced by this module keeps it 1) or the stage degenerates to an
    /// invalid signature (zero numerator or FIR-only denominator).
    pub fn to_signature(&self) -> Signature<f64> {
        let d = self.denominator.coeffs();
        assert!(
            !d.is_empty() && (d[0] - 1.0).abs() < 1e-12,
            "denominator must be monic in z^0, got {:?}",
            d
        );
        let feedback: Vec<f64> = d[1..].iter().map(|&c| -c).collect();
        Signature::new(self.numerator.coeffs().to_vec(), feedback)
            .expect("cascade produced a degenerate signature")
    }

    /// The DC gain `H(1)` (response to a constant input).
    pub fn dc_gain(&self) -> f64 {
        self.numerator.eval(1.0) / self.denominator.eval(1.0)
    }

    /// The Nyquist gain `H(-1)` (response to the fastest alternation).
    pub fn nyquist_gain(&self) -> f64 {
        self.numerator.eval(-1.0) / self.denominator.eval(-1.0)
    }
}

/// An `stages`-stage low-pass filter with pole `x`, in signature form.
///
/// `low_pass(0.8, 2)` is the paper's `(0.04 : 1.6, -0.64)`.
///
/// # Panics
///
/// Panics if `x` is outside `(0, 1)` or `stages == 0`.
pub fn low_pass(x: f64, stages: u32) -> Signature<f64> {
    SinglePole::from_pole(x)
        .low_pass_stage()
        .repeat(stages)
        .to_signature()
}

/// An `stages`-stage high-pass filter with pole `x`, in signature form.
///
/// `high_pass(0.8, 3)` is the paper's
/// `(0.729, -2.187, 2.187, -0.729 : 2.4, -1.92, 0.512)` (Table 1 prints it
/// truncated).
///
/// # Panics
///
/// Panics if `x` is outside `(0, 1)` or `stages == 0`.
pub fn high_pass(x: f64, stages: u32) -> Signature<f64> {
    SinglePole::from_pole(x)
        .high_pass_stage()
        .repeat(stages)
        .to_signature()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;

    fn assert_coeffs_close(got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len(), "{got:?} vs {want:?}");
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-12, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn paper_low_pass_signatures() {
        let lp1 = low_pass(0.8, 1);
        assert_coeffs_close(lp1.feedforward(), &[0.2]);
        assert_coeffs_close(lp1.feedback(), &[0.8]);

        let lp2 = low_pass(0.8, 2);
        assert_coeffs_close(lp2.feedforward(), &[0.04]);
        assert_coeffs_close(lp2.feedback(), &[1.6, -0.64]);

        let lp3 = low_pass(0.8, 3);
        assert_coeffs_close(lp3.feedforward(), &[0.008]);
        assert_coeffs_close(lp3.feedback(), &[2.4, -1.92, 0.512]);
    }

    #[test]
    fn paper_high_pass_signatures() {
        let hp1 = high_pass(0.8, 1);
        assert_coeffs_close(hp1.feedforward(), &[0.9, -0.9]);
        assert_coeffs_close(hp1.feedback(), &[0.8]);

        let hp2 = high_pass(0.8, 2);
        assert_coeffs_close(hp2.feedforward(), &[0.81, -1.62, 0.81]);
        assert_coeffs_close(hp2.feedback(), &[1.6, -0.64]);

        let hp3 = high_pass(0.8, 3);
        // Table 1 prints (0.73, -2.19, 2.19, -0.73 : 2.4, -1.9, 0.5),
        // truncated from these exact values:
        assert_coeffs_close(hp3.feedforward(), &[0.729, -2.187, 2.187, -0.729]);
        assert_coeffs_close(hp3.feedback(), &[2.4, -1.92, 0.512]);
    }

    #[test]
    fn low_pass_has_unit_dc_gain_and_high_pass_zero() {
        for stages in 1..=4 {
            let lp = Stage::from_signature(&low_pass(0.8, stages));
            assert!((lp.dc_gain() - 1.0).abs() < 1e-12);
            let hp = Stage::from_signature(&high_pass(0.8, stages));
            assert!(hp.dc_gain().abs() < 1e-12);
            assert!((hp.nyquist_gain() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cascade_of_signature_equals_applying_stages_in_series() {
        // Running the 2-stage filter once must equal running the 1-stage
        // filter twice (up to float noise).
        let one = low_pass(0.8, 1);
        let two = low_pass(0.8, 2);
        let input: Vec<f64> = (0..100).map(|i| ((i % 10) as f64) - 4.5).collect();
        let once_then_again = serial::run(&one, &serial::run(&one, &input));
        let in_one_go = serial::run(&two, &input);
        for (a, b) in once_then_again.iter().zip(&in_one_go) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn mixed_cascade_low_then_high_is_a_band_pass() {
        let lp = SinglePole::from_pole(0.8).low_pass_stage();
        let hp = SinglePole::from_pole(0.3).high_pass_stage();
        let bp = lp.cascade(&hp);
        let sig = bp.to_signature();
        assert_eq!(sig.order(), 2);
        // Band-pass: blocks DC and Nyquist.
        assert!(bp.dc_gain().abs() < 1e-12);
        assert!(bp.nyquist_gain().abs() < 0.2);
    }

    #[test]
    fn from_cutoff_matches_smith_formula() {
        let d = SinglePole::from_cutoff(0.25);
        assert!((d.pole() - (-std::f64::consts::PI / 2.0).exp()).abs() < 1e-15);
    }

    #[test]
    fn signature_round_trip_through_stage() {
        let sig = high_pass(0.8, 2);
        let back = Stage::from_signature(&sig).to_signature();
        assert_coeffs_close(back.feedforward(), sig.feedforward());
        assert_coeffs_close(back.feedback(), sig.feedback());
    }

    #[test]
    #[should_panic(expected = "pole must be in (0, 1)")]
    fn rejects_unstable_pole() {
        SinglePole::from_pole(1.5);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn rejects_zero_stages() {
        SinglePole::from_pole(0.5).low_pass_stage().repeat(0);
    }
}
