//! Output validation against the serial reference.
//!
//! The paper validates every run by comparing the GPU result to the serial
//! CPU result — exactly for integers and within a `1e-3` discrepancy for
//! floating point (parallel float reductions reassociate). This module is
//! that check.

use crate::element::Element;
use crate::error::ValidationError;

/// The paper's floating-point validation tolerance.
pub const PAPER_FLOAT_TOLERANCE: f64 = 1e-3;

/// Validates `actual` against `expected`.
///
/// Integer elements are compared exactly (the `tolerance` is ignored);
/// floating-point elements are compared with a relative tolerance (absolute
/// near zero). Lengths must match.
///
/// # Errors
///
/// Returns a [`ValidationError`] locating the first mismatch. A length
/// mismatch is reported at the index of the shorter length.
///
/// # Examples
///
/// ```
/// use plr_core::validate::{validate, PAPER_FLOAT_TOLERANCE};
///
/// validate(&[1.0f32, 2.0], &[1.0, 2.0001], PAPER_FLOAT_TOLERANCE)?;
/// assert!(validate(&[1i32], &[2i32], PAPER_FLOAT_TOLERANCE).is_err());
/// # Ok::<(), plr_core::error::ValidationError>(())
/// ```
pub fn validate<T: Element>(
    expected: &[T],
    actual: &[T],
    tolerance: f64,
) -> Result<(), ValidationError> {
    if expected.len() != actual.len() {
        let index = expected.len().min(actual.len());
        return Err(ValidationError {
            index,
            expected: expected.get(index).map_or(f64::NAN, |v| v.to_f64()),
            actual: actual.get(index).map_or(f64::NAN, |v| v.to_f64()),
            tolerance,
        });
    }
    for (index, (&e, &a)) in expected.iter().zip(actual).enumerate() {
        if !e.approx_eq(a, tolerance) {
            return Err(ValidationError {
                index,
                expected: e.to_f64(),
                actual: a.to_f64(),
                tolerance,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_passes() {
        validate(&[1i32, 2, 3], &[1, 2, 3], 0.0).unwrap();
    }

    #[test]
    fn int_mismatch_reports_index() {
        let err = validate(&[1i32, 2, 3], &[1, 9, 3], 0.0).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.expected, 2.0);
        assert_eq!(err.actual, 9.0);
    }

    #[test]
    fn float_tolerance_is_relative() {
        // 0.1% of 10_000 is 10.
        validate(&[10_000.0f32], &[10_005.0], PAPER_FLOAT_TOLERANCE).unwrap();
        assert!(validate(&[10_000.0f32], &[10_020.0], PAPER_FLOAT_TOLERANCE).is_err());
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let err = validate(&[1i32, 2], &[1], 0.0).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.actual.is_nan());
    }

    #[test]
    fn empty_sequences_validate() {
        validate::<f32>(&[], &[], PAPER_FLOAT_TOLERANCE).unwrap();
    }
}
