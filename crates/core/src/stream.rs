//! Streaming (online) evaluation: process input arriving in blocks.
//!
//! Real DSP pipelines receive samples in buffers, not as one giant array.
//! [`StreamState`] carries the recurrence state — the last `p` inputs for
//! the map stage and the last `k` outputs for the feedback stage — across
//! calls, so feeding a signal block by block produces exactly the same
//! output as one whole-input run (property-tested). The block processing
//! itself can then be handed to any of the workspace's engines; state
//! carrying is the only genuinely sequential part.

use crate::element::Element;
use crate::signature::Signature;

/// Carryable state for online evaluation of one signature.
///
/// # Examples
///
/// ```
/// use plr_core::stream::StreamState;
/// use plr_core::{serial, Signature};
///
/// let sig: Signature<i64> = "(1: 1)".parse()?; // prefix sum
/// let mut state = StreamState::new(sig.clone());
/// let mut out = state.process(&[1, 2]);
/// out.extend(state.process(&[3, 4]));
/// assert_eq!(out, serial::run(&sig, &[1, 2, 3, 4]));
/// # Ok::<(), plr_core::error::SignatureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamState<T> {
    signature: Signature<T>,
    /// Last `p` raw inputs, most recent first.
    input_history: Vec<T>,
    /// Last `k` outputs, most recent first.
    output_history: Vec<T>,
    /// Total samples processed so far.
    processed: u64,
}

impl<T: Element> StreamState<T> {
    /// Creates fresh state (all history zero, as at a sequence start).
    pub fn new(signature: Signature<T>) -> Self {
        StreamState {
            signature,
            input_history: Vec::new(),
            output_history: Vec::new(),
            processed: 0,
        }
    }

    /// The signature being evaluated.
    pub fn signature(&self) -> &Signature<T> {
        &self.signature
    }

    /// Total samples processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Resets to the sequence start (equivalent to a segment boundary).
    pub fn reset(&mut self) {
        self.input_history.clear();
        self.output_history.clear();
        self.processed = 0;
    }

    /// Processes one block, returning its outputs and advancing the state.
    pub fn process(&mut self, block: &[T]) -> Vec<T> {
        let p = self.signature.fir_order();
        let k = self.signature.order();
        let ff = self.signature.feedforward();
        let fb = self.signature.feedback();

        let mut out = Vec::with_capacity(block.len());
        for i in 0..block.len() {
            // Map stage over block + carried input history.
            let mut acc = T::zero();
            for (j, &a) in ff.iter().enumerate() {
                let term = if j <= i {
                    block[i - j]
                } else {
                    let h = j - i - 1;
                    if h < self.input_history.len() {
                        self.input_history[h]
                    } else {
                        T::zero()
                    }
                };
                acc = acc.add(a.mul(term));
            }
            // Feedback over block outputs + carried output history.
            for (j, &b) in fb.iter().enumerate() {
                let dist = j + 1;
                let term = if dist <= i {
                    out[i - dist]
                } else {
                    let h = dist - i - 1;
                    if h < self.output_history.len() {
                        self.output_history[h]
                    } else {
                        T::zero()
                    }
                };
                acc = acc.add(b.mul(term));
            }
            out.push(acc);
        }

        // Advance the carried histories (most recent first).
        update_history(&mut self.input_history, block, p);
        update_history(&mut self.output_history, &out, k);
        self.processed += block.len() as u64;
        out
    }
}

/// Prepends the last `depth` values of `block` (most recent first) onto the
/// existing history, truncating to `depth`.
fn update_history<T: Element>(history: &mut Vec<T>, block: &[T], depth: usize) {
    if depth == 0 {
        history.clear();
        return;
    }
    let fresh: Vec<T> = block.iter().rev().take(depth).copied().collect();
    if fresh.len() >= depth {
        *history = fresh;
    } else {
        let mut merged = fresh;
        merged.extend(history.iter().copied());
        merged.truncate(depth);
        *history = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;

    fn check_blocked<T: Element>(sig: &Signature<T>, input: &[T], block_sizes: &[usize], tol: f64) {
        let expect = serial::run(sig, input);
        let mut state = StreamState::new(sig.clone());
        let mut got = Vec::new();
        let mut offset = 0;
        let mut i = 0;
        while offset < input.len() {
            let len = block_sizes[i % block_sizes.len()].min(input.len() - offset);
            got.extend(state.process(&input[offset..offset + len]));
            offset += len;
            i += 1;
        }
        crate::validate::validate(&expect, &got, tol)
            .unwrap_or_else(|e| panic!("{sig} blocks {block_sizes:?}: {e}"));
    }

    #[test]
    fn blocked_equals_whole_for_prefix_sums() {
        let input: Vec<i64> = (0..200).map(|i| (i % 13) - 6).collect();
        let sig: Signature<i64> = "1:1".parse().unwrap();
        check_blocked(&sig, &input, &[1], 0.0);
        check_blocked(&sig, &input, &[7], 0.0);
        check_blocked(&sig, &input, &[3, 17, 1, 64], 0.0);
    }

    #[test]
    fn blocked_equals_whole_for_fir_filters() {
        let input: Vec<f64> = (0..300)
            .map(|i| ((i * 7) % 23) as f64 * 0.5 - 5.0)
            .collect();
        let sig: Signature<f64> = "0.729,-2.187,2.187,-0.729:2.4,-1.92,0.512".parse().unwrap();
        check_blocked(&sig, &input, &[1], 1e-9);
        check_blocked(&sig, &input, &[2, 5, 31], 1e-9);
    }

    #[test]
    fn fir_history_spans_multiple_tiny_blocks() {
        // p = 3 with 1-element blocks: x history must accumulate across
        // several calls, not just the previous one.
        let sig: Signature<i64> = Signature::new(vec![1, 10, 100, 1000], vec![1]).unwrap();
        let input: Vec<i64> = (1..=10).collect();
        check_blocked(&sig, &input, &[1], 0.0);
    }

    #[test]
    fn reset_restarts_the_stream() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let mut state = StreamState::new(sig);
        assert_eq!(state.process(&[5, 5]), vec![5, 10]);
        state.reset();
        assert_eq!(state.processed(), 0);
        assert_eq!(state.process(&[5, 5]), vec![5, 10]);
    }

    #[test]
    fn empty_blocks_are_noops() {
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let mut state = StreamState::new(sig);
        assert!(state.process(&[]).is_empty());
        assert_eq!(state.process(&[1, 1]), vec![1, 3]);
        assert!(state.process(&[]).is_empty());
        assert_eq!(state.process(&[1]), vec![6]);
    }

    #[test]
    fn processed_counter_advances() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        let mut state = StreamState::new(sig);
        state.process(&[1, 2, 3]);
        state.process(&[4]);
        assert_eq!(state.processed(), 4);
    }
}
