//! The reference single-threaded engine combining all algorithm stages.
//!
//! This engine runs the complete PLR pipeline — FIR map, Phase 1 doubling,
//! Phase 2 carry propagation — in plain Rust with no machine model attached.
//! It is the semantic core that `plr-codegen`'s simulator executor,
//! `plr-parallel`'s multithreaded runtime, and the benchmarks all agree
//! with; its own correctness is anchored to [`crate::serial`].

use std::sync::Arc;

use crate::blocked;
use crate::element::Element;
use crate::error::EngineError;
use crate::nacci::CorrectionTable;
use crate::phase1;
use crate::plan::{self, CorrectionPlan, PlanRequest};
use crate::signature::Signature;

/// Maximum supported sequence length: 2^30 words (the paper's 4 GB cap).
pub const MAX_INPUT_LEN: usize = 1 << 30;

/// How a chunk's local solution is produced before carry propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalSolve {
    /// Hierarchical doubling from single-element chunks (the paper's
    /// Phase 1) — the choice when intra-chunk parallelism exists.
    #[default]
    HierarchicalDoubling,
    /// Direct serial solve of each chunk — the natural choice for one CPU
    /// thread per chunk, where intra-chunk lanes do not exist.
    Serial,
}

/// How global carries are produced (both yield identical results).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CarryPropagation {
    /// Chunk-after-chunk correction (gold model).
    #[default]
    Sequential,
    /// Decoupled look-back: chain carry fix-ups first, then correct all
    /// chunks independently (the parallel-friendly dependency structure).
    Decoupled,
}

/// Configuration for the two-phase engine.
///
/// # Examples
///
/// ```
/// use plr_core::engine::{Engine, EngineConfig};
/// use plr_core::signature::Signature;
///
/// let sig: Signature<i64> = "1 : 2, -1".parse()?;
/// let engine = Engine::with_config(sig, EngineConfig { chunk_size: 64, ..Default::default() })?;
/// let out = engine.run(&[1, 1, 1, 1, 1])?;
/// assert_eq!(out, vec![1, 3, 6, 10, 15]); // 2nd-order prefix sum
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Phase 1 terminal chunk size `m`. Must be a power of two for
    /// [`LocalSolve::HierarchicalDoubling`]; any positive value otherwise.
    pub chunk_size: usize,
    /// Local-solution strategy.
    pub local_solve: LocalSolve,
    /// Carry-propagation strategy.
    pub carry_propagation: CarryPropagation,
    /// Flush denormal correction factors to zero while precomputing them
    /// (paper Section 3.1; only affects floating-point signatures).
    pub flush_denormals: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            chunk_size: 1024,
            local_solve: LocalSolve::default(),
            carry_propagation: CarryPropagation::default(),
            flush_denormals: true,
        }
    }
}

/// A ready-to-run recurrence computation: signature + precomputed
/// correction-factor table.
///
/// Construction performs the offline work (n-nacci factor precomputation);
/// [`Engine::run`] only does the per-input work, mirroring how PLR emits
/// factor tables as compile-time constant arrays.
#[derive(Debug, Clone)]
pub struct Engine<T> {
    signature: Signature<T>,
    /// The cached correction plan: factor table (full-length when Phase 1
    /// doubling needs it), per-list strategies, FIR and solve kernels.
    plan: Arc<CorrectionPlan<T>>,
    config: EngineConfig,
}

impl<T: Element> Engine<T> {
    /// Creates an engine with the default configuration.
    ///
    /// # Errors
    ///
    /// See [`Engine::with_config`].
    pub fn new(signature: Signature<T>) -> Result<Self, EngineError> {
        Self::with_config(signature, EngineConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidChunkSize`] if `chunk_size` is zero,
    /// not a power of two while hierarchical doubling is selected, or
    /// smaller than the recurrence order while decoupled look-back is
    /// selected (a chunk must hold all `k` published carries).
    pub fn with_config(signature: Signature<T>, config: EngineConfig) -> Result<Self, EngineError> {
        if config.chunk_size == 0
            || (config.local_solve == LocalSolve::HierarchicalDoubling
                && !config.chunk_size.is_power_of_two())
            || (config.carry_propagation == CarryPropagation::Decoupled
                && config.chunk_size < signature.order())
        {
            return Err(EngineError::InvalidChunkSize {
                chunk_size: config.chunk_size,
            });
        }
        // Phase 1 doubling indexes the factor table at every merge width,
        // so it needs the physically full table; the serial local solve
        // can use a decay-truncated one.
        let req = PlanRequest {
            chunk_size: config.chunk_size,
            flush: config.flush_denormals && T::IS_FLOAT,
            full_table: config.local_solve == LocalSolve::HierarchicalDoubling,
            ..PlanRequest::new::<T>(config.chunk_size)
        };
        let (plan, _) = plan::plan_for(&signature, req);
        Ok(Engine {
            signature,
            plan,
            config,
        })
    }

    /// The signature this engine computes.
    pub fn signature(&self) -> &Signature<T> {
        &self.signature
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The precomputed correction-factor table (exposed so that code
    /// generators and analyses can reuse the offline work; C-INTERMEDIATE).
    pub fn correction_table(&self) -> &CorrectionTable<T> {
        self.plan.table()
    }

    /// The correction plan this engine executes (strategy selection,
    /// truncation depth, kernels) — shared through the global plan cache.
    pub fn plan(&self) -> &CorrectionPlan<T> {
        &self.plan
    }

    /// Computes the recurrence over `input`, allocating the output.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InputTooLarge`] for inputs beyond 2^30
    /// elements (the paper's 4 GB limit).
    pub fn run(&self, input: &[T]) -> Result<Vec<T>, EngineError> {
        let mut data = input.to_vec();
        self.run_in_place(&mut data)?;
        Ok(data)
    }

    /// Computes the recurrence in place over `data`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InputTooLarge`] for inputs beyond 2^30
    /// elements.
    pub fn run_in_place(&self, data: &mut [T]) -> Result<(), EngineError> {
        if data.len() > MAX_INPUT_LEN {
            return Err(EngineError::InputTooLarge {
                len: data.len(),
                max: MAX_INPUT_LEN,
            });
        }
        // Stage 1: the map operation eliminating the non-recursive
        // coefficients (paper equation (2)), in place — the whole input is
        // one "chunk" with nothing to its left.
        if !self.signature.is_pure_feedback() {
            blocked::fir_in_place(self.plan.fir(), &[], 0, data);
        }
        let m = self.config.chunk_size;

        // Stage 2: local solutions per chunk.
        match self.config.local_solve {
            LocalSolve::HierarchicalDoubling => phase1::run(self.plan.table(), data, m),
            LocalSolve::Serial => {
                for chunk in data.chunks_mut(m) {
                    self.plan.solve().solve_in_place(chunk);
                }
            }
        }

        // Stage 3: carry propagation, specialized per the plan's factor
        // strategies (identical results to the dense phase2 forms).
        match self.config.carry_propagation {
            CarryPropagation::Sequential => self.plan.propagate_sequential(data),
            CarryPropagation::Decoupled => {
                self.plan.propagate_decoupled(data);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use crate::validate::validate;

    fn check_all_strategies<T: Element>(sig: &Signature<T>, input: &[T], m: usize, tol: f64) {
        let expect = serial::run(sig, input);
        for local in [LocalSolve::HierarchicalDoubling, LocalSolve::Serial] {
            for carry in [CarryPropagation::Sequential, CarryPropagation::Decoupled] {
                let config = EngineConfig {
                    chunk_size: m,
                    local_solve: local,
                    carry_propagation: carry,
                    flush_denormals: true,
                };
                let engine = Engine::with_config(sig.clone(), config).unwrap();
                let got = engine.run(input).unwrap();
                validate(&expect, &got, tol)
                    .unwrap_or_else(|e| panic!("{sig} {local:?} {carry:?}: {e}"));
            }
        }
    }

    #[test]
    fn all_strategy_combinations_match_serial_int() {
        let input: Vec<i64> = (0..333).map(|i| ((i * 131) % 29) as i64 - 14).collect();
        for text in ["1:1", "1:0,1", "1:0,0,1", "1:2,-1", "1:3,-3,1"] {
            let sig: Signature<i64> = text.parse().unwrap();
            check_all_strategies(&sig, &input, 16, 0.0);
        }
    }

    #[test]
    fn all_strategy_combinations_match_serial_float() {
        let input: Vec<f64> = (0..333)
            .map(|i| ((i * 7) % 23) as f64 * 0.5 - 5.0)
            .collect();
        for text in [
            "0.2:0.8",
            "0.04:1.6,-0.64",
            "0.9,-0.9:0.8",
            "0.008:2.4,-1.92,0.512",
        ] {
            let sig: Signature<f64> = text.parse().unwrap();
            check_all_strategies(&sig, &input, 32, 1e-3);
        }
    }

    #[test]
    fn non_pure_feedback_runs_map_stage() {
        let sig: Signature<f32> = "(0.81, -1.62, 0.81: 1.6, -0.64)".parse().unwrap();
        let input: Vec<f32> = (0..200).map(|i| ((i % 17) as f32) - 8.0).collect();
        let engine = Engine::new(sig.clone()).unwrap();
        let got = engine.run(&input).unwrap();
        let expect = serial::run(&sig, &input);
        validate(&expect, &got, 1e-3).unwrap();
    }

    #[test]
    fn chunk_size_validation() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        assert!(matches!(
            Engine::with_config(
                sig.clone(),
                EngineConfig {
                    chunk_size: 0,
                    ..Default::default()
                }
            ),
            Err(EngineError::InvalidChunkSize { .. })
        ));
        assert!(matches!(
            Engine::with_config(
                sig.clone(),
                EngineConfig {
                    chunk_size: 3,
                    ..Default::default()
                }
            ),
            Err(EngineError::InvalidChunkSize { .. })
        ));
        // Non-power-of-two is fine with serial local solves.
        let cfg = EngineConfig {
            chunk_size: 3,
            local_solve: LocalSolve::Serial,
            ..Default::default()
        };
        let engine = Engine::with_config(sig, cfg).unwrap();
        assert_eq!(engine.run(&[1, 1, 1, 1]).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn input_smaller_than_chunk() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        let engine = Engine::new(sig).unwrap(); // chunk 1024 > input
        assert_eq!(engine.run(&[5, 6, 7]).unwrap(), vec![5, 11, 18]);
    }

    #[test]
    fn exposes_offline_artifacts() {
        let sig: Signature<i32> = "1:2,-1".parse().unwrap();
        let engine = Engine::with_config(
            sig,
            EngineConfig {
                chunk_size: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(engine.correction_table().list(0), &[2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(engine.config().chunk_size, 8);
        assert_eq!(engine.signature().order(), 2);
    }
}
