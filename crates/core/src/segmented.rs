//! Segmented recurrences — restart boundaries inside one input.
//!
//! The paper's future work includes "support inputs that consist of
//! multiple signatures". This module implements the independently useful
//! half of that: one signature over an input divided into *segments*, with
//! the recurrence history reset at every segment start (the segmented
//! prefix sum generalized to arbitrary feedback). Batched signal
//! processing — many independent audio clips, rows of an image, per-key
//! scans — is exactly this shape.
//!
//! Segments compose with the chunked parallel machinery because a reset is
//! just a zero carry: a chunk that begins inside a segment needs carries
//! only from its own segment, and the correction of element `i` is
//! suppressed once `i` crosses a boundary. [`SegmentedPlan`] packages that
//! composition for the parallel tier: a [`CorrectionPlan`] (built directly,
//! never through the shared constant-signature plan cache — the boundary
//! map is not part of the cache key, so a cached entry must never serve a
//! segmented run) plus a per-chunk [`BoundaryMap`] classifying every chunk
//! as *interior* (ordinary look-back correction) or *reset* (its tail past
//! the last in-chunk boundary is globally final the moment its local solve
//! lands, and its prefix before the first boundary is all that ever gets
//! corrected). Chunks whose post-FIR input is entirely zero can skip their
//! local solve outright — the correction pass *is* their output and their
//! carries reduce to the factor-table fix-up (a companion-power multiply)
//! of zero locals.

use crate::blocked::{fir_in_place, SlicedSolve};
use crate::element::Element;
use crate::engine::MAX_INPUT_LEN;
use crate::error::EngineError;
use crate::nacci::{carries_of, CorrectionTable};
use crate::plan::{CorrectionPlan, PlanRequest};
use crate::serial;
use crate::signature::Signature;

/// Segment boundaries: sorted start indices (index 0 is implicit for any
/// non-empty input; an *empty* boundary set — only produced by
/// [`Segments::uniform`] over zero elements — describes an empty input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segments {
    starts: Vec<usize>,
}

impl Segments {
    /// Creates segment boundaries from start indices (need not include 0,
    /// must be strictly increasing).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnsupportedSignature`] if the starts are not
    /// strictly increasing.
    pub fn from_starts(starts: Vec<usize>) -> Result<Self, EngineError> {
        let mut s = starts;
        if s.first() != Some(&0) {
            s.insert(0, 0);
        }
        if !s.windows(2).all(|w| w[0] < w[1]) {
            return Err(EngineError::UnsupportedSignature {
                reason: "segment starts must be strictly increasing".to_owned(),
            });
        }
        Ok(Segments { starts: s })
    }

    /// Uniform segments of `len` elements covering `n`. Covering zero
    /// elements yields an empty boundary set (no phantom segment), so an
    /// empty input runs to an empty result through every executor.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn uniform(len: usize, n: usize) -> Self {
        assert!(len > 0, "segment length must be positive");
        Segments {
            starts: (0..n).step_by(len).collect(),
        }
    }

    /// The segment start indices (first is always 0 when any exist).
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// The start of the segment containing `index` (0 when the boundary
    /// set is empty).
    pub fn segment_start(&self, index: usize) -> usize {
        match self.starts.binary_search(&index) {
            Ok(i) => self.starts[i],
            Err(0) => 0,
            Err(i) => self.starts[i - 1],
        }
    }

    /// The `[start, end)` ranges of every non-empty segment of an input of
    /// `len` elements (starts at or past `len` contribute nothing; an
    /// empty boundary set over a non-empty input is one whole segment).
    pub fn ranges(&self, len: usize) -> Vec<(usize, usize)> {
        let mut bounds: Vec<usize> = self.starts.iter().copied().filter(|&s| s < len).collect();
        if len > 0 && bounds.first() != Some(&0) {
            bounds.insert(0, 0);
        }
        bounds.push(len);
        bounds
            .windows(2)
            .filter(|w| w[0] < w[1])
            .map(|w| (w[0], w[1]))
            .collect()
    }

    /// The per-chunk boundary map for an input of `len` elements split
    /// into `chunk_size`-element chunks: which chunks contain segment
    /// starts (a *reset* inside the chunk), at which in-chunk offsets.
    ///
    /// Index 0 never counts as a reset — chunk 0 starts from zero history
    /// unconditionally, so a boundary there changes nothing.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn boundary_map(&self, len: usize, chunk_size: usize) -> BoundaryMap {
        assert!(chunk_size > 0, "chunk size must be positive");
        let num_chunks = len.div_ceil(chunk_size);
        let mut resets = vec![Vec::new(); num_chunks];
        for &s in self.starts.iter().filter(|&&s| s > 0 && s < len) {
            resets[s / chunk_size].push(s % chunk_size);
        }
        let mut nearest = vec![None; num_chunks];
        let mut last = None;
        for (c, nearest_c) in nearest.iter_mut().enumerate() {
            if !resets[c].is_empty() {
                last = Some(c);
            }
            *nearest_c = last;
        }
        BoundaryMap { resets, nearest }
    }
}

/// Per-chunk segment-reset classification (see [`Segments::boundary_map`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryMap {
    /// Sorted in-chunk offsets of segment starts, per chunk. Offset 0
    /// means the chunk begins exactly on a boundary (its whole body is
    /// globally final after the local solve; nothing to correct).
    resets: Vec<Vec<usize>>,
    /// Index of the nearest reset chunk at or before each chunk, if any —
    /// the static floor of the look-back walk.
    nearest: Vec<Option<usize>>,
}

impl BoundaryMap {
    /// Number of chunks the map covers.
    pub fn num_chunks(&self) -> usize {
        self.resets.len()
    }

    /// Sorted in-chunk reset offsets of chunk `c`.
    pub fn resets(&self, c: usize) -> &[usize] {
        &self.resets[c]
    }

    /// Whether chunk `c` contains at least one segment boundary.
    pub fn has_resets(&self, c: usize) -> bool {
        !self.resets[c].is_empty()
    }

    /// How far the correction of chunk `c` may reach: up to the first
    /// in-chunk boundary (`chunk_len` when the chunk is interior, 0 when
    /// the chunk begins on a boundary).
    pub fn correct_limit(&self, c: usize, chunk_len: usize) -> usize {
        self.resets[c].first().copied().unwrap_or(chunk_len)
    }

    /// The in-chunk offset where chunk `c`'s globally-final tail begins
    /// (its last reset). Call only for chunks with resets.
    pub fn global_tail_start(&self, c: usize) -> usize {
        *self.resets[c].last().expect("chunk has resets")
    }

    /// The nearest chunk at or before `c` containing a reset — look-back
    /// from any chunk past it never walks further.
    pub fn nearest_reset_at_or_before(&self, c: usize) -> Option<usize> {
        self.nearest[c]
    }
}

/// The precomputed execution plan for one segmented workload: a
/// correction plan (factor table, per-list strategies, FIR and solve
/// kernels) plus the boundary map for a *bound* input length.
///
/// The correction plan is built directly — never through the shared
/// constant-signature plan cache. The cache key has no boundary map, so a
/// segmented plan must neither reuse a cached unsegmented entry nor
/// insert one a later unsegmented run could pick up.
#[derive(Debug)]
pub struct SegmentedPlan<T> {
    plan: CorrectionPlan<T>,
    segments: Segments,
    map: BoundaryMap,
    len: usize,
    chunk_size: usize,
    /// Whether all-zero chunks may skip their local solve (the sparse
    /// fast path). On by default; the dense path is kept reachable for
    /// benchmarking and differential testing.
    sparse: bool,
}

impl<T: Element> SegmentedPlan<T> {
    /// Builds the plan for `signature` over inputs of exactly `len`
    /// elements segmented by `segments`, chunked at `chunk_size`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidChunkSize`] when `chunk_size` is zero
    /// or smaller than the recurrence order, and
    /// [`EngineError::InputTooLarge`] past 2^30 elements.
    pub fn build(
        signature: &Signature<T>,
        segments: Segments,
        len: usize,
        chunk_size: usize,
    ) -> Result<Self, EngineError> {
        if chunk_size == 0 || chunk_size < signature.order() {
            return Err(EngineError::InvalidChunkSize { chunk_size });
        }
        if len > MAX_INPUT_LEN {
            return Err(EngineError::InputTooLarge {
                len,
                max: MAX_INPUT_LEN,
            });
        }
        let plan = CorrectionPlan::build(signature, PlanRequest::new::<T>(chunk_size));
        let map = segments.boundary_map(len, chunk_size);
        Ok(SegmentedPlan {
            plan,
            segments,
            map,
            len,
            chunk_size,
            sparse: true,
        })
    }

    /// Enables or disables the sparse all-zero-chunk fast path.
    #[must_use]
    pub fn with_sparse(mut self, sparse: bool) -> Self {
        self.sparse = sparse;
        self
    }

    /// Whether all-zero chunks skip their local solve.
    pub fn sparse(&self) -> bool {
        self.sparse
    }

    /// The bound input length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bound length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Elements per chunk.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Chunks per run.
    pub fn num_chunks(&self) -> usize {
        self.len.div_ceil(self.chunk_size)
    }

    /// The recurrence order.
    pub fn order(&self) -> usize {
        self.plan.order()
    }

    /// The segment boundaries.
    pub fn segments(&self) -> &Segments {
        &self.segments
    }

    /// The per-chunk boundary map.
    pub fn map(&self) -> &BoundaryMap {
        &self.map
    }

    /// The underlying correction plan (factor table, strategies, kernels).
    pub fn correction(&self) -> &CorrectionPlan<T> {
        &self.plan
    }

    /// Whether the signature has no FIR map stage.
    pub fn is_pure_feedback(&self) -> bool {
        self.plan.signature().is_pure_feedback()
    }

    /// The in-chunk cut points splitting chunk `c` (of `chunk_len`
    /// elements) into maximal single-segment pieces: always starts with 0
    /// and ends with `chunk_len`.
    fn piece_cuts(&self, c: usize, chunk_len: usize) -> Vec<usize> {
        let rs = self.map.resets(c);
        let mut cuts = Vec::with_capacity(rs.len() + 2);
        cuts.push(0);
        cuts.extend(rs.iter().copied().filter(|&r| r > 0 && r < chunk_len));
        cuts.push(chunk_len);
        cuts
    }

    /// Stashes, for every chunk after the first, the original inputs its
    /// in-place FIR needs from across its left boundary — truncated at
    /// the containing segment's start, because FIR taps never cross a
    /// segment boundary (each segment filters as its own sequence).
    pub fn stash_boundaries(&self, data: &[T]) -> Vec<Vec<T>> {
        let p = self.plan.fir().len();
        if self.is_pure_feedback() || p <= 1 {
            return Vec::new();
        }
        (1..self.num_chunks())
            .map(|c| {
                let start = c * self.chunk_size;
                let seg = self.segments.segment_start(start);
                data[start.saturating_sub(p - 1).max(seg)..start].to_vec()
            })
            .collect()
    }

    /// The segment-aware FIR map for chunk `c`, in place: each in-chunk
    /// piece filters as its own sequence; the first piece continues the
    /// segment it shares with earlier chunks through the boundary stash.
    pub fn fir_chunk(&self, chunk: &mut [T], c: usize, boundaries: &[Vec<T>]) {
        if self.is_pure_feedback() {
            return;
        }
        let start = c * self.chunk_size;
        let first_fresh = self.map.resets(c).first() == Some(&0);
        for w in self.piece_cuts(c, chunk.len()).windows(2) {
            let (a, b) = (w[0], w[1]);
            if a >= b {
                continue;
            }
            if a == 0 && !first_fresh {
                // Continues the segment containing `start` (for chunk 0,
                // the head of the data): taps may reach the stash but
                // never past the segment start.
                let seg = self.segments.segment_start(start);
                let prev: &[T] = if c == 0 || boundaries.is_empty() {
                    &[]
                } else {
                    &boundaries[c - 1]
                };
                fir_in_place(self.plan.fir(), prev, start - seg, &mut chunk[..b]);
            } else {
                fir_in_place(self.plan.fir(), &[], 0, &mut chunk[a..b]);
            }
        }
    }

    /// The piecewise local solve for chunk `c`, in place: every piece
    /// solves from zero history (the first piece is the ordinary
    /// decoupled local solve; pieces past a reset are *globally* final).
    /// Time-sliced against `keep_going` like the unsegmented kernels.
    pub fn solve_chunk(
        &self,
        chunk: &mut [T],
        c: usize,
        keep_going: &mut dyn FnMut() -> bool,
    ) -> SlicedSolve {
        let mut total = SlicedSolve {
            completed: true,
            slices: 0,
        };
        for w in self.piece_cuts(c, chunk.len()).windows(2) {
            let (a, b) = (w[0], w[1]);
            if a >= b {
                continue;
            }
            let out = self
                .plan
                .solve()
                .solve_in_place_sliced(&mut chunk[a..b], keep_going);
            total.slices += out.slices;
            if !out.completed {
                total.completed = false;
                return total;
            }
        }
        total
    }

    /// The whole-row serial sweep shared by the batch and streaming
    /// layers' segmented rows: segment-aware FIR over the full row.
    pub fn fir_row_in_place(&self, row: &mut [T]) {
        if self.is_pure_feedback() {
            return;
        }
        for (a, b) in self.segments.ranges(row.len()) {
            fir_in_place(self.plan.fir(), &[], 0, &mut row[a..b]);
        }
    }

    /// The whole-row serial solve: each segment solves from zero history,
    /// time-sliced against `keep_going`.
    pub fn solve_row_in_place(
        &self,
        row: &mut [T],
        keep_going: &mut dyn FnMut() -> bool,
    ) -> SlicedSolve {
        let mut total = SlicedSolve {
            completed: true,
            slices: 0,
        };
        for (a, b) in self.segments.ranges(row.len()) {
            let out = self
                .plan
                .solve()
                .solve_in_place_sliced(&mut row[a..b], keep_going);
            total.slices += out.slices;
            if !out.completed {
                total.completed = false;
                return total;
            }
        }
        total
    }
}

/// Whether every element of the chunk is exactly zero (the sparse-skip
/// predicate; short-circuits on the first nonzero).
pub fn all_zero<T: Element>(chunk: &[T]) -> bool {
    // Branch-free within each block so the scan vectorizes; the block
    // granularity keeps the early exit for clearly-nonzero chunks.
    let mut blocks = chunk.chunks_exact(64);
    for block in &mut blocks {
        let mut nonzero = false;
        for x in block {
            nonzero |= !x.is_zero();
        }
        if nonzero {
            return false;
        }
    }
    blocks.remainder().iter().all(|x| x.is_zero())
}

/// Computes the recurrence over `input` with history reset at each segment
/// start, serially (the reference implementation).
pub fn run_serial<T: Element>(sig: &Signature<T>, segments: &Segments, input: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(input.len());
    for (s, e) in segments.ranges(input.len()) {
        out.extend(serial::run(sig, &input[s..e]));
    }
    out
}

/// Computes the segmented recurrence with the chunked two-phase structure:
/// local solves per chunk (chunks never integrate across a segment start),
/// then carry propagation that zeroes carries across boundaries.
///
/// This demonstrates that the paper's machinery extends to segmented
/// inputs: the correction of a chunk only applies to the prefix of the
/// chunk that shares a segment with the incoming carries.
///
/// # Errors
///
/// Returns [`EngineError::InvalidChunkSize`] if `chunk_size` is zero or
/// smaller than the order.
pub fn run_chunked<T: Element>(
    sig: &Signature<T>,
    segments: &Segments,
    input: &[T],
    chunk_size: usize,
) -> Result<Vec<T>, EngineError> {
    assert!(
        sig.is_pure_feedback(),
        "apply the map stage first (Signature::split)"
    );
    let k = sig.order();
    if chunk_size == 0 || chunk_size < k {
        return Err(EngineError::InvalidChunkSize { chunk_size });
    }
    let table = CorrectionTable::generate(sig.feedback(), chunk_size);
    let n = input.len();
    let mut data = input.to_vec();

    // Local solves: each chunk restarts at its own segment boundaries.
    for (c, chunk) in data.chunks_mut(chunk_size).enumerate() {
        let base = c * chunk_size;
        let mut s = 0;
        while s < chunk.len() {
            // Next boundary after base + s.
            let next = segments
                .starts()
                .iter()
                .copied()
                .find(|&b| b > base + s)
                .unwrap_or(n)
                .min(base + chunk.len());
            let end_local = next - base;
            serial::recursive_in_place(sig.feedback(), &mut chunk[s..end_local]);
            s = end_local;
        }
    }

    // Carry propagation: chunk c is corrected only while it still belongs
    // to the same segment as the carries from chunk c-1's tail.
    let mut start = chunk_size;
    while start < n {
        let end = (start + chunk_size).min(n);
        // Carries are valid only if no boundary sits at/just before start…
        let carry_segment = segments.segment_start(start - 1);
        let (prev, rest) = data.split_at_mut(start);
        let carries = carries_of(
            &prev[carry_segment.max(start.saturating_sub(chunk_size))..],
            k,
        );
        // …and the correction stops at the first boundary inside the chunk.
        let stop = segments
            .starts()
            .iter()
            .copied()
            .find(|&b| b > start && b < end)
            .unwrap_or(end);
        if segments.segment_start(start) == carry_segment {
            table.correct_chunk(&mut rest[..stop - start], &carries);
        }
        start += chunk_size;
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig2() -> Signature<i64> {
        "1: 2, -1".parse().unwrap()
    }

    #[test]
    fn uniform_segments_reset_the_prefix_sum() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let segments = Segments::uniform(4, 10);
        let input: Vec<i64> = (1..=10).collect();
        let out = run_serial(&sig, &segments, &input);
        assert_eq!(out, vec![1, 3, 6, 10, 5, 11, 18, 26, 9, 19]);
    }

    #[test]
    fn uniform_over_zero_elements_has_no_phantom_start() {
        let s = Segments::uniform(4, 0);
        assert!(s.starts().is_empty(), "no phantom segment over nothing");
        assert_eq!(s.segment_start(0), 0);
        assert!(s.ranges(0).is_empty());
        let sig = sig2();
        assert_eq!(run_serial(&sig, &s, &[]), Vec::<i64>::new());
        assert_eq!(run_chunked(&sig, &s, &[], 8).unwrap(), Vec::<i64>::new());
        // Non-empty boundary sets over empty inputs stay empty too.
        let s = Segments::uniform(4, 10);
        assert_eq!(run_serial(&sig, &s, &[]), Vec::<i64>::new());
        assert_eq!(run_chunked(&sig, &s, &[], 8).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn segment_start_lookup() {
        let s = Segments::from_starts(vec![0, 5, 12]).unwrap();
        assert_eq!(s.segment_start(0), 0);
        assert_eq!(s.segment_start(4), 0);
        assert_eq!(s.segment_start(5), 5);
        assert_eq!(s.segment_start(11), 5);
        assert_eq!(s.segment_start(100), 12);
    }

    #[test]
    fn from_starts_normalizes_and_validates() {
        let s = Segments::from_starts(vec![3, 7]).unwrap();
        assert_eq!(s.starts(), &[0, 3, 7]);
        assert!(Segments::from_starts(vec![0, 5, 5]).is_err());
        assert!(Segments::from_starts(vec![0, 7, 3]).is_err());
    }

    #[test]
    fn ranges_clamp_and_skip_out_of_range_starts() {
        let s = Segments::from_starts(vec![0, 5, 12]).unwrap();
        assert_eq!(s.ranges(8), vec![(0, 5), (5, 8)]);
        assert_eq!(s.ranges(20), vec![(0, 5), (5, 12), (12, 20)]);
        assert_eq!(s.ranges(0), Vec::<(usize, usize)>::new());
    }

    #[test]
    fn boundary_map_classifies_chunks() {
        let s = Segments::from_starts(vec![0, 5, 13, 16]).unwrap();
        let map = s.boundary_map(30, 8);
        assert_eq!(map.num_chunks(), 4);
        assert_eq!(map.resets(0), &[5]);
        assert_eq!(map.resets(1), &[5]); // 13 = 8 + 5
        assert_eq!(map.resets(2), &[0]); // 16 on the chunk edge
        assert!(map.resets(3).is_empty());
        assert!(map.has_resets(2) && !map.has_resets(3));
        assert_eq!(map.correct_limit(0, 8), 5);
        assert_eq!(map.correct_limit(2, 8), 0);
        assert_eq!(map.correct_limit(3, 6), 6);
        assert_eq!(map.global_tail_start(1), 5);
        assert_eq!(map.nearest_reset_at_or_before(3), Some(2));
        assert_eq!(map.nearest_reset_at_or_before(1), Some(1));
        // Index 0 never counts as a reset.
        let single = Segments::from_starts(vec![0]).unwrap();
        let map = single.boundary_map(30, 8);
        assert!((0..map.num_chunks()).all(|c| !map.has_resets(c)));
        assert_eq!(map.nearest_reset_at_or_before(3), None);
    }

    #[test]
    fn plan_pieces_match_serial_per_chunk() {
        let sig = sig2();
        let segments = Segments::from_starts(vec![0, 5, 13, 21]).unwrap();
        let input: Vec<i64> = (0..30).map(|i| (i % 5) - 2).collect();
        let plan = SegmentedPlan::build(&sig, segments.clone(), input.len(), 8).unwrap();
        // Piecewise local solves + boundary-limited correction must
        // reproduce the chunked reference exactly.
        let mut data = input.clone();
        let boundaries = plan.stash_boundaries(&data);
        let m = plan.chunk_size();
        for (c, chunk) in data.chunks_mut(m).enumerate() {
            plan.fir_chunk(chunk, c, &boundaries);
            let out = plan.solve_chunk(chunk, c, &mut || true);
            assert!(out.completed);
        }
        // Sequential fix-up: interior chunks chain carries, reset chunks
        // restart them from their globally-final tail.
        let k = sig.order();
        let mut g = carries_of(&data[..m.min(data.len())], k);
        if plan.map().has_resets(0) {
            g = carries_of(&data[plan.map().global_tail_start(0)..m.min(data.len())], k);
        }
        for c in 1..plan.num_chunks() {
            let (s, e) = (c * m, ((c + 1) * m).min(input.len()));
            let limit = plan.map().correct_limit(c, e - s);
            let (prev, rest) = data.split_at_mut(s);
            let _ = prev;
            if limit > 0 {
                plan.correction().correct_chunk(&mut rest[..limit], &g);
            }
            g = if plan.map().has_resets(c) {
                carries_of(&data[s + plan.map().global_tail_start(c)..e], k)
            } else {
                carries_of(&data[s..e], k)
            };
        }
        assert_eq!(data, run_serial(&sig, &segments, &input));
    }

    #[test]
    fn plan_row_sweep_matches_run_serial_with_fir() {
        let sig: Signature<f64> = "0.81,-1.62,0.81:1.6,-0.64".parse().unwrap();
        let segments = Segments::from_starts(vec![0, 37, 64, 65, 200]).unwrap();
        let input: Vec<f64> = (0..300).map(|i| ((i % 17) as f64) * 0.25 - 2.0).collect();
        let plan = SegmentedPlan::build(&sig, segments.clone(), input.len(), 64).unwrap();
        let mut row = input.clone();
        plan.fir_row_in_place(&mut row);
        let out = plan.solve_row_in_place(&mut row, &mut || true);
        assert!(out.completed);
        let expect = run_serial(&sig, &segments, &input);
        for (i, (&g, &e)) in row.iter().zip(&expect).enumerate() {
            assert!(
                (g - e).abs() <= 1e-9 * e.abs().max(1.0),
                "i={i}: {g} vs {e}"
            );
        }
    }

    #[test]
    fn plan_validates_geometry() {
        let sig = sig2();
        let segments = Segments::uniform(4, 100);
        assert!(matches!(
            SegmentedPlan::build(&sig, segments.clone(), 100, 0),
            Err(EngineError::InvalidChunkSize { .. })
        ));
        assert!(matches!(
            SegmentedPlan::build(&sig, segments.clone(), 100, 1),
            Err(EngineError::InvalidChunkSize { .. })
        ));
        let plan = SegmentedPlan::build(&sig, segments, 100, 16).unwrap();
        assert_eq!(plan.num_chunks(), 7);
        assert!(plan.sparse());
        assert!(!plan.with_sparse(false).sparse());
    }

    #[test]
    fn all_zero_short_circuits() {
        assert!(all_zero(&[0i64; 8]));
        assert!(!all_zero(&[0i64, 0, 1, 0]));
        assert!(all_zero::<f64>(&[]));
    }

    #[test]
    fn chunked_matches_serial_when_boundaries_align_with_chunks() {
        let segments = Segments::uniform(8, 64);
        let input: Vec<i64> = (0..64).map(|i| (i % 7) - 3).collect();
        let expect = run_serial(&sig2(), &segments, &input);
        let got = run_chunked(&sig2(), &segments, &input, 8).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn chunked_matches_serial_with_misaligned_boundaries() {
        // Boundaries at 0, 5, 13, 21 with chunks of 8: boundaries fall in
        // the middle of chunks.
        let segments = Segments::from_starts(vec![0, 5, 13, 21]).unwrap();
        let input: Vec<i64> = (0..30).map(|i| (i % 5) - 2).collect();
        let expect = run_serial(&sig2(), &segments, &input);
        let got = run_chunked(&sig2(), &segments, &input, 8).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn single_segment_reduces_to_the_plain_recurrence() {
        let segments = Segments::from_starts(vec![0]).unwrap();
        let input: Vec<i64> = (0..100).map(|i| (i % 9) - 4).collect();
        let got = run_chunked(&sig2(), &segments, &input, 16).unwrap();
        assert_eq!(got, serial::run(&sig2(), &input));
    }

    #[test]
    fn boundary_exactly_at_a_chunk_edge_blocks_the_carries() {
        let segments = Segments::from_starts(vec![0, 16]).unwrap();
        let input: Vec<i64> = (1..=32).collect();
        let expect = run_serial(&sig2(), &segments, &input);
        let got = run_chunked(&sig2(), &segments, &input, 16).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn many_tiny_segments() {
        let segments = Segments::uniform(1, 20);
        let input: Vec<i64> = (1..=20).collect();
        // Every element is its own segment: output == input.
        assert_eq!(run_serial(&sig2(), &segments, &input), input);
        assert_eq!(run_chunked(&sig2(), &segments, &input, 4).unwrap(), input);
    }

    #[test]
    fn rejects_bad_chunk_sizes() {
        let segments = Segments::uniform(4, 8);
        let input = vec![1i64; 8];
        assert!(run_chunked(&sig2(), &segments, &input, 0).is_err());
        assert!(run_chunked(&sig2(), &segments, &input, 1).is_err());
    }
}
