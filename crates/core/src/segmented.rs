//! Segmented recurrences — restart boundaries inside one input.
//!
//! The paper's future work includes "support inputs that consist of
//! multiple signatures". This module implements the independently useful
//! half of that: one signature over an input divided into *segments*, with
//! the recurrence history reset at every segment start (the segmented
//! prefix sum generalized to arbitrary feedback). Batched signal
//! processing — many independent audio clips, rows of an image, per-key
//! scans — is exactly this shape.
//!
//! Segments compose with the chunked parallel machinery because a reset is
//! just a zero carry: a chunk that begins inside a segment needs carries
//! only from its own segment, and the correction of element `i` is
//! suppressed once `i` crosses a boundary.

use crate::element::Element;
use crate::error::EngineError;
use crate::nacci::{carries_of, CorrectionTable};
use crate::serial;
use crate::signature::Signature;

/// Segment boundaries: sorted start indices (index 0 is implicit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segments {
    starts: Vec<usize>,
}

impl Segments {
    /// Creates segment boundaries from start indices (need not include 0,
    /// must be strictly increasing).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnsupportedSignature`] if the starts are not
    /// strictly increasing.
    pub fn from_starts(starts: Vec<usize>) -> Result<Self, EngineError> {
        let mut s = starts;
        if s.first() != Some(&0) {
            s.insert(0, 0);
        }
        if !s.windows(2).all(|w| w[0] < w[1]) {
            return Err(EngineError::UnsupportedSignature {
                reason: "segment starts must be strictly increasing".to_owned(),
            });
        }
        Ok(Segments { starts: s })
    }

    /// Uniform segments of `len` elements covering `n`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn uniform(len: usize, n: usize) -> Self {
        assert!(len > 0, "segment length must be positive");
        Segments {
            starts: (0..n.max(1)).step_by(len).collect(),
        }
    }

    /// The segment start indices (first is always 0).
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// The start of the segment containing `index`.
    pub fn segment_start(&self, index: usize) -> usize {
        match self.starts.binary_search(&index) {
            Ok(i) => self.starts[i],
            Err(i) => self.starts[i - 1],
        }
    }
}

/// Computes the recurrence over `input` with history reset at each segment
/// start, serially (the reference implementation).
pub fn run_serial<T: Element>(sig: &Signature<T>, segments: &Segments, input: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(input.len());
    let mut bounds = segments.starts().to_vec();
    bounds.push(input.len());
    for w in bounds.windows(2) {
        let (s, e) = (w[0], w[1].min(input.len()));
        if s >= e {
            continue;
        }
        out.extend(serial::run(sig, &input[s..e]));
    }
    out
}

/// Computes the segmented recurrence with the chunked two-phase structure:
/// local solves per chunk (chunks never integrate across a segment start),
/// then carry propagation that zeroes carries across boundaries.
///
/// This demonstrates that the paper's machinery extends to segmented
/// inputs: the correction of a chunk only applies to the prefix of the
/// chunk that shares a segment with the incoming carries.
///
/// # Errors
///
/// Returns [`EngineError::InvalidChunkSize`] if `chunk_size` is zero or
/// smaller than the order.
pub fn run_chunked<T: Element>(
    sig: &Signature<T>,
    segments: &Segments,
    input: &[T],
    chunk_size: usize,
) -> Result<Vec<T>, EngineError> {
    assert!(
        sig.is_pure_feedback(),
        "apply the map stage first (Signature::split)"
    );
    let k = sig.order();
    if chunk_size == 0 || chunk_size < k {
        return Err(EngineError::InvalidChunkSize { chunk_size });
    }
    let table = CorrectionTable::generate(sig.feedback(), chunk_size);
    let n = input.len();
    let mut data = input.to_vec();

    // Local solves: each chunk restarts at its own segment boundaries.
    for (c, chunk) in data.chunks_mut(chunk_size).enumerate() {
        let base = c * chunk_size;
        let mut s = 0;
        while s < chunk.len() {
            let seg_start_global = segments.segment_start(base + s);
            let local_start = seg_start_global.max(base) - base;
            // Next boundary after base + s.
            let next = segments
                .starts()
                .iter()
                .copied()
                .find(|&b| b > base + s)
                .unwrap_or(n)
                .min(base + chunk.len());
            let end_local = next - base;
            let _ = local_start;
            serial::recursive_in_place(sig.feedback(), &mut chunk[s..end_local]);
            s = end_local;
        }
    }

    // Carry propagation: chunk c is corrected only while it still belongs
    // to the same segment as the carries from chunk c-1's tail.
    let mut start = chunk_size;
    while start < n {
        let end = (start + chunk_size).min(n);
        // Carries are valid only if no boundary sits at/just before start…
        let carry_segment = segments.segment_start(start - 1);
        let (prev, rest) = data.split_at_mut(start);
        let carries = carries_of(
            &prev[carry_segment.max(start.saturating_sub(chunk_size))..],
            k,
        );
        // …and the correction stops at the first boundary inside the chunk.
        let stop = segments
            .starts()
            .iter()
            .copied()
            .find(|&b| b > start && b < end)
            .unwrap_or(end);
        if segments.segment_start(start) == carry_segment {
            table.correct_chunk(&mut rest[..stop - start], &carries);
        }
        start += chunk_size;
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig2() -> Signature<i64> {
        "1: 2, -1".parse().unwrap()
    }

    #[test]
    fn uniform_segments_reset_the_prefix_sum() {
        let sig: Signature<i64> = "1:1".parse().unwrap();
        let segments = Segments::uniform(4, 10);
        let input: Vec<i64> = (1..=10).collect();
        let out = run_serial(&sig, &segments, &input);
        assert_eq!(out, vec![1, 3, 6, 10, 5, 11, 18, 26, 9, 19]);
    }

    #[test]
    fn segment_start_lookup() {
        let s = Segments::from_starts(vec![0, 5, 12]).unwrap();
        assert_eq!(s.segment_start(0), 0);
        assert_eq!(s.segment_start(4), 0);
        assert_eq!(s.segment_start(5), 5);
        assert_eq!(s.segment_start(11), 5);
        assert_eq!(s.segment_start(100), 12);
    }

    #[test]
    fn from_starts_normalizes_and_validates() {
        let s = Segments::from_starts(vec![3, 7]).unwrap();
        assert_eq!(s.starts(), &[0, 3, 7]);
        assert!(Segments::from_starts(vec![0, 5, 5]).is_err());
        assert!(Segments::from_starts(vec![0, 7, 3]).is_err());
    }

    #[test]
    fn chunked_matches_serial_when_boundaries_align_with_chunks() {
        let segments = Segments::uniform(8, 64);
        let input: Vec<i64> = (0..64).map(|i| (i % 7) - 3).collect();
        let expect = run_serial(&sig2(), &segments, &input);
        let got = run_chunked(&sig2(), &segments, &input, 8).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn chunked_matches_serial_with_misaligned_boundaries() {
        // Boundaries at 0, 5, 13, 21 with chunks of 8: boundaries fall in
        // the middle of chunks.
        let segments = Segments::from_starts(vec![0, 5, 13, 21]).unwrap();
        let input: Vec<i64> = (0..30).map(|i| (i % 5) - 2).collect();
        let expect = run_serial(&sig2(), &segments, &input);
        let got = run_chunked(&sig2(), &segments, &input, 8).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn single_segment_reduces_to_the_plain_recurrence() {
        let segments = Segments::from_starts(vec![0]).unwrap();
        let input: Vec<i64> = (0..100).map(|i| (i % 9) - 4).collect();
        let got = run_chunked(&sig2(), &segments, &input, 16).unwrap();
        assert_eq!(got, serial::run(&sig2(), &input));
    }

    #[test]
    fn boundary_exactly_at_a_chunk_edge_blocks_the_carries() {
        let segments = Segments::from_starts(vec![0, 16]).unwrap();
        let input: Vec<i64> = (1..=32).collect();
        let expect = run_serial(&sig2(), &segments, &input);
        let got = run_chunked(&sig2(), &segments, &input, 16).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn many_tiny_segments() {
        let segments = Segments::uniform(1, 20);
        let input: Vec<i64> = (1..=20).collect();
        // Every element is its own segment: output == input.
        assert_eq!(run_serial(&sig2(), &segments, &input), input);
        assert_eq!(run_chunked(&sig2(), &segments, &input, 4).unwrap(), input);
    }

    #[test]
    fn rejects_bad_chunk_sizes() {
        let segments = Segments::uniform(4, 8);
        let input = vec![1i64; 8];
        assert!(run_chunked(&sig2(), &segments, &input, 0).is_err());
        assert!(run_chunked(&sig2(), &segments, &input, 1).is_err());
    }
}
