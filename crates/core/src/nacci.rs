//! Generalized Fibonacci (*n-nacci*) sequences and correction-factor tables.
//!
//! The central observation of the paper (Section 2.1): when two adjacent
//! chunks that each hold their *local* solution are merged, element `i` of
//! the second chunk is corrected by adding, for each carry `r` (the r-th
//! last element of the first chunk, `r = 1..=k`), a precomputed factor times
//! that carry. The factor sequences are produced by running the feedback
//! recurrence `(0 : b-1, …, b-k)` seeded with a unit vector placed at the
//! carry's position — the `(b-1, …, b-k)`-nacci numbers.
//!
//! For `(1: 1, 1)` these are the two Fibonacci sequences (seeds `0, 1` and
//! `1, 0`); for `(1: 1, 1, 1)` the three Tribonacci sequences; for
//! `(1: 2, -1)` (second-order prefix sum) lists `1, 2, 3, 4, …` and
//! `0, -1, -2, -3, …` as in the paper's Section 2.3 example.

use crate::element::Element;

/// Generates `len` values of the recurrence `(0 : feedback…)` from a seed.
///
/// `seed[r]` holds the value at distance `r + 1` *before* the first generated
/// element (index 0 of the seed is the most recent history value). Seeds
/// shorter than the order are padded with zeros.
///
/// # Examples
///
/// ```
/// use plr_core::nacci::generate;
///
/// // Fibonacci: seed "…0, 1" (most recent first: [1, 0]).
/// assert_eq!(generate(&[1i64, 1], &[1, 0], 8), vec![1, 2, 3, 5, 8, 13, 21, 34]);
/// ```
pub fn generate<T: Element>(feedback: &[T], seed: &[T], len: usize) -> Vec<T> {
    let k = feedback.len();
    let mut out: Vec<T> = Vec::with_capacity(len);
    for i in 0..len {
        let mut acc = T::zero();
        for (j, &b) in feedback.iter().enumerate().take(k) {
            let dist = j + 1;
            let term = if dist <= i {
                out[i - dist]
            } else {
                let h = dist - i - 1;
                if h < seed.len() {
                    seed[h]
                } else {
                    T::zero()
                }
            };
            acc = acc.add(b.mul(term));
        }
        out.push(acc);
    }
    out
}

/// The first `len` values of the impulse response of `(1 : feedback…)`:
/// `h[0] = 1`, `h[i] = Σ b-j·h[i-j]`.
///
/// This is the kernel of the recurrence viewed as a filter: the local
/// solution of `y[i] = t[i] + Σ b-j·y[i-j]` with zero history is the FIR
/// `y[i] = Σ_{j ≤ i} h[j]·t[i-j]`, which is what the register-blocked
/// kernels in [`crate::blocked`] evaluate per block. `h` shifted by one is
/// the carry-distance-1 factor list ([`CorrectionTable::list`]`(0)`).
///
/// # Examples
///
/// ```
/// use plr_core::nacci::impulse_response;
///
/// // Fibonacci-with-leading-one for (1: 1, 1).
/// assert_eq!(impulse_response(&[1i64, 1], 6), vec![1, 1, 2, 3, 5, 8]);
/// ```
pub fn impulse_response<T: Element>(feedback: &[T], len: usize) -> Vec<T> {
    if len == 0 {
        return Vec::new();
    }
    // h[1..] continues the recurrence from the single seed h[0] = 1, which
    // is exactly the unit-seed n-nacci sequence at carry distance 1.
    let mut seed = vec![T::zero(); feedback.len()];
    if let Some(s) = seed.first_mut() {
        *s = T::one();
    }
    let mut h = Vec::with_capacity(len);
    h.push(T::one());
    h.extend(generate(feedback, &seed, len - 1));
    h
}

/// The `k` precomputed correction-factor lists for a feedback recurrence.
///
/// `list(r)[i]` is the factor by which carry `r` (0-based: `r = 0` is the
/// *last* element of the preceding chunk, `r = 1` the second-to-last, …)
/// must be multiplied when correcting element `i` of the following chunk.
///
/// A single table of length `m` serves every Phase 1 iteration up to chunk
/// size `m` *and* Phase 2, because the factor lists for smaller chunk sizes
/// are prefixes of the lists for larger ones (paper, Section 3 item 1).
///
/// # Examples
///
/// ```
/// use plr_core::nacci::CorrectionTable;
///
/// // Second-order prefix sum (1: 2, -1), paper Section 2.3.
/// let table = CorrectionTable::generate(&[2i32, -1], 8);
/// assert_eq!(table.list(0), &[2, 3, 4, 5, 6, 7, 8, 9]);
/// assert_eq!(table.list(1), &[-1, -2, -3, -4, -5, -6, -7, -8]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CorrectionTable<T> {
    lists: Vec<Vec<T>>,
    len: usize,
}

impl<T: Element> CorrectionTable<T> {
    /// Precomputes the `k` factor lists of length `len` for `feedback`.
    ///
    /// Runtime is `O(k²·len)`; the paper notes this n-nacci construction is
    /// what makes PLR's code generation take only ~10 ms.
    pub fn generate(feedback: &[T], len: usize) -> Self {
        Self::generate_with(feedback, len, false)
    }

    /// Like [`CorrectionTable::generate`] but optionally flushing denormal
    /// factor values to zero as they are produced, accelerating the decay of
    /// stable-filter factors exactly as the paper's Section 3.1 describes.
    pub fn generate_with(feedback: &[T], len: usize, flush_denormals: bool) -> Self {
        let k = feedback.len();
        let mut lists = Vec::with_capacity(k);
        for r in 0..k {
            // Unit seed: 1 at distance r+1 before the chunk boundary.
            let mut seed = vec![T::zero(); k];
            seed[r] = T::one();
            let mut list = generate(feedback, &seed, len);
            if flush_denormals {
                for v in &mut list {
                    *v = v.flush_denormal();
                }
            }
            lists.push(list);
        }
        CorrectionTable { lists, len }
    }

    /// The order `k` of the underlying recurrence (number of lists).
    pub fn order(&self) -> usize {
        self.lists.len()
    }

    /// The length of each factor list (the maximum chunk size served).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the table serves chunk size zero only.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The factor list for carry `r` (0 = last element of preceding chunk).
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.order()`.
    pub fn list(&self, r: usize) -> &[T] {
        &self.lists[r]
    }

    /// Corrects `chunk[i] += Σ_r list(r)[i]·carries[r]` for all `i`.
    ///
    /// `carries[r]` is the r-th last element of the logically preceding
    /// chunk; fewer than `k` carries are allowed (missing ones are zero),
    /// which happens during the first Phase 1 iterations when the chunk size
    /// is still smaller than the order.
    ///
    /// # Panics
    ///
    /// Panics if `chunk.len() > self.len()`.
    pub fn correct_chunk(&self, chunk: &mut [T], carries: &[T]) {
        assert!(
            chunk.len() <= self.len,
            "chunk of {} exceeds correction table length {}",
            chunk.len(),
            self.len
        );
        for (r, &carry) in carries.iter().enumerate().take(self.order()) {
            if carry.is_zero() {
                continue;
            }
            let list = &self.lists[r];
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = v.add(list[i].mul(carry));
            }
        }
    }

    /// Computes the *global* carries of a chunk from the global carries of
    /// its predecessor and its own *local* carries (paper, Section 2.3).
    ///
    /// Both carry slices use the same ordering (index 0 = last element of
    /// the chunk). `chunk_len` is the chunk's element count, needed to index
    /// the factor lists from the chunk's tail: the factor for local carry
    /// `s` and predecessor carry `r` is `list(r)[chunk_len - 1 - s]`.
    ///
    /// This is the `O(k²)` fix-up step performed per look-back hop.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero, exceeds the table length, or is
    /// smaller than `local.len()`, or if `global_prev` holds more carries
    /// than the recurrence order (fewer is fine — missing carries are
    /// zero — but extra entries would indicate transposed arguments and
    /// must not be ignored silently).
    pub fn fixup_carries(&self, global_prev: &[T], local: &[T], chunk_len: usize) -> Vec<T> {
        assert!(chunk_len >= 1 && chunk_len <= self.len && local.len() <= chunk_len);
        assert!(
            global_prev.len() <= self.order(),
            "{} predecessor carries exceed the recurrence order {}",
            global_prev.len(),
            self.order()
        );
        let mut out = Vec::with_capacity(local.len());
        for (s, &l) in local.iter().enumerate() {
            let i = chunk_len - 1 - s;
            let mut acc = l;
            for (r, &g) in global_prev.iter().enumerate() {
                acc = acc.add(self.lists[r][i].mul(g));
            }
            out.push(acc);
        }
        out
    }
}

/// Extracts the `k` carries (last `min(k, chunk.len())` elements, most
/// recent first) from a chunk slice.
pub fn carries_of<T: Element>(chunk: &[T], k: usize) -> Vec<T> {
    chunk.iter().rev().take(k).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;

    #[test]
    fn first_order_factors_are_geometric() {
        // (1: d): factors d, d², d³, … (paper Section 2.1).
        let t = CorrectionTable::generate(&[3i64], 5);
        assert_eq!(t.list(0), &[3, 9, 27, 81, 243]);
    }

    #[test]
    fn impulse_response_is_shifted_first_factor_list() {
        for fb in [vec![3i64], vec![2, -1], vec![1, 1, 1], vec![1, -2, 3, -4]] {
            let h = impulse_response(&fb, 9);
            assert_eq!(h[0], 1, "{fb:?}");
            let t = CorrectionTable::generate(&fb, 8);
            assert_eq!(&h[1..], t.list(0), "{fb:?}");
        }
        assert_eq!(impulse_response(&[1i64, 1], 0), Vec::<i64>::new());
        // Order zero: the impulse never propagates.
        assert_eq!(impulse_response(&[] as &[i64], 4), vec![1, 0, 0, 0]);
    }

    #[test]
    fn fibonacci_and_shifted_fibonacci() {
        // Paper: the two Fibonacci seed placements give the same sequence
        // shifted by one position.
        let t = CorrectionTable::generate(&[1i64, 1], 8);
        // Carry at distance 1 (seed "0, 1"): 1, 2, 3, 5, 8, 13, 21, 34.
        assert_eq!(t.list(0), &[1, 2, 3, 5, 8, 13, 21, 34]);
        // Carry at distance 2 (seed "1, 0"): the same shifted right by one.
        assert_eq!(t.list(1), &[1, 1, 2, 3, 5, 8, 13, 21]);
        assert_eq!(&t.list(0)[..7], &t.list(1)[1..]);
    }

    #[test]
    fn tribonacci_middle_sequence_differs() {
        // Paper: (1: 1, 1, 1) has three seeds; the first and last are
        // shifted copies (A000073-like) but the middle one (0, 1, 0) is an
        // entirely different sequence (A001590-like).
        let t = CorrectionTable::generate(&[1i64, 1, 1], 8);
        assert_eq!(t.list(0), &[1, 2, 4, 7, 13, 24, 44, 81]);
        assert_eq!(t.list(1), &[1, 2, 3, 6, 11, 20, 37, 68]);
        assert_eq!(t.list(2), &[1, 1, 2, 4, 7, 13, 24, 44]);
        // First and last are one-position shifts of each other.
        assert_eq!(&t.list(0)[..7], &t.list(2)[1..]);
        // The middle sequence diverges from both.
        assert_ne!(&t.list(1)[..7], &t.list(0)[..7]);
        assert_ne!(&t.list(1)[..7], &t.list(2)[..7]);
    }

    #[test]
    fn paper_second_order_lists() {
        let t = CorrectionTable::generate(&[2i32, -1], 8);
        assert_eq!(t.list(0), &[2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(t.list(1), &[-1, -2, -3, -4, -5, -6, -7, -8]);
    }

    #[test]
    fn second_order_symbolic_factors() {
        // Paper Section 2.1 for (1: d, e) with d=2, e=3:
        // w_{m-1} factors: d, d²+e, d³+2de, d⁴+3d²e+e² = 2, 7, 20, 61
        // w_{m-2} factors: e, de, d²e+e², d³e+2de² = 3, 6, 21, 60
        let t = CorrectionTable::generate(&[2i64, 3], 4);
        assert_eq!(t.list(0), &[2, 7, 20, 61]);
        assert_eq!(t.list(1), &[3, 6, 21, 60]);
    }

    #[test]
    fn correct_chunk_merges_local_solutions() {
        // Merge two local solutions of (1: 2, -1) and compare with the
        // serial solution of the concatenation.
        let fb = [2i32, -1];
        let input: Vec<i32> = vec![3, -4, 5, -6, 7, -8, 9, -10];
        let mut whole = input.clone();
        serial::recursive_in_place(&fb, &mut whole);

        let mut left = input[..4].to_vec();
        let mut right = input[4..].to_vec();
        serial::recursive_in_place(&fb, &mut left);
        serial::recursive_in_place(&fb, &mut right);

        let t = CorrectionTable::generate(&fb, 4);
        let carries = carries_of(&left, 2);
        t.correct_chunk(&mut right, &carries);

        assert_eq!(&whole[..4], left.as_slice());
        assert_eq!(&whole[4..], right.as_slice());
    }

    #[test]
    fn fixup_carries_matches_paper_example() {
        // Paper Section 2.3: global carries of the third chunk (24, 16) from
        // the first chunk's global carries (8 last, 12 second-to-last) and
        // the second chunk's local carries (40 last, 44 second-to-last):
        //   24 = 44 + 8·8 + (-7)·12,  16 = 40 + 9·8 + (-8)·12.
        let t = CorrectionTable::generate(&[2i32, -1], 8);
        let global_prev = [8, 12]; // index 0 = last element
        let local = [40, 44];
        let fixed = t.fixup_carries(&global_prev, &local, 8);
        assert_eq!(fixed, vec![16, 24]);
    }

    #[test]
    fn carries_of_short_chunks() {
        assert_eq!(carries_of(&[1i32, 2, 3], 2), vec![3, 2]);
        assert_eq!(carries_of(&[5i32], 3), vec![5]);
        assert_eq!(carries_of(&[] as &[i32], 2), Vec::<i32>::new());
    }

    #[test]
    fn denormal_flush_truncates_decaying_factors() {
        let t = CorrectionTable::generate_with(&[0.1f32], 64, true);
        // 0.1^n underflows f32 denormal range well before 64 terms.
        assert!(t.list(0).contains(&0.0));
        let first_zero = t.list(0).iter().position(|&v| v == 0.0).unwrap();
        // Everything after the first zero stays zero (0 · b = 0).
        assert!(t.list(0)[first_zero..].iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "exceeds correction table length")]
    fn correct_chunk_panics_on_oversize() {
        let t = CorrectionTable::generate(&[1i32], 2);
        let mut chunk = vec![0i32; 3];
        t.correct_chunk(&mut chunk, &[1]);
    }

    #[test]
    fn fixup_accepts_fewer_carries_than_order() {
        // A short predecessor chunk publishes fewer than k carries; the
        // missing ones are zero by the local-solution invariant.
        let t = CorrectionTable::generate(&[2i32, -1], 8);
        let fixed = t.fixup_carries(&[8], &[40, 44], 8);
        assert_eq!(fixed, vec![40 + 9 * 8, 44 + 8 * 8]);
    }

    #[test]
    #[should_panic(expected = "exceed the recurrence order")]
    fn fixup_panics_on_too_many_carries() {
        // More carries than the order means transposed or corrupted
        // arguments; it must not be ignored silently.
        let t = CorrectionTable::generate(&[2i32, -1], 8);
        let _ = t.fixup_carries(&[8, 12, 99], &[40, 44], 8);
    }
}
