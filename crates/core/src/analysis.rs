//! Correction-factor pattern analysis backing PLR's optimizations.
//!
//! The paper's Section 3.1: PLR inspects each precomputed factor list and
//! emits specialized code when the list is degenerate — all one constant
//! (standard prefix sum), only zeros and ones (tuple prefix sums), periodic
//! (so only one period needs storing), or decaying to zero (stable IIR
//! filters, where trailing warps can skip Phase 1 entirely). This module
//! performs that classification; `plr-codegen` consumes it.

use crate::element::Element;
use crate::nacci::CorrectionTable;

/// The shape of one correction-factor list, in decreasing order of
/// specialization opportunity.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorPattern<T> {
    /// Every factor is zero: the carry contributes nothing; the whole
    /// correction for this carry can be elided.
    AllZero,
    /// Every factor equals the same nonzero constant (e.g. `1` for the
    /// standard prefix sum): the array is replaced by a scalar.
    Constant(T),
    /// Every factor is zero or one: multiplications become conditional
    /// adds. The payload is the per-index one-mask.
    ZeroOne(Vec<bool>),
    /// The list repeats with the given period (`period < len`): only the
    /// first period needs to be materialized.
    Periodic {
        /// Length of the repeating prefix.
        period: usize,
    },
    /// All factors from `decay_len` onward are zero (stable filters whose
    /// factors underflow): only the first `decay_len` entries are needed
    /// and trailing correction work can be skipped.
    DecaysAfter {
        /// Number of leading nonzero entries.
        decay_len: usize,
    },
    /// No exploitable structure.
    Dense,
}

impl<T> FactorPattern<T> {
    /// `true` when the pattern removes the need to store the full list.
    pub fn elides_array(&self) -> bool {
        !matches!(self, FactorPattern::Dense)
    }
}

/// Classifies a single factor list.
///
/// Classification priority mirrors the strength of the code specialization:
/// all-zero, constant, zero/one, periodic, decaying, dense.
pub fn classify<T: Element>(list: &[T]) -> FactorPattern<T> {
    if list.is_empty() || list.iter().all(|f| f.is_zero()) {
        return FactorPattern::AllZero;
    }
    let first = list[0];
    if list.iter().all(|&f| f == first) {
        return FactorPattern::Constant(first);
    }
    if list.iter().all(|f| f.is_zero() || f.is_one()) {
        return FactorPattern::ZeroOne(list.iter().map(|f| f.is_one()).collect());
    }
    if let Some(period) = smallest_period(list) {
        return FactorPattern::Periodic { period };
    }
    // Decay: trailing zeros (after denormal flushing during generation).
    let decay_len = list.len() - list.iter().rev().take_while(|f| f.is_zero()).count();
    if decay_len < list.len() {
        return FactorPattern::DecaysAfter { decay_len };
    }
    FactorPattern::Dense
}

/// Finds the smallest period `p < len` such that `list[i] == list[i - p]`
/// for all `i >= p`, or `None` if the list does not repeat.
fn smallest_period<T: Element>(list: &[T]) -> Option<usize> {
    let n = list.len();
    (1..n).find(|&p| (p..n).all(|i| list[i] == list[i - p]))
}

/// Analysis of a full correction table: one pattern per carry list plus
/// aggregate properties the code generator keys on.
#[derive(Debug, Clone, PartialEq)]
pub struct TableAnalysis<T> {
    /// Pattern of each carry's factor list (index 0 = distance-1 carry).
    pub patterns: Vec<FactorPattern<T>>,
    /// Number of leading factor entries that must be materialized per list
    /// (the maximum over lists, after pattern-based elision).
    pub required_entries: usize,
    /// `true` when the distance-k list is derivable from the distance-1
    /// list as `last[i] = b-k·first[i-1]` (with an implicit leading 1), so
    /// one of the two arrays can be suppressed. This is the paper's Section
    /// 3.1 observation that the first and last arrays "contain the same
    /// values except shifted by one position" — exact up to the `b-k`
    /// scale, which is 1 for all of the paper's integer examples.
    pub first_last_shifted: bool,
}

/// Analyses every list of a correction table.
pub fn analyze_table<T: Element>(table: &CorrectionTable<T>) -> TableAnalysis<T> {
    let patterns: Vec<FactorPattern<T>> = (0..table.order())
        .map(|r| classify(table.list(r)))
        .collect();
    let required_entries = patterns
        .iter()
        .enumerate()
        .map(|(r, p)| match p {
            FactorPattern::AllZero | FactorPattern::Constant(_) => 0,
            FactorPattern::ZeroOne(_) => 0, // the mask replaces the array
            FactorPattern::Periodic { period } => *period,
            FactorPattern::DecaysAfter { decay_len } => *decay_len,
            FactorPattern::Dense => table.list(r).len(),
        })
        .max()
        .unwrap_or(0);
    let k = table.order();
    let first_last_shifted = k > 1 && {
        let first = table.list(0);
        let last = table.list(k - 1);
        // last[0] is b-k by construction; check last[i] == b-k·first[i-1].
        let bk = last[0];
        first.len() == last.len() && (1..last.len()).all(|i| last[i] == bk.mul(first[i - 1]))
    };
    TableAnalysis {
        patterns,
        required_entries,
        first_last_shifted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix;

    fn table_for(sig_text: &str, m: usize, flush: bool) -> CorrectionTable<f64> {
        let sig: crate::signature::Signature<f64> = sig_text.parse().unwrap();
        CorrectionTable::generate_with(sig.feedback(), m, flush)
    }

    #[test]
    fn prefix_sum_factors_are_constant_one() {
        let t = CorrectionTable::generate(&[1i64], 16);
        assert_eq!(classify(t.list(0)), FactorPattern::Constant(1));
        let a = analyze_table(&t);
        assert_eq!(a.required_entries, 0);
    }

    #[test]
    fn tuple_prefix_sum_factors_are_zero_one() {
        // (1: 0, 1): list for carry 1 alternates 0,1,0,1…; carry 2 is 1,0,1,0…
        let sig = prefix::tuple_prefix_sum::<i64>(2);
        let t = CorrectionTable::generate(sig.feedback(), 8);
        match classify(t.list(0)) {
            FactorPattern::ZeroOne(mask) => {
                assert_eq!(
                    mask,
                    vec![false, true, false, true, false, true, false, true]
                );
            }
            other => panic!("expected ZeroOne, got {other:?}"),
        }
        match classify(t.list(1)) {
            FactorPattern::ZeroOne(mask) => {
                assert!(mask[0] && !mask[1]);
            }
            other => panic!("expected ZeroOne, got {other:?}"),
        }
    }

    #[test]
    fn periodic_detection_prefers_zero_one_for_tuples() {
        // Tuple factor lists are both periodic and zero/one; zero/one wins
        // by priority. A genuinely periodic non-binary list:
        let list: Vec<i64> = vec![2, -3, 2, -3, 2, -3];
        assert_eq!(classify(&list), FactorPattern::Periodic { period: 2 });
    }

    #[test]
    fn higher_order_prefix_sums_are_dense() {
        let t = CorrectionTable::generate(&[2i64, -1], 16);
        assert_eq!(classify(t.list(0)), FactorPattern::Dense);
        // This is why the paper's Fig. 10 shows only ~3% optimization gain
        // for higher-order prefix sums.
        let a = analyze_table(&t);
        assert_eq!(a.required_entries, 16);
    }

    #[test]
    fn stable_filter_factors_decay() {
        // f64 factors of 0.8 only underflow past n ≈ 3540, so a 2048-entry
        // f64 table is still Dense…
        let t = table_for("0.2 : 0.8", 2048, true);
        assert_eq!(classify(t.list(0)), FactorPattern::Dense);
        // …but the paper's f32 evaluation decays within a few hundred.
        let sig: crate::signature::Signature<f32> = "0.2:0.8".parse().unwrap();
        let t32 = CorrectionTable::generate_with(sig.feedback(), 2048, true);
        match classify(t32.list(0)) {
            FactorPattern::DecaysAfter { decay_len } => {
                // f32 denormal threshold: 0.8^n < 2^-126 at n ≈ 392.
                assert!(decay_len < 500, "decay_len {decay_len}");
            }
            other => panic!("expected decay, got {other:?}"),
        }
    }

    #[test]
    fn all_zero_and_empty_lists() {
        assert_eq!(classify::<i64>(&[]), FactorPattern::AllZero);
        assert_eq!(classify(&[0i64, 0, 0]), FactorPattern::AllZero);
    }

    #[test]
    fn first_and_last_lists_are_shifted_copies() {
        for fb in [&[2i64, -1][..], &[3, -3, 1][..], &[0, 1][..]] {
            let t = CorrectionTable::generate(fb, 32);
            let a = analyze_table(&t);
            assert!(a.first_last_shifted, "feedback {fb:?}");
        }
        // Order 1: no pair to share.
        let t = CorrectionTable::generate(&[1i64], 32);
        assert!(!analyze_table(&t).first_last_shifted);
    }

    #[test]
    fn elides_array_flags() {
        assert!(FactorPattern::Constant(1i32).elides_array());
        assert!(FactorPattern::<i32>::AllZero.elides_array());
        assert!(!FactorPattern::<i32>::Dense.elides_array());
    }

    #[test]
    fn smallest_period_edge_cases() {
        assert_eq!(smallest_period(&[1i64, 1, 1]), Some(1));
        assert_eq!(smallest_period(&[1i64, 2, 1, 2, 1]), Some(2));
        assert_eq!(smallest_period(&[1i64, 2, 3]), None);
    }
}
